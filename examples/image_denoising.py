#!/usr/bin/env python
"""Image correction on a lattice MRF (the paper's third use case).

A synthetic 32-level image is corrupted with Gaussian noise; each pixel
holds a belief over the 32 intensity levels and an edge-preserving
truncated smoothness potential couples neighbours.  Sum-product BP
computes posterior marginals, max-product (our MAP extension) computes
the most probable restoration, and both are compared against the noisy
input.

Run:  python examples/image_denoising.py [size]
"""

import sys

import numpy as np

from repro.core.loopy import LoopyBP
from repro.usecases.image import decode_image, noisy_image_graph

RAMP = " .:-=+*#%@"


def make_test_image(size: int) -> np.ndarray:
    """Blocks, a gradient strip and a bright square — edges plus ramps."""
    img = np.zeros((size, size), dtype=np.int64)
    img[:, size // 2 :] = 20
    img[size // 4 : size // 2, :] = np.linspace(4, 28, size).astype(np.int64)
    q = size // 3
    img[-q:, -q:] = 30
    return img


def ascii_render(img: np.ndarray) -> str:
    scale = (len(RAMP) - 1) / 31
    return "\n".join(
        "".join(RAMP[int(round(v * scale))] for v in row) for row in img
    )


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    clean = make_test_image(size)
    graph, noisy = noisy_image_graph(clean, noise_sigma=3.0, seed=3)
    print(f"lattice MRF: {graph}")

    print("\n--- clean ---")
    print(ascii_render(clean))
    print("\n--- noisy (sigma = 3.0) ---")
    print(ascii_render(noisy))

    marginals = LoopyBP(paradigm="edge").run(graph.copy())
    restored = decode_image(marginals.beliefs, clean.shape)
    print(f"\n--- sum-product restoration ({marginals.iterations} iterations) ---")
    print(ascii_render(restored))

    map_result = LoopyBP(semiring="max").run(graph.copy())
    map_restored = decode_image(map_result.beliefs, clean.shape)
    print(f"\n--- max-product (MAP) restoration ({map_result.iterations} iterations) ---")
    print(ascii_render(map_restored))

    def err(img):
        return float(np.abs(img.astype(float) - clean).mean())

    print(f"\nmean absolute error: noisy {err(noisy):.2f} | "
          f"sum-product {err(restored):.2f} | max-product {err(map_restored):.2f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Virus propagation on a contact network (the paper's second use case).

Three states per person — uninfected / infected / recovered — coupled by
a shared transmission potential (§2.2's "a virus affects all people
identically").  We observe a patient zero, propagate beliefs, and compare
the per-node and per-edge processing paradigms (§3.3) plus the effect of
the work queue (§3.5) on the amount of work done.

Run:  python examples/virus_outbreak.py [n_people]
"""

import sys

import numpy as np

from repro.backends import CEdgeBackend, CNodeBackend
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP
from repro.core.observation import observe
from repro.graphs.kronecker import rmat_edges
from repro.usecases.virus import VIRUS_STATES, VirusModel, virus_use_case


def main() -> None:
    n_people = int(sys.argv[1]) if len(sys.argv) > 1 else 4_096
    log2 = max(4, int(np.ceil(np.log2(n_people))))
    rng = np.random.default_rng(7)

    print(f"=== Contact network: Kronecker graph, 2^{log2} ids ===")
    edges = rmat_edges(log2, 6 * n_people, rng)
    edges = edges[edges[:, 0] != edges[:, 1]]
    model = VirusModel(transmission=0.4, recovery_shield=0.2)
    priors, potential = virus_use_case(
        rng, 1 << log2, model=model, infected_fraction=0.0, recovered_fraction=0.05
    )
    graph = BeliefGraph.from_undirected(priors, edges, potential)
    print(graph)

    patient_zero = int(np.argmax(graph.in_degree()))
    observe(graph, patient_zero, VIRUS_STATES.index("infected"))
    print(f"patient zero: person {patient_zero} "
          f"(degree {int(graph.in_degree()[patient_zero])})")

    print("\n=== Node vs Edge processing paradigms (§3.3) ===")
    for backend in (CNodeBackend(), CEdgeBackend()):
        result = backend.run(graph.copy())
        stats = result.stats
        print(f"  {backend.name:7s}: {result.iterations:3d} iterations, "
              f"{stats.edges_processed:,} edge updates, "
              f"{stats.atomic_ops:,} atomic transactions, "
              f"modeled {result.modeled_time * 1e3:.1f} ms")

    print("\n=== Scheduling impact (§3.5 + extensions) ===")
    for schedule in ("sync", "work_queue", "residual", "relaxed"):
        result = LoopyBP(paradigm="node", schedule=schedule).run(graph.copy())
        processed = result.run_stats.total.nodes_processed
        print(f"  {schedule:10s}: {processed:,} node updates "
              f"over {result.iterations} iterations")

    result = LoopyBP().run(graph.copy())
    infected_p = result.beliefs[:, VIRUS_STATES.index("infected")]
    print(f"\nexpected infections: {infected_p.sum():.1f} people")
    print(f"at-risk (p > 0.5): {(infected_p > 0.5).sum()} people")
    ring = graph.parents(patient_zero)[:5]
    print("patient zero's first contacts:")
    for person in ring:
        probs = result.beliefs[person]
        label = VIRUS_STATES[int(np.argmax(probs))]
        print(f"  person {int(person):6d}: "
              + ", ".join(f"p({s})={p:.2f}" for s, p in zip(VIRUS_STATES, probs))
              + f"  -> {label}")


if __name__ == "__main__":
    main()

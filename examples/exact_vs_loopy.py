#!/usr/bin/env python
"""Exact inference vs loopy BP (extension showcase).

Compiles a grid MRF into a junction tree (the Bistaffa et al. related-work
approach, §5.1) for exact marginals, then measures how close loopy BP —
in both the paper's literal Algorithm 1 broadcast rule and standard
sum-product — gets as the coupling strength rises toward the critical
regime.

Run:  python examples/exact_vs_loopy.py [rows] [cols]
"""

import sys
import time

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.junction import JunctionTree, treewidth_upper_bound
from repro.core.loopy import LoopyBP
from repro.graphs.grids import grid_graph


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 14
    crit = ConvergenceCriterion(threshold=1e-6, max_iterations=500)

    print(f"=== {rows}x{cols} grid MRF "
          f"(2^{rows * cols} configurations — enumeration is hopeless) ===")

    header = f"{'coupling':>8s} {'treewidth':>9s} {'sum-product':>12s} {'broadcast':>10s} {'residual':>9s}"
    print(header)
    for coupling in (0.6, 0.75, 0.9):
        g = grid_graph(rows, cols, seed=1, coupling=coupling)
        tw = treewidth_upper_bound(g)
        t0 = time.perf_counter()
        exact = JunctionTree(g).marginals()
        jt_time = time.perf_counter() - t0

        sp = LoopyBP(update_rule="sum_product", criterion=crit).run(g.copy())
        bc = LoopyBP(update_rule="broadcast", criterion=crit).run(g.copy())
        rs = LoopyBP(paradigm="edge", schedule="residual", criterion=crit).run(g.copy())
        print(
            f"{coupling:8.2f} {tw:9d} "
            f"{np.abs(sp.beliefs - exact).max():12.2e} "
            f"{np.abs(bc.beliefs - exact).max():10.2e} "
            f"{np.abs(rs.beliefs - exact).max():9.2e}"
        )
    print(f"\n(junction-tree exact inference took {jt_time * 1e3:.1f} ms "
          "on the last grid)")
    print("\nTakeaways: proper sum-product tracks the exact marginals closely "
          "in the weak-coupling regime;\nthe paper's literal broadcast rule "
          "(Algorithm 1) double-counts feedback and drifts much earlier;\n"
          "residual scheduling converges to the same fixed point as "
          "synchronous sum-product.")


if __name__ == "__main__":
    main()

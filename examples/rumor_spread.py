#!/usr/bin/env python
"""Rumor propagation on a social network (the paper's title workload).

A rumor starts with a handful of confident believers inside a
preferential-attachment social graph (the paper's binary true/false use
case).  Loopy BP propagates each person's belief through their contacts;
Credo picks the execution backend from the graph's metadata; the MTX
dual-file format round-trips the whole network to disk.

Run:  python examples/rumor_spread.py [n_nodes] [n_edges]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.observation import observe
from repro.credo import Credo
from repro.graphs.social import preferential_attachment_edges
from repro.io.mtx import read_mtx_graph, write_mtx_graph
from repro.usecases.binary import binary_use_case


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    n_edges = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    rng = np.random.default_rng(42)

    print(f"=== Building a {n_nodes:,}-person social network ===")
    edges = preferential_attachment_edges(
        n_nodes, max(1, round(n_edges / n_nodes)), rng
    )
    priors, potential = binary_use_case(
        rng, n_nodes, believer_fraction=0.08, coupling=0.9
    )
    graph = BeliefGraph.from_undirected(priors, edges, potential)
    print(graph)

    print("\n=== Writing / re-reading the MTX dual-file format (§3.2) ===")
    with tempfile.TemporaryDirectory() as tmp:
        nodes_file = Path(tmp) / "rumor.nodes"
        edges_file = Path(tmp) / "rumor.edges"
        write_mtx_graph(graph, nodes_file, edges_file)
        size_kb = (nodes_file.stat().st_size + edges_file.stat().st_size) / 1024
        graph = read_mtx_graph(nodes_file, edges_file)
        print(f"round-tripped {size_kb:.0f} KiB on disk -> {graph}")

    # The most connected person definitely heard the rumor.
    hub = int(np.argmax(graph.in_degree()))
    observe(graph, hub, 1)
    print(f"\nperson {hub} (degree {int(graph.in_degree()[hub]) }) is observed "
          "spreading the rumor")

    print("\n=== Credo selects and runs ===")
    credo = Credo(device="gtx1070")
    backend = credo.select(graph)
    result = credo.run(graph)
    print(f"selected backend : {backend}")
    print(f"iterations       : {result.iterations} (converged={result.converged})")
    print(f"wall time        : {result.wall_time:.3f}s")
    print(f"modeled time     : {result.modeled_time:.4f}s on the simulated GTX 1070")

    believers = (result.beliefs[:, 1] > 0.5).sum()
    print(f"\n{believers:,} of {n_nodes:,} people now believe the rumor "
          f"({believers / n_nodes:.1%})")
    top = np.argsort(-result.beliefs[:, 1])[:5]
    print("most convinced:")
    for person in top:
        print(f"  person {int(person):6d}  p(believes) = {result.beliefs[person, 1]:.3f}"
              f"  (degree {int(graph.in_degree()[person])})")


if __name__ == "__main__":
    main()

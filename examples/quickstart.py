#!/usr/bin/env python
"""Quickstart: the family-out problem (paper Figure 1).

Charniak's classic: a family leaves the dog out when they are away (or
when it has bowel trouble), may leave the light on when out, and the dog
barks when out.  Coming home you see the light on but hear no barking —
what is the probability the family is out?

This walks the full Credo pipeline on a small network: parse BIF, convert
to a pairwise belief graph, clamp evidence, run loopy BP, and compare the
selected backend with the exact enumeration oracle.
"""

import numpy as np

from repro.core import LoopyBP, exact_marginals, observe
from repro.credo import Credo
from repro.io import network_to_belief_graph, parse_bif

FAMILY_OUT = """
network family_out { }
variable family_out { type discrete [ 2 ] { true, false }; }
variable bowel_problem { type discrete [ 2 ] { true, false }; }
variable light_on { type discrete [ 2 ] { true, false }; }
variable dog_out { type discrete [ 2 ] { true, false }; }
variable hear_bark { type discrete [ 2 ] { true, false }; }
probability ( family_out ) { table 0.15, 0.85; }
probability ( bowel_problem ) { table 0.01, 0.99; }
probability ( light_on | family_out ) {
  (true) 0.6, 0.4;
  (false) 0.05, 0.95;
}
probability ( dog_out | family_out, bowel_problem ) {
  (true, true) 0.99, 0.01;
  (true, false) 0.9, 0.1;
  (false, true) 0.97, 0.03;
  (false, false) 0.3, 0.7;
}
probability ( hear_bark | dog_out ) {
  (true) 0.7, 0.3;
  (false) 0.01, 0.99;
}
"""


def main() -> None:
    print("=== Parsing the BIF network ===")
    network = parse_bif(FAMILY_OUT)
    print(f"network {network.name!r}: {len(network.variables)} variables, "
          f"{len(network.cpts)} probability tables")

    graph = network_to_belief_graph(network)
    print(f"pairwise belief graph: {graph}")

    print("\n=== Prior beliefs (no evidence) ===")
    result = LoopyBP().run(graph.copy())
    for name, belief in zip(graph.node_names, result.beliefs):
        print(f"  p({name} = true) = {belief[0]:.3f}")

    print("\n=== Evidence: light is on, no barking ===")
    evidence_graph = graph.copy()
    observe(evidence_graph, "light_on", 0)   # state 0 = true
    observe(evidence_graph, "hear_bark", 1)  # state 1 = false

    result = LoopyBP().run(evidence_graph.copy())
    exact = exact_marginals(evidence_graph)
    print(f"loopy BP converged in {result.iterations} iterations")
    print(f"{'node':15s} {'BP posterior':>12s} {'exact':>8s}")
    for i, name in enumerate(graph.node_names):
        print(f"  {name:15s} {result.beliefs[i, 0]:10.3f} {exact[i, 0]:10.3f}")
    err = np.abs(result.beliefs - exact).max()
    print(f"max |BP - exact| = {err:.2e}")

    print("\n=== Credo picks the implementation automatically ===")
    credo = Credo(device="gtx1070")
    chosen = credo.select(evidence_graph)
    run = credo.run(evidence_graph.copy())
    print(f"selected backend: {chosen} (a {graph.n_nodes}-node graph stays on the CPU)")
    print(f"p(family_out = true | light on, no barking) = {run.beliefs[0, 0]:.3f}")


if __name__ == "__main__":
    main()

"""Streaming metadata extraction from MTX dual files (paper §3.7).

Credo chooses its implementation "based solely on [the graph's] metadata"
"obtained during input parsing".  For the MTX dual-file format that
metadata is computable in one streaming pass over the edge file — node
count, edge count, belief width, in/out-degree extremes — without ever
materializing the graph, which is what lets the selector answer *before*
deciding how much memory the chosen backend should commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.io.mtx import MtxFormatError, _read_header

__all__ = ["MtxStats", "scan_mtx_stats"]


@dataclass(frozen=True)
class MtxStats:
    """Metadata recovered from one streaming pass."""

    n_nodes: int
    n_edges: int  # undirected, as listed in the edge file
    n_beliefs: int
    max_in_degree: int
    max_out_degree: int
    avg_in_degree: float

    def features(self) -> np.ndarray:
        """The §3.7 five-feature vector (canonical orientation)."""
        return np.array(
            [
                float(self.n_nodes),
                self.n_nodes / self.n_edges if self.n_edges else 0.0,
                float(self.n_beliefs),
                self.max_in_degree / self.max_out_degree
                if self.max_out_degree
                else 0.0,
                self.avg_in_degree / self.max_in_degree
                if self.max_in_degree
                else 0.0,
            ]
        )


def scan_mtx_stats(node_path: str | Path, edge_path: str | Path) -> MtxStats:
    """Stream both files once and return the selector's metadata.

    Memory use is two ``n``-length degree counters; the probability and
    matrix payloads are never parsed beyond counting the belief width.
    """
    node_path, edge_path = Path(node_path), Path(edge_path)

    with open(node_path, "r", encoding="utf-8") as handle:
        _, (rows, cols, _entries), _ = _read_header(handle, str(node_path))
        if rows != cols:
            raise MtxFormatError(f"{node_path}: node file must be square")
        n = rows
        n_beliefs = 0
        for raw in handle:
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            n_beliefs = len(stripped.split()) - 2
            break
        if n_beliefs <= 0:
            raise MtxFormatError(f"{node_path}: node file holds no entries")

    in_deg = np.zeros(n, dtype=np.int64)
    out_deg = np.zeros(n, dtype=np.int64)
    m = 0
    with open(edge_path, "r", encoding="utf-8") as handle:
        _, (rows, cols, declared), _ = _read_header(handle, str(edge_path))
        if rows != n or cols != n:
            raise MtxFormatError(
                f"{edge_path}: dimensions disagree with the node file"
            )
        for raw in handle:
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            parts = stripped.split(None, 2)
            try:
                u, v = int(parts[0]), int(parts[1])
            except (ValueError, IndexError):
                raise MtxFormatError(f"{edge_path}: malformed edge entry") from None
            if not (1 <= u <= n and 1 <= v <= n):
                raise MtxFormatError(f"{edge_path}: edge endpoint out of range")
            out_deg[u - 1] += 1
            in_deg[v - 1] += 1
            m += 1
        if m != declared:
            raise MtxFormatError(
                f"{edge_path}: header declared {declared} entries but file holds {m}"
            )

    return MtxStats(
        n_nodes=n,
        n_edges=m,
        n_beliefs=n_beliefs,
        max_in_degree=int(in_deg.max(initial=0)),
        max_out_degree=int(out_deg.max(initial=0)),
        avg_in_degree=float(in_deg.mean()) if n else 0.0,
    )

"""Tokenizer for the Bayesian Interchange Format.

BIF is a C-flavoured language: identifiers, decimal literals, punctuation
(``{ } ( ) [ ] | , ;``), ``//`` line comments and ``/* */`` block comments.
The lexer works on the fully loaded source string — deliberately so: the
paper's §3.2 point is that "both parsers must load the entire input file
into memory first", and the E4 benchmark measures that cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "tokenize", "BifSyntaxError", "KEYWORDS"]

KEYWORDS = frozenset(
    {"network", "variable", "probability", "property", "type", "discrete", "table", "default"}
)

_PUNCT = frozenset("{}()[]|,;=")


class BifSyntaxError(ValueError):
    """Lexing/parsing failure with source position."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexeme.

    ``kind`` ∈ {"keyword", "ident", "number", "punct", "string", "eof"}.
    """

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident(ch: str) -> bool:
    # BIF identifiers in the wild include dashes and dots (state names).
    return ch.isalnum() or ch in "_-."


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens for ``source``, ending with an ``eof`` token.

    Raises :class:`BifSyntaxError` on unknown characters or unterminated
    comments.
    """
    i = 0
    n = len(source)
    line = 1
    line_start = 0

    def pos() -> tuple[int, int]:
        return line, i - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            lno, col = pos()
            i += 2
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                if source[i] == "\n":
                    line += 1
                    line_start = i + 1
                i += 1
            if i + 1 >= n:
                raise BifSyntaxError("unterminated block comment", lno, col)
            i += 2
            continue
        if ch == '"':
            lno, col = pos()
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise BifSyntaxError("unterminated string literal", lno, col)
                j += 1
            if j >= n:
                raise BifSyntaxError("unterminated string literal", lno, col)
            yield Token("string", source[i + 1 : j], lno, col)
            i = j + 1
            continue
        if ch in _PUNCT:
            lno, col = pos()
            yield Token("punct", ch, lno, col)
            i += 1
            continue
        if ch.isdigit() or (ch in "+-." and i + 1 < n and (source[i + 1].isdigit() or source[i + 1] == ".")):
            lno, col = pos()
            j = i
            if source[j] in "+-":
                j += 1
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            if j < n and source[j] in "eE":
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            try:
                float(text)
            except ValueError:
                raise BifSyntaxError(f"malformed number {text!r}", lno, col) from None
            yield Token("number", text, lno, col)
            i = j
            continue
        if _is_ident_start(ch):
            lno, col = pos()
            j = i
            while j < n and _is_ident(source[j]):
                j += 1
            word = source[i:j]
            yield Token("keyword" if word in KEYWORDS else "ident", word, lno, col)
            i = j
            continue
        lno, col = pos()
        raise BifSyntaxError(f"unexpected character {ch!r}", lno, col)

    yield Token("eof", "", line, i - line_start + 1)

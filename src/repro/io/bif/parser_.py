"""Recursive-descent parser for BIF (paper §3.2).

Grammar (the subset used by the Bayesian Network Repository [Elidan 1998],
which the paper benchmarks against)::

    network      := "network" name "{" property* "}"
    variable     := "variable" name "{" var_content* "}"
    var_content  := "type" "discrete" "[" INT "]" "{" name ("," name)* "}" ";"
                  | property
    probability  := "probability" "(" name ("|" name ("," name)*)? ")"
                    "{" prob_entry* "}"
    prob_entry   := "table" FLOAT ("," FLOAT)* ";"
                  | "default" FLOAT ("," FLOAT)* ";"
                  | "(" name ("," name)* ")" FLOAT ("," FLOAT)* ";"
                  | property
    property     := "property" <anything up to ';'> ";"

The parser consumes the token stream produced by
:mod:`repro.io.bif.lexer` and builds a
:class:`~repro.io.network.BayesianNetwork`, wiring hooks per production
rule exactly as the paper describes BIF processing.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.io.bif.lexer import BifSyntaxError, Token, tokenize
from repro.io.network import BayesianNetwork, Cpt, Variable

__all__ = ["parse_bif", "parse_bif_file"]


class _Parser:
    def __init__(self, source: str):
        self.tokens = list(tokenize(source))
        self.pos = 0

    # -- token plumbing --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.current
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise BifSyntaxError(
                f"expected {want!r}, found {tok.value!r}", tok.line, tok.column
            )
        return self.advance()

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.current
        if tok.kind == kind and (value is None or tok.value == value):
            return self.advance()
        return None

    def name(self) -> str:
        tok = self.current
        if tok.kind not in ("ident", "keyword", "number", "string"):
            raise BifSyntaxError(
                f"expected a name, found {tok.value!r}", tok.line, tok.column
            )
        return self.advance().value

    # -- productions -----------------------------------------------------
    def parse(self) -> BayesianNetwork:
        self.expect("keyword", "network")
        net_name = self.name()
        network = BayesianNetwork(name=net_name)
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            key, value = self.property_stmt()
            network.properties[key] = value
        while self.current.kind != "eof":
            if self.accept("keyword", "variable"):
                self.variable_block(network)
            elif self.accept("keyword", "probability"):
                self.probability_block(network)
            else:
                tok = self.current
                raise BifSyntaxError(
                    f"expected 'variable' or 'probability', found {tok.value!r}",
                    tok.line,
                    tok.column,
                )
        network.validate()
        return network

    def property_stmt(self) -> tuple[str, str]:
        self.expect("keyword", "property")
        parts: list[str] = []
        while not self.accept("punct", ";"):
            tok = self.current
            if tok.kind == "eof":
                raise BifSyntaxError("unterminated property", tok.line, tok.column)
            parts.append(self.advance().value)
        if not parts:
            return "", ""
        key = parts[0]
        value = " ".join(p for p in parts[1:] if p != "=")
        return key, value

    def variable_block(self, network: BayesianNetwork) -> None:
        var_name = self.name()
        self.expect("punct", "{")
        states: list[str] | None = None
        properties: dict[str, str] = {}
        while not self.accept("punct", "}"):
            if self.current.kind == "keyword" and self.current.value == "type":
                self.advance()
                self.expect("keyword", "discrete")
                self.expect("punct", "[")
                count_tok = self.expect("number")
                declared = int(float(count_tok.value))
                self.expect("punct", "]")
                self.expect("punct", "{")
                states = [self.name()]
                while self.accept("punct", ","):
                    states.append(self.name())
                self.expect("punct", "}")
                self.expect("punct", ";")
                if len(states) != declared:
                    raise BifSyntaxError(
                        f"variable {var_name!r} declares {declared} states but lists {len(states)}",
                        count_tok.line,
                        count_tok.column,
                    )
            elif self.current.kind == "keyword" and self.current.value == "property":
                key, value = self.property_stmt()
                properties[key] = value
            else:
                tok = self.current
                raise BifSyntaxError(
                    f"unexpected {tok.value!r} in variable block", tok.line, tok.column
                )
        if states is None:
            tok = self.current
            raise BifSyntaxError(
                f"variable {var_name!r} has no type declaration", tok.line, tok.column
            )
        network.add_variable(Variable(var_name, states, properties))

    def probability_block(self, network: BayesianNetwork) -> None:
        open_tok = self.expect("punct", "(")
        child = self.name()
        parents: list[str] = []
        if self.accept("punct", "|"):
            parents.append(self.name())
            while self.accept("punct", ","):
                parents.append(self.name())
        self.expect("punct", ")")

        if child not in network.variables:
            raise BifSyntaxError(
                f"probability block for undeclared variable {child!r}",
                open_tok.line,
                open_tok.column,
            )
        for p in parents:
            if p not in network.variables:
                raise BifSyntaxError(
                    f"probability block names undeclared parent {p!r}",
                    open_tok.line,
                    open_tok.column,
                )

        child_arity = network.variables[child].arity
        parent_arities = [network.variables[p].arity for p in parents]
        table = np.full(tuple(parent_arities) + (child_arity,), np.nan, dtype=np.float64)

        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            if self.accept("keyword", "table"):
                values = self.float_list()
                flat = np.asarray(values, dtype=np.float64)
                if flat.size != table.size:
                    tok = self.current
                    raise BifSyntaxError(
                        f"table for {child!r} has {flat.size} entries, expected {table.size}",
                        tok.line,
                        tok.column,
                    )
                table[...] = flat.reshape(table.shape)
            elif self.accept("keyword", "default"):
                values = self.float_list()
                if len(values) != child_arity:
                    tok = self.current
                    raise BifSyntaxError(
                        f"default row for {child!r} needs {child_arity} values",
                        tok.line,
                        tok.column,
                    )
                mask = np.isnan(table).all(axis=-1)
                table[mask] = np.asarray(values, dtype=np.float64)
            elif self.current.kind == "keyword" and self.current.value == "property":
                self.property_stmt()
            elif self.accept("punct", "("):
                labels = [self.name()]
                while self.accept("punct", ","):
                    labels.append(self.name())
                close = self.expect("punct", ")")
                if len(labels) != len(parents):
                    raise BifSyntaxError(
                        f"entry for {child!r} names {len(labels)} parent states, expected {len(parents)}",
                        close.line,
                        close.column,
                    )
                idx = tuple(
                    network.variables[p].state_index(lbl)
                    for p, lbl in zip(parents, labels)
                )
                values = self.float_list()
                if len(values) != child_arity:
                    raise BifSyntaxError(
                        f"entry for {child!r} needs {child_arity} probabilities",
                        close.line,
                        close.column,
                    )
                table[idx] = np.asarray(values, dtype=np.float64)
            else:
                tok = self.current
                raise BifSyntaxError(
                    f"unexpected {tok.value!r} in probability block", tok.line, tok.column
                )

        if np.isnan(table).any():
            raise BifSyntaxError(
                f"probability block for {child!r} leaves entries undefined",
                open_tok.line,
                open_tok.column,
            )
        network.add_cpt(Cpt(child=child, parents=parents, table=table))

    def float_list(self) -> list[float]:
        values = [float(self.expect("number").value)]
        while self.accept("punct", ","):
            values.append(float(self.expect("number").value))
        self.expect("punct", ";")
        return values


def parse_bif(source: str) -> BayesianNetwork:
    """Parse BIF source text into a :class:`BayesianNetwork`."""
    return _Parser(source).parse()


def parse_bif_file(path: str | Path) -> BayesianNetwork:
    """Parse a ``.bif`` file (the whole file is loaded first — inherent to
    the format, and the overhead E4 measures)."""
    return parse_bif(Path(path).read_text(encoding="utf-8"))

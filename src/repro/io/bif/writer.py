"""BIF serialization — generates the verbose text format so the parser
benchmarks (E4) can round-trip synthetic networks of arbitrary size."""

from __future__ import annotations

import itertools
from pathlib import Path

import numpy as np

from repro.io.network import BayesianNetwork

__all__ = ["write_bif"]


def _fmt(x: float) -> str:
    return f"{x:.6g}"


def write_bif(network: BayesianNetwork, path: str | Path | None = None) -> str:
    """Serialize ``network`` to BIF text; also writes ``path`` if given."""
    lines: list[str] = [f"network {network.name} {{"]
    for key, value in network.properties.items():
        lines.append(f"  property {key} = {value} ;")
    lines.append("}")

    for var in network.variables.values():
        lines.append(f"variable {var.name} {{")
        states = ", ".join(var.states)
        lines.append(f"  type discrete [ {var.arity} ] {{ {states} }};")
        for key, value in var.properties.items():
            lines.append(f"  property {key} = {value} ;")
        lines.append("}")

    for cpt in network.cpts.values():
        if cpt.parents:
            head = f"probability ( {cpt.child} | {', '.join(cpt.parents)} ) {{"
            lines.append(head)
            parent_states = [network.variables[p].states for p in cpt.parents]
            for combo in itertools.product(*[range(len(s)) for s in parent_states]):
                labels = ", ".join(parent_states[k][i] for k, i in enumerate(combo))
                row = np.asarray(cpt.table[combo], dtype=np.float64)
                lines.append(f"  ({labels}) {', '.join(_fmt(v) for v in row)};")
            lines.append("}")
        else:
            lines.append(f"probability ( {cpt.child} ) {{")
            row = np.asarray(cpt.table, dtype=np.float64)
            lines.append(f"  table {', '.join(_fmt(v) for v in row)};")
            lines.append("}")

    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text

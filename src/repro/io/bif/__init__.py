"""The Bayesian Interchange Format (BIF) parser (paper §3.2).

BIF is the legacy standard the paper replaces: a context-free grammar that
"necessitates constructing a custom parser" and must be fully loaded before
a graph can be assembled.  We implement the real thing — a hand-written
lexer (:mod:`repro.io.bif.lexer`) and recursive-descent parser
(:mod:`repro.io.bif.parser_`) covering the grammar used by the Bayesian
Network Repository: ``network``/``variable``/``probability`` blocks,
``table`` and per-parent-configuration entries, ``default`` rows and
``property`` strings — so the parser-comparison experiment (E4) measures a
faithful baseline.
"""

from repro.io.bif.lexer import tokenize, Token, BifSyntaxError
from repro.io.bif.parser_ import parse_bif, parse_bif_file
from repro.io.bif.writer import write_bif

__all__ = [
    "tokenize",
    "Token",
    "BifSyntaxError",
    "parse_bif",
    "parse_bif_file",
    "write_bif",
]

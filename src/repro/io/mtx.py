"""The paper's MTX-derived dual-file graph format (§3.2).

The format splits a belief network across two Matrix-Market-style files:

* the **node file** lists every node as a self-cycling entry —
  ``<id> <id> <p_0> … <p_{b−1}>`` — after a standard MTX header and a
  dimension line;
* the **edge file** lists every undirected edge —
  ``<u> <v> <j_00> … <j_{b·b−1}>`` (row-major joint probability matrix).

"This format is simple enough that it can be read line-by-line first by
nodes and then edges without loading either fully into memory … parsing it
is trivial, requiring a handful of simple regular expressions rather than
complex grammars."  We honour both properties: the readers stream with a
bounded buffer and use one regular expression for the header plus
``str.split`` per line.

One extension over the paper's description: when the graph uses the shared
joint-probability-matrix refinement (§2.2), the edge file may carry the
matrix once in a ``%credo shared-potential: …`` comment and list bare
``<u> <v>`` pairs, shrinking edge files by ~10× for binary beliefs.  The
reader also auto-collapses per-edge matrices that are all identical.

Ids in the files are 1-based, as in Matrix Market.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import IO

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.potentials import PerEdgePotentialStore, SharedPotentialStore

__all__ = ["read_mtx_graph", "write_mtx_graph", "MtxFormatError"]

_HEADER_RE = re.compile(
    r"^%%MatrixMarket\s+matrix\s+coordinate\s+real\s+general\s*$", re.IGNORECASE
)
_SHARED_RE = re.compile(r"^%credo\s+shared-potential:\s*(?P<vals>[-+0-9.eE\s]+)$")
_BELIEFS_RE = re.compile(r"^%credo\s+beliefs:\s*(?P<b>\d+)$")


class MtxFormatError(ValueError):
    """Raised on malformed node/edge files."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


def _read_header(handle: IO[str], path: str) -> tuple[list[str], tuple[int, ...], int]:
    """Consume the header: the MTX banner, comments, and the dimension line.

    Returns (directive comments, dimension tuple, line number of dims).
    """
    directives: list[str] = []
    line_no = 0
    saw_banner = False
    for raw in handle:
        line_no += 1
        stripped = raw.strip()
        if not stripped:
            continue
        if stripped.startswith("%"):
            if _HEADER_RE.match(stripped):
                saw_banner = True
            else:
                directives.append(stripped)
            continue
        if not saw_banner:
            raise MtxFormatError(
                f"{path}: missing '%%MatrixMarket matrix coordinate real general' banner"
            )
        parts = stripped.split()
        try:
            dims = tuple(int(p) for p in parts)
        except ValueError:
            raise MtxFormatError(f"{path}: malformed dimension line {stripped!r}", line_no) from None
        if len(dims) != 3:
            raise MtxFormatError(f"{path}: dimension line needs 3 integers", line_no)
        return directives, dims, line_no
    raise MtxFormatError(f"{path}: no dimension line found")


def _read_nodes(node_path: Path) -> tuple[np.ndarray, int]:
    """Stream the node file into an ``(n, b)`` prior matrix."""
    with open(node_path, "r", encoding="utf-8") as handle:
        directives, (rows, cols, entries), line_no = _read_header(handle, str(node_path))
        if rows != cols:
            raise MtxFormatError(f"{node_path}: node file must be square ({rows}x{cols})")
        n = rows
        declared_b: int | None = None
        for d in directives:
            m = _BELIEFS_RE.match(d)
            if m:
                declared_b = int(m.group("b"))
        priors: np.ndarray | None = None
        b = declared_b
        seen = np.zeros(n, dtype=bool)
        count = 0
        for raw in handle:
            line_no += 1
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            parts = stripped.split()
            if len(parts) < 3:
                raise MtxFormatError(
                    f"{node_path}: node entry needs id, id and probabilities", line_no
                )
            try:
                i, j = int(parts[0]), int(parts[1])
                values = [float(p) for p in parts[2:]]
            except ValueError:
                raise MtxFormatError(f"{node_path}: malformed node entry", line_no) from None
            if i != j:
                raise MtxFormatError(
                    f"{node_path}: node entries must be self-cycling (got {i} {j})", line_no
                )
            if not 1 <= i <= n:
                raise MtxFormatError(f"{node_path}: node id {i} out of range 1..{n}", line_no)
            if b is None:
                b = len(values)
            if len(values) != b:
                raise MtxFormatError(
                    f"{node_path}: expected {b} probabilities, got {len(values)}", line_no
                )
            if priors is None:
                priors = np.full((n, b), 1.0 / b, dtype=np.float32)
            if seen[i - 1]:
                raise MtxFormatError(f"{node_path}: duplicate node id {i}", line_no)
            seen[i - 1] = True
            priors[i - 1] = values
            count += 1
        if count != entries:
            raise MtxFormatError(
                f"{node_path}: header declared {entries} entries but file holds {count}"
            )
        if priors is None:
            raise MtxFormatError(f"{node_path}: node file holds no entries")
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0]) + 1
            raise MtxFormatError(f"{node_path}: node {missing} has no entry")
        return priors, b if b is not None else 0


def _read_edges(
    edge_path: Path, n: int, b: int
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Stream the edge file.

    Returns ``(edges, per_edge_matrices, shared_matrix)`` where exactly one
    of the last two is not None.
    """
    with open(edge_path, "r", encoding="utf-8") as handle:
        directives, (rows, cols, m), line_no = _read_header(handle, str(edge_path))
        if rows != n or cols != n:
            raise MtxFormatError(
                f"{edge_path}: edge file dimensions {rows}x{cols} disagree with node count {n}"
            )
        shared: np.ndarray | None = None
        for d in directives:
            match = _SHARED_RE.match(d)
            if match:
                vals = np.array([float(v) for v in match.group("vals").split()], dtype=np.float32)
                if len(vals) != b * b:
                    raise MtxFormatError(
                        f"{edge_path}: shared-potential needs {b * b} values, got {len(vals)}"
                    )
                shared = vals.reshape(b, b)
        edges = np.empty((m, 2), dtype=np.int64)
        mats = None if shared is not None else np.empty((m, b, b), dtype=np.float32)
        count = 0
        for raw in handle:
            line_no += 1
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            parts = stripped.split()
            if count >= m:
                raise MtxFormatError(
                    f"{edge_path}: more entries than the declared {m}", line_no
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                values = [float(p) for p in parts[2:]]
            except (ValueError, IndexError):
                raise MtxFormatError(f"{edge_path}: malformed edge entry", line_no) from None
            if not (1 <= u <= n and 1 <= v <= n):
                raise MtxFormatError(f"{edge_path}: edge endpoint out of range", line_no)
            if shared is not None:
                if values:
                    raise MtxFormatError(
                        f"{edge_path}: shared-potential file must not carry per-edge matrices",
                        line_no,
                    )
            else:
                if len(values) != b * b:
                    raise MtxFormatError(
                        f"{edge_path}: expected {b * b} matrix entries, got {len(values)}",
                        line_no,
                    )
                assert mats is not None
                mats[count] = np.asarray(values, dtype=np.float32).reshape(b, b)
            edges[count] = (u - 1, v - 1)
            count += 1
        if count != m:
            raise MtxFormatError(
                f"{edge_path}: header declared {m} entries but file holds {count}"
            )
        return edges, mats, shared


def read_mtx_graph(
    node_path: str | Path,
    edge_path: str | Path,
    *,
    layout: str = "aos",
    collapse_identical: bool = True,
) -> BeliefGraph:
    """Load a belief graph from the dual-file format.

    The node file is streamed first, then the edge file ("read line-by-line
    first by nodes and then edges", §3.2).  When every per-edge matrix is
    identical and ``collapse_identical`` is set, the result uses the shared
    store (§2.2), cutting the in-memory footprint.
    """
    node_path, edge_path = Path(node_path), Path(edge_path)
    priors, b = _read_nodes(node_path)
    edges, mats, shared = _read_edges(edge_path, len(priors), b)
    if shared is not None:
        return BeliefGraph.from_undirected(
            priors, edges, potential=shared, layout=layout, dedupe=False
        )
    assert mats is not None
    if collapse_identical and len(mats) and bool((mats == mats[0]).all()):
        return BeliefGraph.from_undirected(
            priors, edges, potential=mats[0], layout=layout, dedupe=False
        )
    return BeliefGraph.from_undirected(
        priors, edges, per_edge_potentials=mats, layout=layout, dedupe=False
    )


def write_mtx_graph(
    graph: BeliefGraph,
    node_path: str | Path,
    edge_path: str | Path,
    *,
    inline_shared: bool = True,
) -> None:
    """Write ``graph`` to the dual-file format.

    ``inline_shared`` controls whether a shared potential is emitted as the
    compact directive (our extension) or expanded onto every edge line (the
    paper's plain format).
    """
    if not graph.uniform:
        raise ValueError("the MTX dual-file format requires constant-width beliefs")
    node_path, edge_path = Path(node_path), Path(edge_path)
    n, b = graph.n_nodes, graph.n_states

    with open(node_path, "w", encoding="utf-8") as out:
        out.write("%%MatrixMarket matrix coordinate real general\n")
        out.write(f"%credo beliefs: {b}\n")
        out.write(f"{n} {n} {n}\n")
        priors = graph.priors.dense()
        for i in range(n):
            probs = " ".join(f"{p:.8g}" for p in priors[i])
            out.write(f"{i + 1} {i + 1} {probs}\n")

    # Undirected edges: one line per directed pair's lower-id member.
    undirected = [
        e
        for e in range(graph.n_edges)
        if graph.reverse_edge[e] == -1 or e < graph.reverse_edge[e]
    ]
    with open(edge_path, "w", encoding="utf-8") as out:
        out.write("%%MatrixMarket matrix coordinate real general\n")
        shared_inline = graph.potentials.shared and inline_shared and graph.n_edges > 0
        if shared_inline:
            flat = " ".join(f"{v:.8g}" for v in graph.potentials.matrix(0).reshape(-1))
            out.write(f"%credo shared-potential: {flat}\n")
        out.write(f"{n} {n} {len(undirected)}\n")
        for e in undirected:
            u, v = int(graph.src[e]) + 1, int(graph.dst[e]) + 1
            if shared_inline:
                out.write(f"{u} {v}\n")
            else:
                flat = " ".join(
                    f"{val:.8g}" for val in np.asarray(graph.potentials.matrix(e)).reshape(-1)
                )
                out.write(f"{u} {v} {flat}\n")

"""Input processing (paper §3.2).

Three formats are supported:

* **BIF** — the Bayesian Interchange Format, via a full lexer + recursive
  descent parser for its context-free grammar (:mod:`repro.io.bif`);
* **XML-BIF** — its XML sibling (:mod:`repro.io.xmlbif`);
* **MTX dual-file** — the paper's contribution: a Matrix-Market-derived
  pair of node/edge files that streams line by line and scales to graphs
  of hundreds of millions of edges (:mod:`repro.io.mtx`).
"""

from repro.io.mtx import read_mtx_graph, write_mtx_graph, MtxFormatError
from repro.io.bif import parse_bif, parse_bif_file, BifSyntaxError, write_bif
from repro.io.xmlbif import parse_xmlbif, parse_xmlbif_file, write_xmlbif
from repro.io.network import BayesianNetwork, Variable, Cpt, network_to_belief_graph
from repro.io.detect import detect_format, load_graph
from repro.io.scan import scan_mtx_stats, MtxStats

__all__ = [
    "read_mtx_graph",
    "write_mtx_graph",
    "MtxFormatError",
    "parse_bif",
    "parse_bif_file",
    "write_bif",
    "BifSyntaxError",
    "parse_xmlbif",
    "parse_xmlbif_file",
    "write_xmlbif",
    "BayesianNetwork",
    "Variable",
    "Cpt",
    "network_to_belief_graph",
    "detect_format",
    "load_graph",
    "scan_mtx_stats",
    "MtxStats",
]

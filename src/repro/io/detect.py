"""Format sniffing and one-call graph loading.

Credo "chooses the best from these implementations before executing BP" —
the first step is getting the graph in, whatever its format.  This module
inspects extensions and leading bytes to dispatch to the right parser.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.graph import BeliefGraph
from repro.io.bif import parse_bif_file
from repro.io.mtx import read_mtx_graph
from repro.io.network import network_to_belief_graph
from repro.io.xmlbif import parse_xmlbif_file

__all__ = ["detect_format", "load_graph"]


def detect_format(path: str | Path) -> str:
    """Return ``"bif"``, ``"xmlbif"`` or ``"mtx"`` for ``path``.

    Extension is authoritative when recognized; otherwise the first
    non-blank line decides.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".bif":
        return "bif"
    if suffix in (".xml", ".xbif", ".xmlbif"):
        return "xmlbif"
    if suffix in (".mtx", ".nodes", ".edges"):
        return "mtx"
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("%%MatrixMarket") or stripped.startswith("%"):
                return "mtx"
            if stripped.startswith("<?xml") or stripped.startswith("<BIF"):
                return "xmlbif"
            if stripped.startswith("network"):
                return "bif"
            break
    raise ValueError(f"cannot determine the format of {path}")


def load_graph(
    path: str | Path,
    edge_path: str | Path | None = None,
    *,
    layout: str = "aos",
    stream: bool = False,
    chunk_edges: int = 65536,
) -> BeliefGraph:
    """Load a belief graph from any supported format.

    For the MTX dual-file format pass the node file as ``path`` and the
    edge file as ``edge_path`` (defaulting to the node path with an
    ``.edges`` suffix).  ``stream=True`` routes MTX input through the
    bounded-memory streaming loader (:mod:`repro.stream.loader`),
    buffering at most ``chunk_edges`` edge lines at a time — the path
    for graphs too large to parse through intermediate edge lists.
    """
    path = Path(path)
    fmt = detect_format(path)
    if fmt in ("bif", "xmlbif"):
        if stream:
            raise ValueError(
                f"streaming is only supported for the MTX dual-file format, not {fmt!r}"
            )
        if fmt == "bif":
            return network_to_belief_graph(parse_bif_file(path), layout=layout)
        return network_to_belief_graph(parse_xmlbif_file(path), layout=layout)
    if edge_path is None:
        edge_path = path.with_suffix(".edges")
        if not Path(edge_path).exists():
            raise ValueError(
                f"MTX input needs an edge file: {edge_path} not found "
                "(pass edge_path explicitly)"
            )
    if stream:
        from repro.stream.loader import load_graph_stream  # deferred: io ← stream cycle

        return load_graph_stream(path, edge_path, layout=layout, chunk_edges=chunk_edges)
    return read_mtx_graph(path, edge_path, layout=layout)

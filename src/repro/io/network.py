"""Bayesian-network intermediate representation shared by the BIF and
XML-BIF parsers, and its conversion to a pairwise belief graph.

The paper (§2.1) moves from Bayesian networks to Markov Random Fields via
the Markov assumption: "an event node's state only depends upon the
immediate parents' states".  A multi-parent CPT therefore becomes one
pairwise potential per (parent, child) edge, with the remaining parents
marginalized under their prior distributions — the standard pairwise
projection, and the reason the MRF "only allow[s] for undirected pairwise
relationships".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import BeliefGraph

__all__ = ["Variable", "Cpt", "BayesianNetwork", "network_to_belief_graph"]


@dataclass
class Variable:
    """A discrete random variable: a name and its state labels."""

    name: str
    states: list[str]
    properties: dict[str, str] = field(default_factory=dict)

    @property
    def arity(self) -> int:
        return len(self.states)

    def state_index(self, label: str) -> int:
        try:
            return self.states.index(label)
        except ValueError:
            raise KeyError(f"variable {self.name!r} has no state {label!r}") from None


@dataclass
class Cpt:
    """A conditional probability table p(child | parents).

    ``table`` has shape ``(arity(parent_0), …, arity(parent_{k−1}),
    arity(child))``; for a root variable it is the 1-D prior.
    """

    child: str
    parents: list[str]
    table: np.ndarray

    def validate(self, variables: dict[str, Variable]) -> None:
        expected = tuple(variables[p].arity for p in self.parents) + (
            variables[self.child].arity,
        )
        if tuple(self.table.shape) != expected:
            raise ValueError(
                f"CPT for {self.child!r} has shape {self.table.shape}, expected {expected}"
            )
        sums = self.table.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-4):
            raise ValueError(f"CPT rows for {self.child!r} do not sum to 1")


@dataclass
class BayesianNetwork:
    """A parsed Bayesian network: variables plus one CPT per variable."""

    name: str
    variables: dict[str, Variable] = field(default_factory=dict)
    cpts: dict[str, Cpt] = field(default_factory=dict)
    properties: dict[str, str] = field(default_factory=dict)

    def add_variable(self, var: Variable) -> None:
        if var.name in self.variables:
            raise ValueError(f"duplicate variable {var.name!r}")
        self.variables[var.name] = var

    def add_cpt(self, cpt: Cpt) -> None:
        if cpt.child not in self.variables:
            raise ValueError(f"CPT for undeclared variable {cpt.child!r}")
        for p in cpt.parents:
            if p not in self.variables:
                raise ValueError(f"CPT for {cpt.child!r} names undeclared parent {p!r}")
        cpt.validate(self.variables)
        if cpt.child in self.cpts:
            raise ValueError(f"duplicate CPT for {cpt.child!r}")
        self.cpts[cpt.child] = cpt

    def validate(self) -> None:
        """Every variable needs a CPT; the parent graph must be acyclic."""
        for name in self.variables:
            if name not in self.cpts:
                raise ValueError(f"variable {name!r} has no probability block")
        # Kahn's algorithm over the parent relation.
        indeg = {name: len(self.cpts[name].parents) for name in self.variables}
        children: dict[str, list[str]] = {name: [] for name in self.variables}
        for cpt in self.cpts.values():
            for p in cpt.parents:
                children[p].append(cpt.child)
        frontier = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for c in children[node]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    frontier.append(c)
        if seen != len(self.variables):
            raise ValueError("the network's parent relation contains a cycle")

    def prior(self, name: str) -> np.ndarray:
        """Marginal prior of ``name`` under the ancestral ordering."""
        return self._marginals()[name]

    def _marginals(self) -> dict[str, np.ndarray]:
        """Ancestral marginals of every variable (exact on the DAG when
        parents are treated independently — exact for trees/forests)."""
        marginals: dict[str, np.ndarray] = {}

        def compute(name: str, stack: tuple[str, ...] = ()) -> np.ndarray:
            if name in marginals:
                return marginals[name]
            if name in stack:
                raise ValueError("cycle encountered while computing priors")
            cpt = self.cpts[name]
            if not cpt.parents:
                result = np.asarray(cpt.table, dtype=np.float64)
            else:
                parent_margs = [compute(p, stack + (name,)) for p in cpt.parents]
                result = np.asarray(cpt.table, dtype=np.float64)
                for axis, pm in enumerate(parent_margs):
                    shape = [1] * result.ndim
                    shape[axis] = len(pm)
                    result = result * pm.reshape(shape)
                result = result.sum(axis=tuple(range(len(cpt.parents))))
            marginals[name] = result / result.sum()
            return marginals[name]

        for name in self.variables:
            compute(name)
        return marginals


def network_to_belief_graph(
    network: BayesianNetwork, *, layout: str = "aos"
) -> BeliefGraph:
    """Project a Bayesian network onto a pairwise belief graph (§2.1).

    Each (parent, child) CPT relation becomes an undirected edge whose
    potential is ``p(child | parent)`` with every *other* parent of the
    child marginalized under its ancestral prior.  Node priors are the
    root tables (roots) or uniform (internal nodes — their information
    arrives through the edges).
    """
    network.validate()
    names = list(network.variables)
    index = {name: i for i, name in enumerate(names)}
    marginals = network._marginals()

    priors = []
    for name in names:
        cpt = network.cpts[name]
        arity = network.variables[name].arity
        if cpt.parents:
            priors.append(np.full(arity, 1.0 / arity, dtype=np.float32))
        else:
            priors.append(np.asarray(cpt.table, dtype=np.float32))

    edges: list[tuple[int, int]] = []
    mats: list[np.ndarray] = []
    for name in names:
        cpt = network.cpts[name]
        table = np.asarray(cpt.table, dtype=np.float64)
        for k, parent in enumerate(cpt.parents):
            # marginalize the other parent axes under their priors
            reduced = table
            for axis, other in enumerate(cpt.parents):
                if other == parent:
                    continue
                pm = marginals[other]
                shape = [1] * reduced.ndim
                shape[axis] = len(pm)
                reduced = reduced * pm.reshape(shape)
            other_axes = tuple(
                axis for axis, other in enumerate(cpt.parents) if other != parent
            )
            reduced = reduced.sum(axis=other_axes) if other_axes else reduced
            # reduced is now (arity(parent), arity(child)) = p(child | parent)
            edges.append((index[parent], index[name]))
            mats.append(reduced.astype(np.float32))

    if not edges:
        # Degenerate: no edges at all — a bag of independent variables.
        widths = {network.variables[n].arity for n in names}
        if len(widths) == 1:
            b = widths.pop()
            dummy = np.eye(b, dtype=np.float32)
            return BeliefGraph.from_undirected(
                np.array([np.pad(p, (0, b - len(p))) for p in priors]),
                np.empty((0, 2), dtype=np.int64),
                potential=dummy,
                node_names=names,
                layout=layout,
            )

    uniform_nodes = len({len(p) for p in priors}) == 1
    uniform_mats = len({m.shape for m in mats}) == 1
    if uniform_nodes and uniform_mats:
        return BeliefGraph.from_undirected(
            np.asarray(priors),
            np.asarray(edges, dtype=np.int64),
            per_edge_potentials=np.stack(mats),
            node_names=names,
            layout=layout,
        )
    return _ragged_graph(priors, edges, mats, names, layout)


def _ragged_graph(priors, edges, mats, names, layout) -> BeliefGraph:
    """Build a graph with heterogeneous state counts (per-edge ragged
    potentials; served by the reference backend)."""
    from repro.core.potentials import PerEdgePotentialStore

    m = len(edges)
    src = np.empty(2 * m, dtype=np.int64)
    dst = np.empty(2 * m, dtype=np.int64)
    for k, (u, v) in enumerate(edges):
        src[2 * k], dst[2 * k] = u, v
        src[2 * k + 1], dst[2 * k + 1] = v, u
    reverse = np.empty(2 * m, dtype=np.int64)
    reverse[0::2] = np.arange(1, 2 * m, 2)
    reverse[1::2] = np.arange(0, 2 * m, 2)
    directed = list(itertools.chain.from_iterable((mat, mat.T.copy()) for mat in mats))
    return BeliefGraph(
        priors,
        src,
        dst,
        PerEdgePotentialStore(directed),
        reverse_edge=reverse,
        node_names=names,
        layout=layout,
    )

"""XML-BIF parsing and writing (paper §3.2).

The XML sibling of BIF ("XMLBIF v0.3", the interchange dialect of tools
like JavaBayes/WEKA): a ``<NETWORK>`` of ``<VARIABLE>`` declarations with
``<OUTCOME>`` states and ``<DEFINITION>`` blocks holding ``<GIVEN>``
parents and a whitespace-separated ``<TABLE>``.  Parsing uses the stdlib
``xml.etree`` — as the paper notes, the format "requires an XML parser"
and must be fully materialized, which is the overhead E4 quantifies
(their 1000-node XML-BIF file took 4× longer than BIF, 40× longer than
the MTX format).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

import numpy as np

from repro.io.network import BayesianNetwork, Cpt, Variable

__all__ = ["parse_xmlbif", "parse_xmlbif_file", "write_xmlbif", "XmlBifError"]


class XmlBifError(ValueError):
    """Raised on structurally invalid XML-BIF documents."""


def _find_ci(parent: ET.Element, tag: str) -> list[ET.Element]:
    """Case-insensitive child lookup (XMLBIF files vary in casing)."""
    wanted = tag.lower()
    return [child for child in parent if child.tag.lower() == wanted]


def _text(elem: ET.Element) -> str:
    return (elem.text or "").strip()


def parse_xmlbif(source: str) -> BayesianNetwork:
    """Parse an XML-BIF document from a string."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise XmlBifError(f"malformed XML: {exc}") from exc

    if root.tag.lower() == "bif":
        networks = _find_ci(root, "network")
        if not networks:
            raise XmlBifError("document has no <NETWORK> element")
        net_elem = networks[0]
    elif root.tag.lower() == "network":
        net_elem = root
    else:
        raise XmlBifError(f"expected <BIF> or <NETWORK> root, found <{root.tag}>")

    names = _find_ci(net_elem, "name")
    network = BayesianNetwork(name=_text(names[0]) if names else "network")

    for var_elem in _find_ci(net_elem, "variable"):
        vnames = _find_ci(var_elem, "name")
        if not vnames:
            raise XmlBifError("<VARIABLE> missing <NAME>")
        outcomes = [_text(o) for o in _find_ci(var_elem, "outcome")]
        if not outcomes:
            raise XmlBifError(f"variable {_text(vnames[0])!r} lists no <OUTCOME>s")
        props = {}
        for p in _find_ci(var_elem, "property"):
            text = _text(p)
            if "=" in text:
                key, _, value = text.partition("=")
                props[key.strip()] = value.strip()
        network.add_variable(Variable(_text(vnames[0]), outcomes, props))

    for def_elem in _find_ci(net_elem, "definition"):
        for_elems = _find_ci(def_elem, "for")
        if not for_elems:
            raise XmlBifError("<DEFINITION> missing <FOR>")
        child = _text(for_elems[0])
        parents = [_text(g) for g in _find_ci(def_elem, "given")]
        tables = _find_ci(def_elem, "table")
        if not tables:
            raise XmlBifError(f"definition of {child!r} missing <TABLE>")
        try:
            flat = np.array([float(v) for v in _text(tables[0]).split()], dtype=np.float64)
        except ValueError:
            raise XmlBifError(f"non-numeric table entry for {child!r}") from None
        if child not in network.variables:
            raise XmlBifError(f"definition references undeclared variable {child!r}")
        shape = tuple(network.variables[p].arity for p in parents) + (
            network.variables[child].arity,
        )
        expected = int(np.prod(shape))
        if flat.size != expected:
            raise XmlBifError(
                f"table for {child!r} holds {flat.size} entries, expected {expected}"
            )
        network.add_cpt(Cpt(child=child, parents=parents, table=flat.reshape(shape)))

    network.validate()
    return network


def parse_xmlbif_file(path: str | Path) -> BayesianNetwork:
    """Parse an ``.xml``/``.xbif`` file (fully loaded, per the format)."""
    return parse_xmlbif(Path(path).read_text(encoding="utf-8"))


def write_xmlbif(network: BayesianNetwork, path: str | Path | None = None) -> str:
    """Serialize ``network`` as XMLBIF v0.3 text; optionally write ``path``."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<BIF VERSION="0.3">',
        "<NETWORK>",
        f"<NAME>{network.name}</NAME>",
    ]
    for var in network.variables.values():
        lines.append('<VARIABLE TYPE="nature">')
        lines.append(f"  <NAME>{var.name}</NAME>")
        for outcome in var.states:
            lines.append(f"  <OUTCOME>{outcome}</OUTCOME>")
        for key, value in var.properties.items():
            lines.append(f"  <PROPERTY>{key} = {value}</PROPERTY>")
        lines.append("</VARIABLE>")
    for cpt in network.cpts.values():
        lines.append("<DEFINITION>")
        lines.append(f"  <FOR>{cpt.child}</FOR>")
        for parent in cpt.parents:
            lines.append(f"  <GIVEN>{parent}</GIVEN>")
        flat = " ".join(f"{v:.6g}" for v in np.asarray(cpt.table).reshape(-1))
        lines.append(f"  <TABLE>{flat}</TABLE>")
        lines.append("</DEFINITION>")
    lines.extend(["</NETWORK>", "</BIF>"])
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text

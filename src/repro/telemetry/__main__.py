"""Trace-file utilities: ``python -m repro.telemetry validate|lanes t.json``.

``validate`` schema-checks an exported Chrome trace (exit 1 on
problems); ``lanes`` prints the process/thread lanes it contains — the
two commands the CI traced-smoke step runs against emitted artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry.export import trace_lanes, validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.telemetry")
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate", help="schema-check a Chrome trace JSON file")
    val.add_argument("path")
    val.add_argument("--min-lanes", type=int, default=0,
                     help="fail unless the trace has at least this many lanes")
    lanes = sub.add_parser("lanes", help="list a trace's process/thread lanes")
    lanes.add_argument("path")
    args = parser.parse_args(argv)

    with open(args.path, encoding="utf-8") as fh:
        trace = json.load(fh)

    if args.command == "lanes":
        for process, threads in trace_lanes(trace).items():
            print(f"{process}: {', '.join(threads)}")
        return 0

    problems = validate_chrome_trace(trace)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    lane_map = trace_lanes(trace)
    n_lanes = sum(len(ts) for ts in lane_map.values())
    print(f"{args.path}: {len(trace.get('traceEvents', []))} events, "
          f"{len(lane_map)} processes, {n_lanes} lanes"
          + ("" if not problems else f", {len(problems)} problems"))
    if args.min_lanes and n_lanes < args.min_lanes:
        print(f"error: expected at least {args.min_lanes} lanes, got {n_lanes}",
              file=sys.stderr)
        return 1
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

"""repro.telemetry — unified tracing, metrics & profiling (DESIGN.md §11).

The observability layer the perf work is judged against: a span-based
tracer with two clock domains (wall for real Python execution, modeled
for the simulated GPUs), a counter/gauge/histogram registry, and two
exporters — Chrome trace-event JSON (Perfetto-loadable, one lane per
thread / simulated device) and a text summary table.

The default global tracer is a no-op; ``credo profile`` (or any caller
via :func:`use_tracer`) installs a live one.  Instrumented runs are
bit-exact with uninstrumented ones — tracing observes, never steers.
"""

from repro.telemetry.export import (
    chrome_trace,
    summary_table,
    trace_lanes,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import (
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

#: process-wide metrics registry — the sharded drivers publish per-shard
#: staleness gauges and barrier-idle histograms here so ``credo profile``
#: can read them without plumbing a registry through every layer
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _METRICS


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "get_metrics",
    "get_tracer",
    "set_tracer",
    "summary_table",
    "trace_lanes",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]

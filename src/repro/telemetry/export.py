"""Trace exporters: Chrome trace-event JSON and a text summary table.

The Chrome format (loadable in Perfetto / ``chrome://tracing``) maps the
tracer's lanes onto processes and threads:

* the ``host`` process carries every real OS thread (wall clock domain),
  one thread row per thread name;
* each modeled lane (``cuda:0``, ``interconnect:0``, …) becomes its own
  process with its sublanes (``kernels``, ``pcie``) as thread rows, so
  simulated devices render as separate swimlane groups next to the host.

Only complete (``ph: "X"``) and metadata (``ph: "M"``) events are
emitted; timestamps are microseconds, sorted ascending —
:func:`validate_chrome_trace` enforces exactly that schema and is what
the tests and the CI traced-smoke step run against emitted files.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Iterable

from repro.telemetry.tracer import SpanEvent, Tracer

__all__ = [
    "chrome_trace",
    "summary_table",
    "trace_lanes",
    "validate_chrome_trace",
    "write_chrome_trace",
]


def chrome_trace(events: Iterable[SpanEvent] | Tracer) -> dict:
    """Render events as a Chrome trace-event JSON object (dict).

    Lane names map deterministically to integer pids/tids (required by
    Perfetto's grouping); ``process_name`` / ``thread_name`` metadata
    events carry the human-readable labels.
    """
    if isinstance(events, Tracer):
        events = events.events
    events = list(events)

    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    trace_events: list[dict] = []

    def pid_of(process: str) -> int:
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": process},
                }
            )
        return pid

    def tid_of(process: str, thread: str) -> int:
        key = (process, thread)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_of(process),
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": thread},
                }
            )
        return tid

    spans: list[dict] = []
    # host lane first so its pid is stable across traces
    for event in sorted(events, key=lambda e: (e.domain != "wall", e.start)):
        entry = {
            "ph": "X",
            "name": event.name,
            "cat": event.cat or event.domain,
            "pid": pid_of(event.process),
            "tid": tid_of(event.process, event.thread),
            "ts": round(event.start * 1e6, 3),
            "dur": round(max(event.duration, 0.0) * 1e6, 3),
        }
        if event.args:
            entry["args"] = {k: _jsonable(v) for k, v in event.args.items()}
        spans.append(entry)

    spans.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": trace_events + spans,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.telemetry"},
    }


def _jsonable(value):
    """Coerce span attributes to JSON scalars (numpy ints/floats included)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    try:
        f = float(value)
    except (TypeError, ValueError):
        return str(value)
    return int(f) if f.is_integer() and abs(f) < 2**53 else f


def write_chrome_trace(events: Iterable[SpanEvent] | Tracer, path) -> Path:
    """Write the Chrome trace JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events)), encoding="utf-8")
    return path


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema-check one exported trace; returns a list of problems
    (empty = valid).  Enforced invariants:

    * top-level ``traceEvents`` list; every event has ``ph``/``pid``/
      ``tid``/``ts``/``name``;
    * only complete (``X``) and metadata (``M``) phases — no unmatched
      ``B``/``E`` pairs can exist by construction;
    * ``X`` events carry ``dur >= 0`` and ``ts >= 0``, sorted ascending;
    * every pid/tid referenced by an ``X`` event has a ``process_name``
      / ``thread_name`` metadata record.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]

    named_pids: set[int] = set()
    named_tids: set[tuple[int, int]] = set()
    last_ts = None
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "pid", "tid", "ts", "name"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
            elif event.get("name") == "thread_name":
                named_tids.add((event.get("pid"), event.get("tid")))
            continue
        if ph != "X":
            problems.append(f"event {i}: phase {ph!r} (only X/M are emitted)")
            continue
        ts = event.get("ts", -1)
        dur = event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"event {i}: X event needs dur >= 0, got {dur!r}")
        if last_ts is not None and isinstance(ts, (int, float)) and ts < last_ts:
            problems.append(f"event {i}: timestamps not sorted ({ts} < {last_ts})")
        if isinstance(ts, (int, float)):
            last_ts = ts
        if event.get("pid") not in named_pids:
            problems.append(f"event {i}: pid {event.get('pid')} has no process_name")
        if (event.get("pid"), event.get("tid")) not in named_tids:
            problems.append(f"event {i}: tid {event.get('tid')} has no thread_name")
    return problems


def trace_lanes(trace: dict) -> dict[str, list[str]]:
    """``{process name: [thread names]}`` of one exported trace."""
    process_names: dict[int, str] = {}
    threads: dict[int, list[str]] = defaultdict(list)
    for event in trace.get("traceEvents", ()):
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            process_names[event["pid"]] = event["args"]["name"]
        elif event.get("name") == "thread_name":
            threads[event["pid"]].append(event["args"]["name"])
    return {
        name: threads.get(pid, []) for pid, name in sorted(process_names.items())
    }


def summary_table(events: Iterable[SpanEvent] | Tracer) -> str:
    """Aggregate spans by (lane, name) into an aligned text table.

    Spans that carry shard-policy attributes (``barrier_idle_s``,
    ``staleness`` — set by the sharded backends on ``backend.run``) get
    an ``idle_ms`` / ``stale`` column, so a sync-vs-async comparison
    reads off one screen; every other row shows ``-``.
    """
    if isinstance(events, Tracer):
        events = events.events
    groups: dict[tuple[str, str, str], list[float]] = defaultdict(list)
    idle: dict[tuple[str, str, str], float] = defaultdict(float)
    stale: dict[tuple[str, str, str], int] = {}
    for event in events:
        key = (event.domain, event.process, event.name)
        groups[key].append(event.duration)
        args = event.args or {}
        if "barrier_idle_s" in args:
            idle[key] += float(args["barrier_idle_s"])
        if "staleness" in args:
            stale[key] = max(stale.get(key, 0), int(args["staleness"]))

    headers = ("lane", "span", "domain", "count", "total_ms", "mean_ms",
               "max_ms", "idle_ms", "stale")
    rows = []
    for (domain, process, name), durs in sorted(
        groups.items(), key=lambda kv: (kv[0][0], kv[0][1], -sum(kv[1]))
    ):
        key = (domain, process, name)
        total = sum(durs)
        rows.append(
            (
                process,
                name,
                domain,
                str(len(durs)),
                f"{total * 1e3:.3f}",
                f"{total / len(durs) * 1e3:.3f}",
                f"{max(durs) * 1e3:.3f}",
                f"{idle[key] * 1e3:.3f}" if key in idle else "-",
                str(stale[key]) if key in stale else "-",
            )
        )
    if not rows:
        return "(no spans recorded)"
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows)
    return "\n".join(lines)

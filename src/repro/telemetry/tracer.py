"""Span-based tracing with two clock domains (DESIGN.md §11).

A :class:`Tracer` records nested, thread-aware spans around real Python
execution (wall-clock domain, one lane per OS thread) and lets simulated
hardware publish *modeled*-time spans on virtual lanes (one lane per
simulated device or interconnect), so a single trace shows the simulated
CUDA kernels and PCIe transfers next to the CPU work that scheduled
them.

The instrumentation contract is strict:

* **zero-cost when disabled** — the default global tracer is a
  :class:`NullTracer` whose ``span()`` returns one shared, falsy no-op
  handle: no allocation, no clock read, no lock.  Hot paths guard
  attribute construction with ``if sp:`` so a disabled run does not even
  build the argument dicts;
* **observation only** — tracing reads timestamps and already-computed
  statistics; it never touches beliefs, messages, schedules or RNG
  state, which is what keeps traced runs bit-exact with untraced ones
  (the same invariant the race detector established).

Wall spans nest per thread (Chrome ``X`` events stack by enclosure);
modeled lanes are flat sequences of complete events whose timestamps are
``lane anchor + modeled seconds`` — the anchor is the wall offset at
lane creation, so a device's virtual timeline starts where the host
actually created it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

#: the wall-clock process lane (Chrome trace "process") for real threads
HOST = "host"


@dataclass(frozen=True)
class SpanEvent:
    """One completed span, in tracer-epoch seconds.

    ``process`` / ``thread`` name the lane: ``("host", "<thread name>")``
    for wall-clock spans, ``("<device>", "<sublane>")`` for modeled ones.
    """

    name: str
    cat: str
    start: float
    duration: float
    process: str
    thread: str
    domain: str = "wall"  # "wall" | "modeled"
    args: dict | None = None


class Span:
    """Context-manager handle for one in-flight wall-clock span.

    Truthy (the null span is falsy), so instrumentation sites can guard
    expensive attribute construction with ``if sp: sp.set(...)``.
    """

    __slots__ = ("_tracer", "name", "cat", "_start", "_args")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict | None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self._args = args
        self._start = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (rendered as Chrome ``args``)."""
        if self._args is None:
            self._args = attrs
        else:
            self._args.update(attrs)
        return self

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        end = tracer._clock()
        tracer._record(
            SpanEvent(
                name=self.name,
                cat=self.cat,
                start=self._start - tracer._t0,
                duration=end - self._start,
                process=HOST,
                thread=threading.current_thread().name,
                domain="wall",
                args=self._args,
            )
        )


class _NullSpan:
    """The shared no-op span handle: falsy, inert, allocation-free."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class ModeledLane:
    """A virtual timeline for simulated hardware (modeled clock domain).

    ``anchor`` is the tracer-epoch wall offset the lane's modeled zero
    maps to, captured at creation: the simulated device's timeline begins
    where the host created it.  ``emit`` timestamps are *modeled seconds*
    on the lane's own clock.
    """

    __slots__ = ("_tracer", "process", "anchor")

    def __init__(self, tracer: "Tracer", process: str, anchor: float):
        self._tracer = tracer
        self.process = process
        self.anchor = anchor

    def __bool__(self) -> bool:
        return True

    def reanchor(self) -> None:
        """Re-pin the lane's modeled zero to the current wall offset.

        Called when the simulated device's clock is reset, so events from
        the new epoch keep landing after the old ones in trace order.
        """
        clock = self._tracer._clock
        self.anchor = clock() - self._tracer._t0

    def emit(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        *,
        thread: str = "modeled",
        cat: str = "modeled",
        args: dict | None = None,
    ) -> None:
        """Record one modeled-time complete event on this lane."""
        self._tracer._record(
            SpanEvent(
                name=name,
                cat=cat,
                start=self.anchor + start_s,
                duration=duration_s,
                process=self.process,
                thread=thread,
                domain="modeled",
                args=args,
            )
        )


class _NullLane:
    """No-op modeled lane returned by the disabled tracer."""

    __slots__ = ()
    process = ""
    anchor = 0.0

    def __bool__(self) -> bool:
        return False

    def reanchor(self) -> None:
        pass

    def emit(self, name, start_s, duration_s, *, thread="modeled", cat="modeled",
             args=None) -> None:
        pass


NULL_LANE = _NullLane()


class Tracer:
    """Collects :class:`SpanEvent` records from every thread of a run."""

    enabled = True

    def __init__(self, *, clock=time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._events: list[SpanEvent] = []
        self._lane_counts: dict[str, int] = {}

    # -- recording -----------------------------------------------------
    def _record(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)

    def span(self, name: str, *, cat: str = "", args: dict | None = None) -> Span:
        """A wall-clock span on the current thread's lane (context manager)."""
        return Span(self, name, cat, args)

    def complete(
        self,
        name: str,
        duration_s: float,
        *,
        cat: str = "",
        end_s: float | None = None,
        args: dict | None = None,
    ) -> None:
        """Record a wall span retroactively: it *ended* ``end_s`` seconds
        into the trace (default: now) and lasted ``duration_s``.  Used
        where only the duration was measured (e.g. admission queue wait
        timed on a different clock)."""
        if end_s is None:
            end_s = self._clock() - self._t0
        duration_s = max(float(duration_s), 0.0)
        self._record(
            SpanEvent(
                name=name,
                cat=cat,
                start=max(end_s - duration_s, 0.0),
                duration=duration_s,
                process=HOST,
                thread=threading.current_thread().name,
                domain="wall",
                args=args,
            )
        )

    def instant(self, name: str, *, cat: str = "", args: dict | None = None) -> None:
        """Record a zero-duration marker on the current thread's lane."""
        self._record(
            SpanEvent(
                name=name,
                cat=cat,
                start=self._clock() - self._t0,
                duration=0.0,
                process=HOST,
                thread=threading.current_thread().name,
                domain="wall",
                args=args,
            )
        )

    # -- modeled lanes -------------------------------------------------
    def lane(self, kind: str, *, label: str = "") -> ModeledLane:
        """Create a fresh modeled lane, auto-numbered per ``kind``.

        ``lane("cuda")`` yields processes ``cuda:0``, ``cuda:1``, … on
        successive calls; ``label`` is appended for readability
        (``"cuda:0 (gtx1070)"``).  The lane is anchored at the current
        wall offset.
        """
        with self._lock:
            index = self._lane_counts.get(kind, 0)
            self._lane_counts[kind] = index + 1
        process = f"{kind}:{index}"
        if label:
            process = f"{process} ({label})"
        return ModeledLane(self, process, anchor=self._clock() - self._t0)

    # -- reading -------------------------------------------------------
    @property
    def events(self) -> list[SpanEvent]:
        """Snapshot of the recorded events (chronological per thread)."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullTracer:
    """The disabled tracer: every operation is an inert no-op.

    All methods return shared singletons — tracing a disabled run
    allocates nothing and reads no clock.
    """

    enabled = False

    def span(self, name: str, *, cat: str = "", args: dict | None = None) -> _NullSpan:
        return NULL_SPAN

    def complete(self, name, duration_s, *, cat="", end_s=None, args=None) -> None:
        pass

    def instant(self, name, *, cat="", args=None) -> None:
        pass

    def lane(self, kind: str, *, label: str = "") -> _NullLane:
        return NULL_LANE

    @property
    def events(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

#: the process-wide active tracer; worker threads (shard pools, the serve
#: worker) read it through :func:`get_tracer`, so enabling tracing on the
#: main thread covers them too
_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (a :class:`NullTracer` unless one was installed)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` process-wide; ``None`` restores the null tracer."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER
    return _active


@contextmanager
def use_tracer(tracer: Tracer | NullTracer | None):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    try:
        yield _active
    finally:
        _active = previous

"""Counter / gauge / histogram registry (DESIGN.md §11).

The metric primitives the whole stack shares.  :class:`Histogram` is the
log-bucketed latency histogram that used to be private to
``repro.serve.metrics`` (re-exported there as ``LatencyHistogram`` for
compatibility), generalized with cross-thread :meth:`Histogram.merge` —
bounded memory, ~±20 % bucket resolution, mergeable, the classic
monitoring trade-off.

A :class:`MetricsRegistry` names and owns instruments so independent
layers (serve pipeline, benchmark harness, ad-hoc scripts) can share one
snapshot without hand-rolled dict plumbing.  Everything is thread-safe
and JSON-serializable via ``snapshot()``.
"""

from __future__ import annotations

import math
import threading
from typing import Callable

__all__ = ["Counter", "Gauge", "Histogram", "LatencyHistogram", "MetricsRegistry"]


class Histogram:
    """Log-bucketed histogram of seconds with percentile estimation.

    Bucket upper bounds double every ``_BUCKETS_PER_OCTAVE`` buckets
    (sqrt(2) ratio), 1 µs … ~134 s.  ``merge`` folds another histogram in
    — the cross-thread aggregation path: record into thread-local
    histograms without contention, merge once at snapshot time.
    """

    #: bucket upper bounds double every ``2`` buckets (sqrt(2) ratio)
    _BUCKETS_PER_OCTAVE = 2
    _MIN_S = 1e-6
    _N_BUCKETS = 2 * 27  # up to _MIN_S * 2**27 ≈ 134 s

    def __init__(self) -> None:
        self.counts = [0] * self._N_BUCKETS
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds <= self._MIN_S:
            return 0
        idx = int(math.log2(seconds / self._MIN_S) * self._BUCKETS_PER_OCTAVE) + 1
        return min(idx, self._N_BUCKETS - 1)

    def _bucket_upper(self, idx: int) -> float:
        return self._MIN_S * 2.0 ** (idx / self._BUCKETS_PER_OCTAVE)

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self.counts[self._bucket(seconds)] += 1
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram (bucket-wise)."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        return self

    __iadd__ = merge

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile in seconds (0 when empty)."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for idx, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return min(self._bucket_upper(idx), self.max)
        return self.max

    def snapshot(self) -> dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_s": mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max,
        }


#: historical name — this class lived in ``repro.serve.metrics``
LatencyHistogram = Histogram


class Counter:
    """Monotonically increasing integer counter (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: either set directly or read via callback."""

    def __init__(self, fn: Callable[[], float] | None = None) -> None:
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted together.

    >>> reg = MetricsRegistry()
    >>> reg.counter("requests").inc()
    >>> reg.histogram("latency.run").record(0.012)
    >>> reg.snapshot()["counters"]["requests"]
    1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(fn)
            elif fn is not None:
                inst.set_fn(fn)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram()
            return inst

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }

"""Incremental re-convergence for mutable graphs (DESIGN.md §15).

After a :class:`~repro.stream.delta.GraphDelta`, the posterior mass that
actually moves concentrates around the dirty region (Gonzalez et al.,
*Distributed Parallel Inference on Large Factor Graphs*).  The
:class:`IncrementalEngine` exploits that: it keeps the converged
:class:`~repro.core.state.LoopyState` alive between deltas, patches or
migrates it instead of rebuilding, and restricts the schedule's initial
active set to the dirty region plus its downstream frontier — the PR-1
schedule machinery (work queue, residual priorities) then grows the
active set exactly as far as the perturbation propagates.

Compiled-executor lowerings (PR 7) bind to the state's buffer
identities, so they are reused across evidence-only deltas and dropped
only when structure actually changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.loopy import LoopyBP, LoopyConfig, LoopyResult
from repro.core.numeric import TINY32, safe_log
from repro.core.state import LoopyState
from repro.stream.delta import DeltaResult, GraphDelta, apply_delta
from repro.telemetry import get_metrics, get_tracer

__all__ = ["IncrementalEngine", "IncrementalResult"]


@dataclass
class IncrementalResult:
    """One delta's re-convergence outcome.

    ``mode`` records the path taken: ``"incremental"`` (warm start,
    dirty-region schedule) or ``"full"`` (cold re-convergence, used
    before the first :meth:`IncrementalEngine.converge` or when the
    dirty fraction exceeds the Credo ceiling).
    """

    result: LoopyResult
    mode: str
    structural: bool
    dirty_fraction: float
    reused_lowerings: bool

    @property
    def beliefs(self) -> np.ndarray:
        return self.result.beliefs

    @property
    def edges_swept(self) -> int:
        return int(self.result.run_stats.total.edges_processed)


class IncrementalEngine:
    """Warm-started BP over a mutable graph.

    Owns the graph, the cached converged state, and the executor cache.
    Apply deltas through :meth:`apply`; the engine decides incremental
    vs. full via :meth:`CredoSelector.select_update_mode`.
    """

    def __init__(
        self,
        graph,
        config: LoopyConfig | None = None,
        *,
        dirty_max_fraction: float | None = None,
    ):
        from repro.credo.selector import INCREMENTAL_DIRTY_MAX_FRACTION

        self.graph = graph
        self.config = config if config is not None else LoopyConfig()
        self.dirty_max_fraction = (
            INCREMENTAL_DIRTY_MAX_FRACTION
            if dirty_max_fraction is None
            else float(dirty_max_fraction)
        )
        self._state: LoopyState | None = None
        #: compiled/interpreted executors keyed by (name, paradigm, chunks);
        #: valid only while self._state's buffers are unchanged
        self._executor_cache: dict = {}
        self.structure_generation = 0
        self.updates_applied = 0

    # ------------------------------------------------------------------
    def converge(self) -> LoopyResult:
        """Cold full convergence; caches the resulting state."""
        with get_tracer().span("stream.converge", cat="stream"):
            state = LoopyState(self.graph)
            self._executor_cache.clear()
            result = LoopyBP(self.config).run(
                self.graph, state=state, executor_cache=self._executor_cache
            )
            self._state = state
        return result

    # ------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> IncrementalResult:
        """Apply ``delta`` and re-converge, warm-starting when profitable."""
        from repro.credo.selector import CredoSelector

        with get_tracer().span("stream.apply", cat="stream"):
            res = apply_delta(self.graph, delta)
            self.graph = res.graph
            self.updates_applied += 1
            metrics = get_metrics()
            metrics.counter("stream.updates").inc()
            metrics.gauge("stream.dirty_fraction").set(res.dirty_fraction)

            mode = CredoSelector().select_update_mode(
                res.dirty_fraction, structural=res.structural
            )
            if self._state is None:
                mode = "full"
            if mode == "full":
                if res.structural:
                    self.structure_generation += 1
                result = self.converge()
                return IncrementalResult(
                    result, "full", res.structural, res.dirty_fraction, False
                )

            reused = True
            if res.structural:
                self._state = self._migrate_state(self._state, res)
                self._executor_cache.clear()
                self.structure_generation += 1
                reused = False
            else:
                self._patch_evidence(self._state, res)
            state = self._state

            # Dirty beliefs must reflect the patched priors/evidence before
            # neighbours read them (node paradigm gathers neighbour beliefs).
            dirty = res.dirty_nodes
            free_dirty = dirty[state.free_mask[dirty]] if len(dirty) else dirty
            if len(free_dirty):
                state.beliefs[free_dirty] = state.combine_nodes(free_dirty)

            seed = self._seed_elements(state, dirty)
            result = LoopyBP(self.config).run(
                self.graph,
                state=state,
                active_seed=seed,
                executor_cache=self._executor_cache,
            )
        return IncrementalResult(
            result, "incremental", res.structural, res.dirty_fraction, reused
        )

    # ------------------------------------------------------------------
    def _patch_evidence(self, state: LoopyState, res: DeltaResult) -> None:
        """Rebind the state to the new graph; structure arrays are shared.

        Buffers mutate in place (rows of ``log_priors``/``beliefs``, the
        whole ``free_mask``) so compiled lowerings stay valid.
        """
        graph = res.graph
        state.graph = graph
        np.logical_not(graph.observed, out=state.free_mask)
        dirty = res.dirty_nodes
        if not len(dirty):
            return
        pri = graph.priors.dense()[dirty].astype(np.float32, copy=True)
        obs = graph.observed[dirty]
        if obs.any():
            rows = np.flatnonzero(obs)
            pri[rows] = TINY32
            pri[rows, graph.observed_state[dirty[rows]]] = 1.0
        state.log_priors[dirty] = safe_log(pri, TINY32)
        observed_dirty = dirty[obs]
        if len(observed_dirty):
            state.beliefs[observed_dirty] = 0.0
            state.beliefs[observed_dirty, graph.observed_state[observed_dirty]] = 1.0

    def _migrate_state(self, old: LoopyState, res: DeltaResult) -> LoopyState:
        """Rebuild the state for a new structure, keeping converged messages.

        Surviving edges carry their messages over via the delta's edge
        map; new edges start uniform.  Beliefs arrive warm through the
        graph's belief store (``apply_delta`` preserved them).
        """
        state = LoopyState(res.graph)
        edge_map = res.edge_map
        if edge_map is not None and len(edge_map):
            kept_old = np.flatnonzero(edge_map >= 0)
            if len(kept_old):
                state.messages[edge_map[kept_old]] = old.messages[kept_old]
                state._rebuild_log_msg_sum()
        return state

    def _seed_elements(self, state: LoopyState, dirty: np.ndarray) -> np.ndarray:
        """Schedule elements to repopulate: the dirty region's frontier.

        Node paradigm: the dirty nodes and their downstream neighbours
        (who must re-gather the changed beliefs).  Edge paradigm: the
        dirty nodes' outgoing edges (downstream requeueing propagates
        further).
        """
        if not len(dirty):
            return np.empty(0, dtype=np.int64)
        out_edges = state.gather_out_edges(dirty)
        if self.config.paradigm == "node":
            downstream = state.dst[out_edges]
            return np.unique(np.concatenate((dirty, downstream)))
        return np.unique(out_edges)

"""Chunked streaming loader for the dual-file MTX format (DESIGN.md §15).

The batch reader (:func:`repro.io.mtx.read_mtx_graph`) materializes the
full ``(m, 2)`` edge list — and, in per-edge mode, the full matrix stack
— before the graph exists.  At the paper's scale (hundreds of millions
of edges) that transient doubles peak memory.  This loader instead
parses both files line by line into :class:`StreamingGraphBuilder`,
whose structure arrays grow amortized (capacity doubling) and whose
live prefixes become the graph's arrays directly — zero copies at
build time, no intermediate edge list, and a bounded parse buffer of
``chunk_edges`` lines.

The builder is also the extension point for mutable models: seed it
with :meth:`StreamingGraphBuilder.from_graph`, append, and ``build()``
again.  Over-allocated capacity is reported through the graph's
``memory_footprint()["reserved"]`` entry rather than silently counted
as live data.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.potentials import PerEdgePotentialStore, SharedPotentialStore
from repro.io.mtx import _BELIEFS_RE, _SHARED_RE, MtxFormatError, _read_header

__all__ = ["GrowableArray", "StreamingGraphBuilder", "load_graph_stream"]

_FLOAT = np.float32

#: default number of edge lines buffered between bulk appends
DEFAULT_CHUNK_EDGES = 65536


class GrowableArray:
    """An amortized-growth numpy buffer (append/extend in O(1) amortized).

    ``view`` exposes the live prefix as a numpy view.  Growth allocates a
    fresh buffer, so views handed out before a regrow keep pointing at
    the old (still valid, fully populated) storage — a built graph is
    never mutated by later appends.
    """

    def __init__(self, shape_tail: tuple[int, ...] = (), dtype=np.int64, capacity: int = 16):
        self._shape_tail = tuple(int(s) for s in shape_tail)
        self._data = np.zeros((max(int(capacity), 1), *self._shape_tail), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return len(self._data)

    @property
    def view(self) -> np.ndarray:
        """Live prefix; a view, not a copy."""
        return self._data[: self._size]

    @property
    def slack_nbytes(self) -> int:
        """Bytes allocated beyond the live prefix."""
        return int(self._data[self._size :].nbytes)

    def reserve(self, capacity: int) -> None:
        """Grow storage to hold at least ``capacity`` rows."""
        if capacity <= len(self._data):
            return
        new_cap = max(int(capacity), 2 * len(self._data))
        grown = np.zeros((new_cap, *self._shape_tail), dtype=self._data.dtype)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, row) -> int:
        """Append one row; returns its index."""
        self.reserve(self._size + 1)
        self._data[self._size] = row
        self._size += 1
        return self._size - 1

    def extend(self, rows: np.ndarray) -> None:
        """Bulk-append ``rows`` (first axis is the row axis)."""
        rows = np.asarray(rows, dtype=self._data.dtype)
        if rows.shape[1:] != self._shape_tail:
            raise ValueError(
                f"row shape {rows.shape[1:]} != expected {self._shape_tail}"
            )
        self.reserve(self._size + len(rows))
        self._data[self._size : self._size + len(rows)] = rows
        self._size += len(rows)


class StreamingGraphBuilder:
    """Incrementally assemble a :class:`BeliefGraph` in bounded memory.

    Nodes and undirected edges append into growable arrays using the same
    directed-pair interleaving as :meth:`BeliefGraph.from_undirected`
    (``u→v`` at even ids with matrix ``J``, ``v→u`` at odd ids with
    ``Jᵀ``), so a streamed build is structurally bit-identical to the
    batch reader's result.

    Potential modes mirror the batch path: a symmetric shared matrix
    stays shared (§2.2); a non-symmetric shared matrix or any per-edge
    matrix switches the builder to an interleaved per-edge stack.
    """

    def __init__(
        self,
        n_states: int,
        *,
        layout: str = "aos",
        expect_nodes: int = 0,
        expect_edges: int = 0,
    ):
        if n_states < 1:
            raise ValueError("n_states must be positive")
        self.n_states = int(n_states)
        self.layout = layout
        b = self.n_states
        self._priors = GrowableArray((b,), _FLOAT, capacity=max(expect_nodes, 16))
        cap = max(2 * expect_edges, 16)
        self._src = GrowableArray((), np.int64, capacity=cap)
        self._dst = GrowableArray((), np.int64, capacity=cap)
        self._rev = GrowableArray((), np.int64, capacity=cap)
        #: per-edge matrix stack; ``None`` while in shared mode
        self._mats: GrowableArray | None = None
        self._shared: np.ndarray | None = None
        self._names: list[str] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: BeliefGraph) -> "StreamingGraphBuilder":
        """Seed a builder with an existing graph, ready for extension."""
        if not graph.uniform:
            raise ValueError("the streaming builder requires constant-width beliefs")
        builder = cls(
            max(graph.n_states, 1),
            layout=graph.layout,
            expect_nodes=graph.n_nodes,
            expect_edges=graph.n_edges // 2,
        )
        builder._priors.extend(graph.priors.dense())
        builder._src.extend(graph.src)
        builder._dst.extend(graph.dst)
        builder._rev.extend(graph.reverse_edge)
        default_names = [str(i) for i in range(graph.n_nodes)]
        if graph.node_names != default_names:
            builder._names = list(graph.node_names)
        if graph.potentials.shared:
            if graph.n_edges:
                builder.set_shared_potential(graph.potentials.matrix(0))
        else:
            builder._mats = GrowableArray(
                (builder.n_states, builder.n_states),
                _FLOAT,
                capacity=max(graph.n_edges, 16),
            )
            builder._mats.extend(graph.potentials.stacked())
        return builder

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._priors)

    @property
    def n_edges(self) -> int:
        """Directed edge count (2× the undirected count)."""
        return len(self._src)

    @property
    def slack_nbytes(self) -> int:
        """Total over-allocated (reserved but not live) bytes."""
        total = (
            self._priors.slack_nbytes
            + self._src.slack_nbytes
            + self._dst.slack_nbytes
            + self._rev.slack_nbytes
        )
        if self._mats is not None:
            total += self._mats.slack_nbytes
        return total

    # ------------------------------------------------------------------
    def set_shared_potential(self, matrix: np.ndarray) -> None:
        """Install the shared joint-probability matrix (§2.2).

        A non-symmetric matrix cannot stay shared — reverse edges need the
        transpose — so it switches the builder to per-edge mode, exactly
        as :meth:`BeliefGraph.from_undirected` would.
        """
        b = self.n_states
        matrix = np.asarray(matrix, dtype=_FLOAT)
        if matrix.shape != (b, b):
            raise ValueError(f"shared potential must be ({b}, {b})")
        if np.allclose(matrix, matrix.T, atol=1e-6):
            self._shared = matrix
        else:
            self._shared = matrix
            self._switch_to_per_edge()

    def _switch_to_per_edge(self) -> None:
        if self._mats is not None:
            return
        b = self.n_states
        self._mats = GrowableArray((b, b), _FLOAT, capacity=max(self.n_edges, 16))
        if self.n_edges:
            if self._shared is None:
                raise ValueError("edges exist but no potential was set")
            stack = np.empty((self.n_edges, b, b), dtype=_FLOAT)
            stack[0::2] = self._shared
            stack[1::2] = self._shared.T
            self._mats.extend(stack)

    # ------------------------------------------------------------------
    def add_node(self, prior: np.ndarray | None = None, name: str | None = None) -> int:
        """Append one node; returns its id.  ``prior=None`` means uniform."""
        b = self.n_states
        if prior is None:
            row = np.full(b, 1.0 / b, dtype=_FLOAT)
        else:
            row = np.asarray(prior, dtype=_FLOAT).reshape(-1)
            if len(row) != b:
                raise ValueError(f"prior needs {b} values, got {len(row)}")
        nid = self._priors.append(row)
        if name is not None:
            if self._names is None:
                self._names = [str(i) for i in range(nid)]
            self._names.append(name)
        elif self._names is not None:
            self._names.append(str(nid))
        return nid

    def add_nodes(self, count: int) -> None:
        """Bulk-append ``count`` uniform-prior nodes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        b = self.n_states
        self._priors.extend(np.full((count, b), 1.0 / b, dtype=_FLOAT))
        if self._names is not None:
            start = self.n_nodes - count
            self._names.extend(str(i) for i in range(start, self.n_nodes))

    def set_prior(self, node: int, values: Sequence[float]) -> None:
        """Overwrite a node's prior row in place."""
        row = np.asarray(values, dtype=_FLOAT).reshape(-1)
        if len(row) != self.n_states:
            raise ValueError(f"prior needs {self.n_states} values, got {len(row)}")
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range")
        self._priors.view[node] = row

    def reserve_edges(self, undirected: int) -> None:
        """Size the edge arrays for ``undirected`` more edges up front."""
        cap = self.n_edges + 2 * max(int(undirected), 0)
        for arr in (self._src, self._dst, self._rev):
            arr.reserve(cap)
        if self._mats is not None:
            self._mats.reserve(cap)

    def add_undirected_edges(
        self, pairs: np.ndarray, matrices: np.ndarray | None = None
    ) -> int:
        """Append undirected edges as interleaved directed pairs.

        Self loops are dropped (matching ``from_undirected``).  Returns
        the number of undirected edges actually added.
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if matrices is not None:
            b = self.n_states
            matrices = np.asarray(matrices, dtype=_FLOAT).reshape(-1, b, b)
            if len(matrices) != len(pairs):
                raise ValueError("one matrix per undirected edge required")
        keep = pairs[:, 0] != pairs[:, 1]
        pairs = pairs[keep]
        if matrices is not None:
            matrices = matrices[keep]
        k = len(pairs)
        if k == 0:
            return 0
        if pairs.min() < 0 or pairs.max() >= self.n_nodes:
            raise ValueError("edge endpoint out of range")

        # the mode switch (and its backfill of existing edges) must see the
        # edge arrays as they were before this batch
        if matrices is not None:
            self._switch_to_per_edge()
        elif self._mats is None and self._shared is None:
            raise ValueError("set a shared potential (or pass matrices) before adding edges")

        base = self.n_edges
        src = np.empty(2 * k, dtype=np.int64)
        dst = np.empty(2 * k, dtype=np.int64)
        src[0::2], dst[0::2] = pairs[:, 0], pairs[:, 1]
        src[1::2], dst[1::2] = pairs[:, 1], pairs[:, 0]
        rev = np.empty(2 * k, dtype=np.int64)
        rev[0::2] = base + np.arange(1, 2 * k, 2)
        rev[1::2] = base + np.arange(0, 2 * k, 2)
        self._src.extend(src)
        self._dst.extend(dst)
        self._rev.extend(rev)

        if self._mats is not None:
            source = matrices
            if source is None:
                source = np.broadcast_to(self._shared, (k, *self._shared.shape))
            stack = np.empty((2 * k, self.n_states, self.n_states), dtype=_FLOAT)
            stack[0::2] = source
            stack[1::2] = source.transpose(0, 2, 1)
            self._mats.extend(stack)
        return k

    def add_undirected_edge(self, u: int, v: int, matrix: np.ndarray | None = None) -> int:
        mats = None if matrix is None else np.asarray(matrix, dtype=_FLOAT)[None]
        return self.add_undirected_edges(np.array([[u, v]], dtype=np.int64), mats)

    # ------------------------------------------------------------------
    def build(self, *, collapse_identical: bool = True) -> BeliefGraph:
        """Construct the graph over the builder's live array prefixes.

        The structure arrays (src/dst/reverse, per-edge potentials) pass
        through as views — no copy.  The graph's ``reserved`` footprint
        entry records the builder's current over-allocation.
        """
        b = self.n_states
        m = self.n_edges
        pots: np.ndarray | PerEdgePotentialStore | SharedPotentialStore
        if self._mats is not None:
            stack = self._mats.view
            if collapse_identical and m and bool((stack == stack[0]).all()):
                pots = SharedPotentialStore(np.array(stack[0]), m)
            else:
                pots = PerEdgePotentialStore(stack)
        elif self._shared is not None:
            pots = SharedPotentialStore(self._shared, m)
        else:
            pots = SharedPotentialStore(np.eye(b, dtype=_FLOAT), m)
        graph = BeliefGraph(
            self._priors.view,
            self._src.view,
            self._dst.view,
            pots,
            reverse_edge=self._rev.view,
            node_names=self._names,
            layout=self.layout,
        )
        graph.reserved_nbytes = self.slack_nbytes
        return graph


# ----------------------------------------------------------------------
def load_graph_stream(
    node_path: str | Path,
    edge_path: str | Path,
    *,
    layout: str = "aos",
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    collapse_identical: bool = True,
) -> BeliefGraph:
    """Stream the dual-file format into a graph in bounded memory.

    Node and edge files are read line by line ("first by nodes and then
    edges", §3.2); edge lines buffer up to ``chunk_edges`` entries before
    each bulk append into the builder.  Validation and the resulting
    structure match :func:`repro.io.mtx.read_mtx_graph` exactly.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be positive")
    node_path, edge_path = Path(node_path), Path(edge_path)

    with open(node_path, "r", encoding="utf-8") as handle:
        directives, (rows, cols, entries), line_no = _read_header(handle, str(node_path))
        if rows != cols:
            raise MtxFormatError(f"{node_path}: node file must be square ({rows}x{cols})")
        n = rows
        b: int | None = None
        for d in directives:
            match = _BELIEFS_RE.match(d)
            if match:
                b = int(match.group("b"))
        builder: StreamingGraphBuilder | None = None
        seen = np.zeros(n, dtype=bool)
        count = 0
        for raw in handle:
            line_no += 1
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            parts = stripped.split()
            if len(parts) < 3:
                raise MtxFormatError(
                    f"{node_path}: node entry needs id, id and probabilities", line_no
                )
            try:
                i, j = int(parts[0]), int(parts[1])
                values = [float(p) for p in parts[2:]]
            except ValueError:
                raise MtxFormatError(f"{node_path}: malformed node entry", line_no) from None
            if i != j:
                raise MtxFormatError(
                    f"{node_path}: node entries must be self-cycling (got {i} {j})", line_no
                )
            if not 1 <= i <= n:
                raise MtxFormatError(f"{node_path}: node id {i} out of range 1..{n}", line_no)
            if b is None:
                b = len(values)
            if len(values) != b:
                raise MtxFormatError(
                    f"{node_path}: expected {b} probabilities, got {len(values)}", line_no
                )
            if builder is None:
                builder = StreamingGraphBuilder(b, layout=layout, expect_nodes=n)
                builder.add_nodes(n)
            if seen[i - 1]:
                raise MtxFormatError(f"{node_path}: duplicate node id {i}", line_no)
            seen[i - 1] = True
            builder.set_prior(i - 1, values)
            count += 1
        if count != entries:
            raise MtxFormatError(
                f"{node_path}: header declared {entries} entries but file holds {count}"
            )
        if builder is None:
            raise MtxFormatError(f"{node_path}: node file holds no entries")
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0]) + 1
            raise MtxFormatError(f"{node_path}: node {missing} has no entry")

    assert b is not None
    with open(edge_path, "r", encoding="utf-8") as handle:
        directives, (rows, cols, m), line_no = _read_header(handle, str(edge_path))
        if rows != n or cols != n:
            raise MtxFormatError(
                f"{edge_path}: edge file dimensions {rows}x{cols} disagree with node count {n}"
            )
        shared: np.ndarray | None = None
        for d in directives:
            match = _SHARED_RE.match(d)
            if match:
                vals = np.array(
                    [float(v) for v in match.group("vals").split()], dtype=_FLOAT
                )
                if len(vals) != b * b:
                    raise MtxFormatError(
                        f"{edge_path}: shared-potential needs {b * b} values, got {len(vals)}"
                    )
                shared = vals.reshape(b, b)
        if shared is not None:
            builder.set_shared_potential(shared)
        builder.reserve_edges(m)

        pending_pairs: list[tuple[int, int]] = []
        pending_mats: list[np.ndarray] = []

        def flush() -> None:
            if not pending_pairs:
                return
            pairs = np.array(pending_pairs, dtype=np.int64)
            mats = np.array(pending_mats, dtype=_FLOAT) if pending_mats else None
            builder.add_undirected_edges(pairs, mats)
            pending_pairs.clear()
            pending_mats.clear()

        count = 0
        for raw in handle:
            line_no += 1
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            parts = stripped.split()
            if count >= m:
                raise MtxFormatError(
                    f"{edge_path}: more entries than the declared {m}", line_no
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                values = [float(p) for p in parts[2:]]
            except (ValueError, IndexError):
                raise MtxFormatError(f"{edge_path}: malformed edge entry", line_no) from None
            if not (1 <= u <= n and 1 <= v <= n):
                raise MtxFormatError(f"{edge_path}: edge endpoint out of range", line_no)
            if shared is not None:
                if values:
                    raise MtxFormatError(
                        f"{edge_path}: shared-potential file must not carry per-edge matrices",
                        line_no,
                    )
            else:
                if len(values) != b * b:
                    raise MtxFormatError(
                        f"{edge_path}: expected {b * b} matrix entries, got {len(values)}",
                        line_no,
                    )
                pending_mats.append(np.asarray(values, dtype=_FLOAT).reshape(b, b))
            pending_pairs.append((u - 1, v - 1))
            count += 1
            if len(pending_pairs) >= chunk_edges:
                flush()
        flush()
        if count != m:
            raise MtxFormatError(
                f"{edge_path}: header declared {m} entries but file holds {count}"
            )

    return builder.build(collapse_identical=collapse_identical)

"""Validated graph deltas with journal/replay (DESIGN.md §15).

A :class:`GraphDelta` is one atomic batch of mutations against a
:class:`~repro.core.graph.BeliefGraph`: add nodes, add/remove undirected
edges, detach nodes, and set/clear evidence.  :func:`apply_delta` never
mutates its input — it returns a fresh graph plus the bookkeeping the
incremental engine and the serve layer need (dirty nodes, an old→new
edge-id map, whether structure changed).

Operations inside one batch apply in a fixed order: add nodes → add
edges → remove edges → detach nodes → observe → release.  Removing an
edge added in the same batch (or re-adding a removed one) is rejected —
split such sequences across two deltas.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.observation import observe

__all__ = ["DeltaJournal", "DeltaResult", "GraphDelta", "apply_delta"]

_FLOAT = np.float32

#: payload keys carrying structural operations
STRUCTURAL_KEYS = ("add_nodes", "add_edges", "remove_edges", "detach_nodes")
#: payload keys carrying evidence operations
EVIDENCE_KEYS = ("observe", "release")

NodeRef = int | str


@dataclass
class GraphDelta:
    """One validated batch of graph mutations.

    Node references may be ids or names; they resolve against the target
    graph at apply time.  The chaining builder methods return ``self``::

        delta = GraphDelta().add_node(name="probe").add_edge("probe", "alarm")
    """

    add_nodes: list[dict] = field(default_factory=list)
    add_edges: list[tuple] = field(default_factory=list)
    remove_edges: list[tuple] = field(default_factory=list)
    detach_nodes: list = field(default_factory=list)
    observe: list[tuple] = field(default_factory=list)
    release: list = field(default_factory=list)

    # -- chaining builders ----------------------------------------------
    def add_node(
        self, *, name: str | None = None, prior: Sequence[float] | None = None
    ) -> "GraphDelta":
        self.add_nodes.append(
            {"name": name, "prior": None if prior is None else [float(p) for p in prior]}
        )
        return self

    def add_edge(
        self, u: NodeRef, v: NodeRef, matrix: np.ndarray | None = None
    ) -> "GraphDelta":
        self.add_edges.append((u, v, None if matrix is None else np.asarray(matrix, _FLOAT)))
        return self

    def remove_edge(self, u: NodeRef, v: NodeRef) -> "GraphDelta":
        self.remove_edges.append((u, v))
        return self

    def detach_node(self, node: NodeRef) -> "GraphDelta":
        self.detach_nodes.append(node)
        return self

    def observe_node(self, node: NodeRef, state: int) -> "GraphDelta":
        self.observe.append((node, int(state)))
        return self

    def release_node(self, node: NodeRef) -> "GraphDelta":
        self.release.append(node)
        return self

    # -- predicates -----------------------------------------------------
    @property
    def structural(self) -> bool:
        """True when the delta changes graph structure (not just evidence)."""
        return bool(
            self.add_nodes or self.add_edges or self.remove_edges or self.detach_nodes
        )

    @property
    def empty(self) -> bool:
        return not (self.structural or self.observe or self.release)

    # -- wire format ----------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict, omitting empty operation lists."""
        payload: dict = {}
        if self.add_nodes:
            payload["add_nodes"] = [dict(spec) for spec in self.add_nodes]
        if self.add_edges:
            payload["add_edges"] = [
                [u, v, None if m is None else np.asarray(m, _FLOAT).tolist()]
                for u, v, m in self.add_edges
            ]
        if self.remove_edges:
            payload["remove_edges"] = [[u, v] for u, v in self.remove_edges]
        if self.detach_nodes:
            payload["detach_nodes"] = list(self.detach_nodes)
        if self.observe:
            payload["observe"] = [[node, int(state)] for node, state in self.observe]
        if self.release:
            payload["release"] = list(self.release)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "GraphDelta":
        """Parse the wire format, validating shapes (not graph semantics)."""
        if not isinstance(payload, dict):
            raise ValueError("delta payload must be a mapping")
        delta = cls()
        for spec in _as_list(payload, "add_nodes"):
            if not isinstance(spec, dict):
                raise ValueError("add_nodes entries must be mappings")
            delta.add_node(name=spec.get("name"), prior=spec.get("prior"))
        for entry in _as_list(payload, "add_edges"):
            if not isinstance(entry, (list, tuple)) or len(entry) not in (2, 3):
                raise ValueError("add_edges entries must be [u, v] or [u, v, matrix]")
            matrix = entry[2] if len(entry) == 3 and entry[2] is not None else None
            delta.add_edge(entry[0], entry[1], matrix)
        for entry in _as_list(payload, "remove_edges"):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValueError("remove_edges entries must be [u, v]")
            delta.remove_edge(entry[0], entry[1])
        for node in _as_list(payload, "detach_nodes"):
            delta.detach_node(node)
        for entry in _as_list(payload, "observe"):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValueError("observe entries must be [node, state]")
            delta.observe_node(entry[0], entry[1])
        for node in _as_list(payload, "release"):
            delta.release_node(node)
        return delta


def _as_list(payload: dict, key: str) -> list:
    value = payload.get(key, [])
    if not isinstance(value, list):
        raise ValueError(f"{key!r} must be a list")
    return value


@dataclass
class DeltaResult:
    """Outcome of :func:`apply_delta`.

    ``edge_map`` maps old directed edge ids to new ones (−1 for dropped
    edges); ``None`` when structure was untouched.  ``dirty_nodes`` are
    the nodes whose posteriors the delta can move directly — endpoints of
    added/removed edges plus every node whose prior or evidence changed.
    """

    graph: BeliefGraph
    dirty_nodes: np.ndarray
    structural: bool
    dirty_fraction: float
    edge_map: np.ndarray | None
    added_nodes: int = 0
    added_edges: int = 0
    removed_edges: int = 0


# ----------------------------------------------------------------------
def apply_delta(graph: BeliefGraph, delta: GraphDelta) -> DeltaResult:
    """Apply ``delta`` to ``graph``, returning a new graph.

    The input graph is never mutated.  Evidence-only deltas take the fast
    path (structure shared via :meth:`BeliefGraph.copy`); structural
    deltas rebuild the structure arrays with surviving posteriors and
    evidence carried over.
    """
    if not graph.uniform:
        raise ValueError("the delta layer requires constant-width beliefs")
    if not delta.structural:
        return _apply_evidence_only(graph, delta)
    return _apply_structural(graph, delta)


def _resolve(graph: BeliefGraph, node: NodeRef) -> int:
    nid = graph.node_id(node)
    if not 0 <= nid < graph.n_nodes:
        raise KeyError(f"node id {nid} out of range")
    return nid


def _release_node(graph: BeliefGraph, nid: int) -> None:
    graph.observed[nid] = False
    graph.observed_state[nid] = -1
    graph.beliefs.copy_rows_from(graph.priors, np.array([nid], dtype=np.int64))


def _apply_evidence_only(graph: BeliefGraph, delta: GraphDelta) -> DeltaResult:
    new = graph.copy()
    dirty: set[int] = set()
    for node, state in delta.observe:
        nid = _resolve(new, node)
        observe(new, nid, int(state))
        dirty.add(nid)
    for node in delta.release:
        nid = _resolve(new, node)
        if new.observed[nid]:
            _release_node(new, nid)
        dirty.add(nid)
    dirty_nodes = np.array(sorted(dirty), dtype=np.int64)
    return DeltaResult(
        graph=new,
        dirty_nodes=dirty_nodes,
        structural=False,
        dirty_fraction=len(dirty_nodes) / max(new.n_nodes, 1),
        edge_map=None,
    )


def _apply_structural(graph: BeliefGraph, delta: GraphDelta) -> DeltaResult:
    b = graph.n_states
    n_old, m_old = graph.n_nodes, graph.n_edges
    names = list(graph.node_names)
    dirty: set[int] = set()

    # -- new nodes ------------------------------------------------------
    new_names: dict[str, int] = {}
    prior_rows: list[np.ndarray] = []
    for spec in delta.add_nodes:
        nid = n_old + len(prior_rows)
        name = spec.get("name")
        if name is None:
            name = str(nid)
        if name in new_names or name in set(names):
            raise ValueError(f"node name {name!r} already exists")
        prior = spec.get("prior")
        if prior is None:
            row = np.full(b, 1.0 / b, dtype=_FLOAT)
        else:
            row = np.asarray(prior, dtype=_FLOAT).reshape(-1)
            if len(row) != b:
                raise ValueError(f"prior for node {name!r} needs {b} values")
            if not np.isfinite(row).all() or (row < 0).any() or row.sum() <= 0:
                raise ValueError(f"prior for node {name!r} is not a valid distribution")
        names.append(name)
        new_names[name] = nid
        prior_rows.append(row)
        dirty.add(nid)
    n_new = n_old + len(prior_rows)

    # -- resolve edge operations ---------------------------------------
    def resolve(node: NodeRef) -> int:
        """Resolve against the old graph plus this delta's new nodes."""
        if isinstance(node, str) and node in new_names:
            return new_names[node]
        nid = graph.node_id(node)
        if not 0 <= nid < n_new:
            raise KeyError(f"node id {nid} out of range")
        return nid

    pair_to_edge = {
        (int(s), int(d)): e for e, (s, d) in enumerate(zip(graph.src, graph.dst))
    }
    shared_mat = graph.potentials.matrix(0) if graph.potentials.shared and m_old else None

    add_pairs: list[tuple[int, int]] = []
    add_mats: list[np.ndarray | None] = []
    pending: set[tuple[int, int]] = set()
    for u, v, matrix in delta.add_edges:
        ui, vi = resolve(u), resolve(v)
        if ui == vi:
            raise ValueError(f"self loop on node {ui} is not allowed")
        if (ui, vi) in pair_to_edge or (vi, ui) in pair_to_edge:
            raise ValueError(f"edge {ui}–{vi} already exists")
        if (ui, vi) in pending or (vi, ui) in pending:
            raise ValueError(f"edge {ui}–{vi} added twice in one delta")
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=_FLOAT)
            if matrix.shape != (b, b):
                raise ValueError(f"edge potential must be ({b}, {b})")
            if not np.isfinite(matrix).all() or (matrix < 0).any():
                raise ValueError("edge potential must be finite and non-negative")
        add_pairs.append((ui, vi))
        add_mats.append(matrix)
        pending.add((ui, vi))
        dirty.update((ui, vi))

    removals: set[int] = set()
    for u, v in delta.remove_edges:
        ui, vi = resolve(u), resolve(v)
        eid = pair_to_edge.get((ui, vi))
        if eid is None:
            eid = pair_to_edge.get((vi, ui))
        if eid is None:
            raise ValueError(f"no edge {ui}–{vi} to remove")
        removals.add(eid)
        rev = int(graph.reverse_edge[eid])
        if rev >= 0:
            removals.add(rev)
    detached = {resolve(node) for node in delta.detach_nodes}
    for nid in detached:
        if nid < n_old:
            removals.update(int(e) for e in graph.in_edges(nid))
            removals.update(int(e) for e in graph.out_edges(nid))
        dirty.add(nid)
    if removals:
        removed = np.fromiter(removals, dtype=np.int64)
        dirty.update(int(x) for x in graph.src[removed])
        dirty.update(int(x) for x in graph.dst[removed])

    # -- rebuild node-side arrays --------------------------------------
    priors = np.empty((n_new, b), dtype=_FLOAT)
    priors[:n_old] = graph.priors.dense()
    if prior_rows:
        priors[n_old:] = np.stack(prior_rows)
    beliefs = np.empty((n_new, b), dtype=_FLOAT)
    beliefs[:n_old] = graph.beliefs.dense()
    observed = np.zeros(n_new, dtype=bool)
    observed[:n_old] = graph.observed
    observed_state = np.full(n_new, -1, dtype=np.int64)
    observed_state[:n_old] = graph.observed_state
    for nid in detached:
        priors[nid] = 1.0 / b
        beliefs[nid] = 1.0 / b
        observed[nid] = False
        observed_state[nid] = -1

    # -- rebuild edge-side arrays --------------------------------------
    keep = np.ones(m_old, dtype=bool)
    if removals:
        keep[np.fromiter(removals, dtype=np.int64)] = False
    kept = np.flatnonzero(keep)
    edge_map = np.full(m_old, -1, dtype=np.int64)
    edge_map[kept] = np.arange(len(kept), dtype=np.int64)

    k = len(add_pairs)
    m_new = len(kept) + 2 * k
    src = np.empty(m_new, dtype=np.int64)
    dst = np.empty(m_new, dtype=np.int64)
    rev = np.empty(m_new, dtype=np.int64)
    src[: len(kept)] = graph.src[kept]
    dst[: len(kept)] = graph.dst[kept]
    old_rev = graph.reverse_edge[kept]
    rev[: len(kept)] = np.where(old_rev >= 0, edge_map[old_rev], -1)
    if k:
        pairs = np.array(add_pairs, dtype=np.int64)
        base = len(kept)
        src[base + 0 :: 2], dst[base + 0 :: 2] = pairs[:, 0], pairs[:, 1]
        src[base + 1 :: 2], dst[base + 1 :: 2] = pairs[:, 1], pairs[:, 0]
        rev[base + 0 :: 2] = base + np.arange(1, 2 * k, 2)
        rev[base + 1 :: 2] = base + np.arange(0, 2 * k, 2)

    # -- potentials -----------------------------------------------------
    keeps_shared = graph.potentials.shared and all(m is None for m in add_mats)
    if keeps_shared:
        if m_new and shared_mat is None:
            raise ValueError("graph has no shared potential; edge additions need matrices")
        pots = (
            np.asarray(shared_mat, dtype=_FLOAT)
            if shared_mat is not None
            else np.eye(b, dtype=_FLOAT)
        )
    else:
        stack = np.empty((m_new, b, b), dtype=_FLOAT)
        stack[: len(kept)] = graph.potentials.stacked()[kept]
        for idx, matrix in enumerate(add_mats):
            if matrix is None:
                if shared_mat is None:
                    raise ValueError(
                        "per-edge graph: edge additions need explicit matrices"
                    )
                matrix = np.asarray(shared_mat, dtype=_FLOAT)
            stack[len(kept) + 2 * idx] = matrix
            stack[len(kept) + 2 * idx + 1] = matrix.T
        pots = stack

    new = BeliefGraph(
        priors,
        src,
        dst,
        pots,
        reverse_edge=rev,
        node_names=names,
        layout=graph.layout,
    )

    # -- carry posteriors and evidence over ----------------------------
    if prior_rows:
        beliefs[n_old:] = new.priors.dense()[n_old:]
    new.beliefs.load_dense(beliefs)
    for nid in np.flatnonzero(observed):
        observe(new, int(nid), int(observed_state[nid]))
    for node, state in delta.observe:
        nid = _resolve(new, node)
        observe(new, nid, int(state))
        dirty.add(nid)
    for node in delta.release:
        nid = _resolve(new, node)
        if new.observed[nid]:
            _release_node(new, nid)
        dirty.add(nid)

    dirty_nodes = np.array(sorted(dirty), dtype=np.int64)
    return DeltaResult(
        graph=new,
        dirty_nodes=dirty_nodes,
        structural=True,
        dirty_fraction=len(dirty_nodes) / max(n_new, 1),
        edge_map=edge_map,
        added_nodes=len(prior_rows),
        added_edges=2 * k,
        removed_edges=int(m_old - len(kept)),
    )


# ----------------------------------------------------------------------
class DeltaJournal:
    """An append-only log of deltas, replayable onto a fresh graph.

    Persists as JSON lines (one :meth:`GraphDelta.to_payload` per line),
    so a journal written by one process replays bit-exactly in another —
    the recovery story for mutable served models.
    """

    def __init__(self, deltas: Iterable[GraphDelta] | None = None):
        self.deltas: list[GraphDelta] = list(deltas or [])

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[GraphDelta]:
        return iter(self.deltas)

    def append(self, delta: GraphDelta) -> None:
        self.deltas.append(delta)

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as out:
            for delta in self.deltas:
                out.write(json.dumps(delta.to_payload(), sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "DeltaJournal":
        journal = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    journal.append(GraphDelta.from_payload(json.loads(line)))
        return journal

    def replay(self, graph: BeliefGraph) -> BeliefGraph:
        """Apply every delta in order; returns the final graph."""
        for delta in self.deltas:
            graph = apply_delta(graph, delta).graph
        return graph

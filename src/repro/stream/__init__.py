"""Streaming construction and incremental maintenance of belief graphs.

``repro.stream`` (DESIGN.md §15) makes models mutable end to end:

* :mod:`repro.stream.loader` — a chunked streaming loader that builds a
  :class:`~repro.core.graph.BeliefGraph` from the dual-file MTX format
  (§3.2) in bounded memory, growing structure arrays amortized instead
  of materializing intermediate edge lists;
* :mod:`repro.stream.delta` — :class:`GraphDelta`, a validated batch of
  add/remove node, edge, and evidence operations, plus a replayable
  :class:`DeltaJournal`;
* :mod:`repro.stream.incremental` — :class:`IncrementalEngine`, which
  re-converges after a delta by warm-starting from cached posteriors and
  repopulating only the dirty region's schedule.

The serve layer exposes the same machinery through the ``update``
request op (``repro.serve.protocol``) and ``credo update``.
"""

from repro.stream.delta import DeltaJournal, DeltaResult, GraphDelta, apply_delta
from repro.stream.incremental import IncrementalEngine, IncrementalResult
from repro.stream.loader import GrowableArray, StreamingGraphBuilder, load_graph_stream

__all__ = [
    "DeltaJournal",
    "DeltaResult",
    "GraphDelta",
    "GrowableArray",
    "IncrementalEngine",
    "IncrementalResult",
    "StreamingGraphBuilder",
    "apply_delta",
    "load_graph_stream",
]

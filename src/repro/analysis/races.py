"""Dynamic lockset-style race detector for sharded BP execution.

Static rules can't see whether two shard sweeps actually touch
overlapping rows, so this module instruments the live arrays instead:
:class:`TrackedArray` wraps a ``LoopyState`` array and logs every
``__getitem__`` / ``__setitem__`` with the accessing thread, the rows
touched, the locks held, and the current *epoch*.

The epoch is what makes the classic Eraser lockset algorithm usable on
fork-join code: :class:`~repro.core.sharded.ShardedLoopyBP` alternates
parallel shard sweeps with a serial boundary exchange, separated by
``pool.map``'s implicit barrier.  Accesses on opposite sides of a
barrier are ordered by it and can never race, so the runner calls
:meth:`RaceDetector.on_phase` at each barrier and the detector bumps a
global epoch counter.  A pair of accesses is then a race iff:

* different threads, same epoch (no barrier between them),
* same array, intersecting rows, at least one write,
* empty lockset intersection (no common lock held).

The async shard policy (DESIGN.md §12) has no global barrier: shard
epochs legitimately overlap in wall time, so a single global counter
would flag phantom races between, say, shard 0's sweep and shard 2's
merge.  Epochs are therefore *per domain*: each tracked array belongs to
the ``shardN`` domain its name is prefixed with, and the driver's
:meth:`RaceDetector.on_shard_phase` hook advances only that domain's
clock.  An access's effective epoch is ``global + domain`` — global
barriers (:meth:`on_phase`) still order everything, while shard-local
phase edges order only that shard's arrays.  Cross-shard pairs can never
false-positive anyway (the array name, domain prefix included, is part
of the grouping key).

Usage (also wired through ``QueryEngine.instrument``)::

    det = RaceDetector()
    result = ShardedLoopyBP(cfg, pool=pool, instrument=det).run(sharded)
    det.assert_race_free()
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Access", "RaceDetector", "RaceError", "TrackedArray"]

#: row sets larger than this are summarized as "whole array" (None)
_MAX_ROWSET = 1024


def _normalize_rows(key, length: int) -> frozenset[int] | None:
    """First-axis rows touched by an indexing key; None = possibly all."""
    if isinstance(key, tuple):
        if not key:
            return None
        key = key[0]
    if key is Ellipsis or key is None:
        return None
    if isinstance(key, (int, np.integer)):
        return frozenset({int(key) % max(length, 1)})
    if isinstance(key, slice):
        start, stop, step = key.indices(length)
        span = range(start, stop, step)
        if len(span) > _MAX_ROWSET:
            return None
        return frozenset(span)
    if isinstance(key, (list, np.ndarray)):
        arr = np.asarray(key)
        if arr.dtype == bool:
            arr = np.flatnonzero(arr)
        if arr.ndim != 1 or arr.size > _MAX_ROWSET:
            return None
        return frozenset(int(i) % max(length, 1) for i in arr)
    return None


def _rows_intersect(a: frozenset[int] | None, b: frozenset[int] | None) -> bool:
    if a is None or b is None:
        return True  # "possibly whole array" overlaps everything
    return bool(a & b)


@dataclass(frozen=True)
class Access:
    """One logged read or write of a tracked array."""

    seq: int
    array: str
    rows: frozenset[int] | None
    write: bool
    thread: int
    epoch: int
    locks: frozenset[str]
    site: str = ""

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        rows = (
            "rows{all}"
            if self.rows is None
            else "rows{" + ",".join(str(r) for r in sorted(self.rows)[:8]) + "}"
        )
        where = f" at {self.site}" if self.site else ""
        return f"{kind} of {self.array} {rows} [thread {self.thread}, epoch {self.epoch}]{where}"


class TrackedArray(np.ndarray):
    """ndarray view that reports row-level accesses to a detector.

    Indexing returns plain ``np.ndarray`` (tracking covers the shared
    state array itself, not derived temporaries), so downstream kernel
    math runs at native speed.
    """

    def __new__(cls, arr: np.ndarray, detector: "RaceDetector", name: str):
        obj = np.asarray(arr).view(cls)
        obj._detector = detector
        obj._name = name
        return obj

    def __array_finalize__(self, obj):
        # ufunc results / implicit views do not inherit tracking
        if not hasattr(self, "_detector"):
            self._detector = None
            self._name = ""

    def __getitem__(self, key):
        det = self._detector
        if det is not None:
            det._record(self._name, _normalize_rows(key, len(self)), write=False)
        out = super().__getitem__(key)
        if isinstance(out, np.ndarray):
            out = out.view(np.ndarray)
        return out

    def __setitem__(self, key, value):
        det = self._detector
        if det is not None:
            det._record(self._name, _normalize_rows(key, len(self)), write=True)
        super().__setitem__(key, value)


class RaceError(RuntimeError):
    """Raised by :meth:`RaceDetector.assert_race_free`; carries the pairs."""

    def __init__(self, races: list[tuple[Access, Access]]):
        self.races = races
        lines = [f"{len(races)} unsynchronized access pair(s):"]
        lines.extend(f"  {a.describe()}  <->  {b.describe()}" for a, b in races[:20])
        super().__init__("\n".join(lines))


@dataclass
class _HeldLock:
    """Real lock + lockset bookkeeping, handed out by :meth:`RaceDetector.lock`."""

    detector: "RaceDetector"
    name: str
    real: threading.Lock = field(default_factory=threading.Lock)

    def __enter__(self) -> "_HeldLock":
        self.real.acquire()
        self.detector._held().add(self.name)
        return self

    def __exit__(self, *exc) -> None:
        self.detector._held().discard(self.name)
        self.real.release()


class RaceDetector:
    """Collects :class:`Access` logs and reports lockset violations."""

    def __init__(self, capture_sites: bool = True):
        self.capture_sites = capture_sites
        self._meta = threading.Lock()
        self._accesses: list[Access] = []
        self._epoch = 0
        #: per-domain epoch offsets on top of the global clock (async
        #: shard-local phase edges; see module docstring)
        self._domain_epochs: dict[str, int] = {}
        self._phase = "start"
        self._locks: dict[str, _HeldLock] = {}
        self._local = threading.local()

    # -- instrumentation hooks (ShardedLoopyBP protocol) ----------------
    def on_states(self, states) -> None:
        """Swap each shard state's hot arrays for tracked views.

        Also opens a fresh epoch: a new run starting is itself a
        happens-after edge (the engine finishes one query before the
        next), so its accesses must not share an epoch with the
        previous run's tail.
        """
        self.on_phase("run-start")
        for i, st in enumerate(states):
            st.beliefs = self.track(st.beliefs, f"shard{i}.beliefs")
            st.messages = self.track(st.messages, f"shard{i}.messages")

    def on_phase(self, label: str) -> None:
        """A global barrier was crossed: accesses before/after can't race."""
        with self._meta:
            self._epoch += 1
            self._phase = label

    next_epoch = on_phase  # alias for hand-driven tests

    def on_shard_phase(self, shard: int, label: str) -> None:
        """A shard-local phase edge (async policy): orders only accesses
        to ``shard<shard>.*`` arrays — other shards' epochs, which may
        legitimately overlap this one in wall time, are untouched."""
        with self._meta:
            domain = f"shard{shard}"
            self._domain_epochs[domain] = self._domain_epochs.get(domain, 0) + 1
            self._phase = f"{domain}:{label}"

    # -- public API ------------------------------------------------------
    def track(self, arr: np.ndarray, name: str) -> TrackedArray:
        return TrackedArray(arr, self, name)

    def lock(self, name: str = "lock") -> _HeldLock:
        """A named lock; accesses under ``with det.lock(n):`` share n."""
        with self._meta:
            return self._locks.setdefault(name, _HeldLock(self, name))

    @property
    def epoch(self) -> int:
        with self._meta:
            return self._epoch

    @property
    def n_accesses(self) -> int:
        return len(self._accesses)

    def clear(self) -> None:
        with self._meta:
            self._accesses.clear()

    def check(self) -> list[tuple[Access, Access]]:
        """All racing pairs (see module docstring for the predicate)."""
        with self._meta:
            accesses = list(self._accesses)
        groups: dict[tuple[str, int], list[Access]] = {}
        for acc in accesses:
            groups.setdefault((acc.array, acc.epoch), []).append(acc)
        races: list[tuple[Access, Access]] = []
        seen: set[frozenset[int]] = set()
        for group in groups.values():
            writes = [a for a in group if a.write]
            if not writes:
                continue
            for w in writes:
                for other in group:
                    if other.thread == w.thread:
                        continue
                    pair_id = frozenset((w.seq, other.seq))
                    if pair_id in seen:
                        continue
                    if not _rows_intersect(w.rows, other.rows):
                        continue
                    if w.locks & other.locks:
                        continue
                    seen.add(pair_id)
                    races.append((w, other))
        races.sort(key=lambda pair: (pair[0].seq, pair[1].seq))
        return races

    def report(self) -> str:
        races = self.check()
        if not races:
            return f"race-free: {self.n_accesses} access(es), {self.epoch + 1} epoch(s)"
        return str(RaceError(races))

    def assert_race_free(self) -> None:
        races = self.check()
        if races:
            raise RaceError(races)

    # -- internals -------------------------------------------------------
    def _held(self) -> set[str]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = set()
        return held

    def _site(self) -> str:
        if not self.capture_sites:
            return ""
        try:
            frame = sys._getframe(3)
            return f"{frame.f_code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"
        except ValueError:
            return ""

    @staticmethod
    def _domain_of(name: str) -> str:
        """The epoch domain an array name belongs to (``""`` = global)."""
        prefix, sep, _ = name.partition(".")
        if sep and prefix.startswith("shard") and prefix[5:].isdigit():
            return prefix
        return ""

    def _record(self, name: str, rows: frozenset[int] | None, write: bool) -> None:
        site = self._site()
        locks = frozenset(self._held())
        domain = self._domain_of(name)
        with self._meta:
            self._accesses.append(
                Access(
                    seq=len(self._accesses),
                    array=name,
                    rows=rows,
                    write=write,
                    thread=threading.get_ident(),
                    epoch=self._epoch + self._domain_epochs.get(domain, 0),
                    locks=locks,
                    site=site,
                )
            )

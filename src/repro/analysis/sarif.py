"""SARIF 2.1.0 export for the static checker.

One ``run`` per invocation: the rule catalog goes into
``tool.driver.rules`` and every finding becomes a ``result`` with a
``physicalLocation`` and a ``partialFingerprints`` entry carrying the
framework's stable baseline fingerprint — so GitHub code scanning
deduplicates findings the same way the baseline file does.

:func:`validate_sarif` is a self-contained structural check of the
subset of the SARIF 2.1.0 schema we emit (the toolchain bakes in no
JSON-schema validator, and CI must not depend on one).
"""

from __future__ import annotations

import json

from repro.analysis.framework import AnalysisResult, Finding, Rule

__all__ = ["render_sarif", "validate_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.description or rule.name},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    out = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                        "snippet": {"text": finding.snippet},
                    },
                }
            }
        ],
        "partialFingerprints": {"reproBaseline/v1": finding.fingerprint},
    }
    if finding.rule in rule_index:
        out["ruleIndex"] = rule_index[finding.rule]
    return out


def render_sarif(result: AnalysisResult, rules: list[Rule]) -> str:
    """The full SARIF 2.1.0 document for one analyzer run, as JSON."""
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    doc = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "https://github.com/repro/repro#linting"
                        ),
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": [
                    _result(f, rule_index) for f in result.findings
                ],
                "invocations": [
                    {
                        "executionSuccessful": True,
                        "toolExecutionNotifications": [
                            {"level": "error", "message": {"text": err}}
                            for err in result.errors
                        ],
                    }
                ],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def validate_sarif(doc: dict | str) -> list[str]:
    """Structural validation against the emitted SARIF 2.1.0 subset.

    Returns a list of problems (empty = valid).
    """
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not JSON: {exc}"]
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        driver = (run.get("tool") or {}).get("driver")
        if not isinstance(driver, dict) or not driver.get("name"):
            problems.append(f"{where}.tool.driver.name is required")
            driver = {}
        rules = driver.get("rules", [])
        rule_ids = set()
        for i, rule in enumerate(rules):
            if not isinstance(rule, dict) or not rule.get("id"):
                problems.append(f"{where}.tool.driver.rules[{i}].id is required")
            else:
                rule_ids.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for i, res in enumerate(results):
            rwhere = f"{where}.results[{i}]"
            if not isinstance(res, dict):
                problems.append(f"{rwhere} is not an object")
                continue
            message = res.get("message")
            if not isinstance(message, dict) or "text" not in message:
                problems.append(f"{rwhere}.message.text is required")
            if res.get("level") not in ("none", "note", "warning", "error"):
                problems.append(f"{rwhere}.level is invalid")
            rule_id = res.get("ruleId")
            if rule_ids and rule_id not in rule_ids:
                problems.append(f"{rwhere}.ruleId {rule_id!r} not in catalog")
            idx = res.get("ruleIndex")
            if idx is not None and not (
                isinstance(idx, int) and 0 <= idx < len(rules)
            ):
                problems.append(f"{rwhere}.ruleIndex out of range")
            for li, loc in enumerate(res.get("locations", [])):
                phys = (loc or {}).get("physicalLocation", {})
                art = phys.get("artifactLocation", {})
                if not art.get("uri"):
                    problems.append(
                        f"{rwhere}.locations[{li}] artifactLocation.uri missing"
                    )
                region = phys.get("region", {})
                start = region.get("startLine")
                if not (isinstance(start, int) and start >= 1):
                    problems.append(
                        f"{rwhere}.locations[{li}] region.startLine must be >= 1"
                    )
    return problems

"""Abstract interpreter propagating shape/dtype/alias facts interprocedurally.

One :class:`Engine` is built per analyzed project.  For every function it
runs a flow-sensitive pass over the AST with parameters bound through the
conventions in :mod:`~repro.analysis.dataflow.contracts` (``graph`` →
``BeliefGraph`` seeds, ``state``/``self`` → contracts *derived* by
interpreting the owning class's ``__init__``).  Each pass yields both a
:class:`FunctionSummary` (consumed at call sites) and the function's
:class:`Diagnostic` list (consumed by the RPR4xx rules); both are memoized
so every function is interpreted exactly once.

Diagnostic kinds map 1:1 onto the rule family:

* ``shape-mismatch`` / ``gather-mismatch`` → RPR401
* ``dtype-downcast``                       → RPR402
* ``war-hazard``                           → RPR403
* ``scratch-escape``                       → RPR404
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.axes import (
    NAMED_AXES,
    UNKNOWN,
    ArrayValue,
    ScalarValue,
    axes_broadcastable,
    broadcast_shapes,
    join_values,
    promote_dtype,
)
from repro.analysis.dataflow.contracts import (
    GRAPH_ATTRS,
    GRAPH_METHODS,
    GRAPH_SCALARS,
    class_for_param,
)
from repro.analysis.dataflow.symbols import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = ["Diagnostic", "Engine", "ClassContracts", "FunctionSummary"]


@dataclass(frozen=True)
class Instance:
    """An object of a known contract class (``self``, ``state``, ``graph``)."""

    class_name: str


@dataclass(frozen=True)
class DtypeValue:
    """A dtype object (``np.float32``, ``_FLOAT``)."""

    name: str


@dataclass
class Diagnostic:
    kind: str
    node: ast.AST
    func: FunctionInfo
    message: str


@dataclass
class ClassContracts:
    name: str
    attrs: dict = field(default_factory=dict)
    #: attr names of scratch buffers: allocated raw in ``__init__`` and
    #: reused as ``out=`` targets by the class's own methods
    scratch: frozenset = frozenset()


@dataclass
class FunctionSummary:
    """Call-site-visible effect of one function."""

    returns: object = None  # value, tuple of values, or None


_ALLOC_FUNCS = {"empty", "zeros", "ones", "full", "eye"}
_PASSTHROUGH_FRESH = {"safe_log", "normalize_rows", "_normalize_fast"}
_ELEMWISE_UNARY = {"abs", "exp", "log", "log2", "sqrt", "negative", "square"}
_ELEMWISE_BINARY = {
    "add", "subtract", "multiply", "divide", "true_divide", "maximum",
    "minimum", "power", "float_power", "logaddexp",
}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_full_slice(sl: ast.AST) -> bool:
    return (
        isinstance(sl, ast.Slice)
        and sl.lower is None and sl.upper is None and sl.step is None
    )


# ----------------------------------------------------------------------
# Occurrence scan: source-ordered loads/kills per tracked dotted name,
# used by the write-after-read (RPR403) check.
# ----------------------------------------------------------------------
class _Occurrences:
    def __init__(self, func: ast.FunctionDef):
        self.events: list[tuple[int, str, str]] = []  # (stmt idx, name, kind)
        self.stmt_index: dict[int, int] = {}  # id(stmt) → idx
        self.loop_span: dict[int, tuple[int, int]] = {}  # id(stmt) → innermost loop
        self._counter = 0
        self._loops: list[tuple[int, int]] = []  # (start idx, id(loop))
        self._walk_body(func.body)

    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            idx = self._counter
            self._counter += 1
            self.stmt_index[id(stmt)] = idx
            if self._loops:
                self.loop_span[id(stmt)] = (self._loops[-1][0], -1)
            self._collect_events(stmt, idx)
            if isinstance(stmt, (ast.For, ast.While)):
                self._loops.append((idx, id(stmt)))
                self._walk_body(stmt.body)
                start = self._loops.pop()[0]
                end = self._counter
                for sid, (s, e) in list(self.loop_span.items()):
                    if s == start and e == -1:
                        self.loop_span[sid] = (start, end)
                self._walk_body(stmt.orelse)
            elif isinstance(stmt, ast.If):
                self._walk_body(stmt.body)
                self._walk_body(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.Try)):
                self._walk_body(getattr(stmt, "body", []))
                for handler in getattr(stmt, "handlers", []):
                    self._walk_body(handler.body)
                self._walk_body(getattr(stmt, "orelse", []))
                self._walk_body(getattr(stmt, "finalbody", []))

    def _collect_events(self, stmt: ast.stmt, idx: int) -> None:
        skip: set[int] = set()  # ids of expression nodes excluded from loads
        kills: list[str] = []

        def note_store_target(t: ast.expr) -> None:
            if isinstance(t, (ast.Name, ast.Attribute)):
                name = dotted_name(t)
                if name:
                    kills.append(name)
                skip.add(id(t))
            elif isinstance(t, ast.Subscript):
                base = dotted_name(t.value)
                if base:
                    skip.add(id(t.value))
                    if _is_full_slice(t.slice):
                        kills.append(base)
            elif isinstance(t, (ast.Tuple, ast.List)):
                for el in t.elts:
                    note_store_target(el)

        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                note_store_target(t)
        elif isinstance(stmt, ast.AnnAssign) and stmt.target is not None:
            note_store_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            # reads the old value, so the base stays a load; no kill
            pass
        elif isinstance(stmt, ast.For):
            note_store_target(stmt.target)

        for node in ast.walk(stmt):
            if isinstance(node, ast.stmt) and node is not stmt:
                break  # nested statements get their own indices
            if isinstance(node, ast.Call):
                if isinstance(node.func, (ast.Name, ast.Attribute)):
                    skip.add(id(node.func))
                for kw in node.keywords:
                    if kw.arg == "out":
                        target = kw.value
                        if isinstance(target, ast.Subscript):
                            skip.add(id(target.value))
                        else:
                            name = dotted_name(target)
                            if name:
                                kills.append(name)
                            skip.add(id(target))

        loads: set[str] = set()
        for node in ast.walk(stmt):
            if id(node) in skip:
                continue
            if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                # only record the outermost chain, not its sub-chains
                name = dotted_name(node)
                if name:
                    loads.add(name)
        # sub-chain cleanup: "state.beliefs" load also walked "state";
        # keep both — a read through any prefix is still a read
        for name in sorted(loads):
            self.events.append((idx, name, "load"))
        for name in kills:
            self.events.append((idx, name, "kill"))

    # -- queries --------------------------------------------------------
    def live_after(self, stmt: ast.stmt, name: str) -> bool:
        """Is ``name`` read after ``stmt`` before being rebound?  Wraps
        around the innermost enclosing loop (a value written late in an
        iteration can be read at the top of the next one)."""
        idx = self.stmt_index.get(id(stmt))
        if idx is None:
            return False
        following = sorted(
            (i, kind) for i, n, kind in self.events if n == name and i > idx
        )
        span = self.loop_span.get(id(stmt))
        if span is not None:
            following = [(i, k) for i, k in following if i < span[1]]
        for _, kind in following:
            return kind == "load"
        if span is not None:
            wrapped = sorted(
                (i, kind)
                for i, n, kind in self.events
                if n == name and span[0] <= i < idx
            )
            for _, kind in wrapped:
                return kind == "load"
        return False


# ----------------------------------------------------------------------
class Engine:
    """Whole-program shape/dtype/alias propagation with memoized
    per-function passes."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._classes: dict[str, ClassContracts | None] = {}
        self._deriving: set[str] = set()
        self._runs: dict[str, tuple[FunctionSummary, list[Diagnostic]]] = {}
        self._running: set[str] = set()
        self._module_envs: dict[str, dict] = {}
        self._fresh_counter = 0

    # -- public API -----------------------------------------------------
    def analyze_module(self, module: ModuleInfo) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for finfo in self.index.functions.values():
            if finfo.module is module:
                _, diags = self.run_function(finfo)
                out.extend(diags)
        return out

    def class_contracts(self, name: str) -> ClassContracts | None:
        if name in self._classes:
            return self._classes[name]
        if name == "BeliefGraph":
            attrs: dict = dict(GRAPH_ATTRS)
            attrs.update(GRAPH_SCALARS)
            contracts = ClassContracts("BeliefGraph", attrs)
            self._classes[name] = contracts
            return contracts
        cinfo = self.index.resolve_class(name)
        if cinfo is None or name in self._deriving:
            return None
        init = cinfo.methods.get("__init__")
        if init is None:
            self._classes[name] = ClassContracts(name)
            return self._classes[name]
        self._deriving.add(name)
        try:
            interp = _Interp(self, init, collect_attrs=True)
            interp.run()
            raw_allocs = interp.raw_alloc_attrs
        finally:
            self._deriving.discard(name)
        out_targets = self._out_target_attrs(cinfo)
        contracts = ClassContracts(
            name, interp.self_attrs, frozenset(raw_allocs & out_targets)
        )
        self._classes[name] = contracts
        return contracts

    def run_function(
        self, finfo: FunctionInfo
    ) -> tuple[FunctionSummary, list[Diagnostic]]:
        key = finfo.qualname
        if key in self._runs:
            return self._runs[key]
        if key in self._running:
            return FunctionSummary(), []
        self._running.add(key)
        try:
            interp = _Interp(self, finfo)
            summary, diags = interp.run()
        finally:
            self._running.discard(key)
        self._runs[key] = (summary, diags)
        return summary, diags

    # -- helpers --------------------------------------------------------
    def _out_target_attrs(self, cinfo) -> set[str]:
        """Attr names appearing as (possibly sliced) ``out=`` targets in
        any method of the class."""
        targets: set[str] = set()
        for node in ast.walk(cinfo.node):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "out":
                    continue
                expr = kw.value
                if isinstance(expr, ast.Subscript):
                    expr = expr.value
                name = dotted_name(expr)
                if name and name.startswith("self."):
                    targets.add(name.split(".", 1)[1])
        return targets

    def fresh_token(self, hint: str) -> str:
        self._fresh_counter += 1
        return f"local:{hint}@{self._fresh_counter}"

    def module_env(self, module: ModuleInfo) -> dict:
        env = self._module_envs.get(module.name)
        if env is not None:
            return env
        env = {}
        self._module_envs[module.name] = env
        interp = _Interp(self, None, module=module)
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    try:
                        env[target.id] = interp.eval(stmt.value)
                    except Exception:
                        env[target.id] = None
        return env

    def lookup_global(self, module: ModuleInfo, name: str):
        env = self.module_env(module)
        if name in env and env[name] is not None:
            return env[name]
        target = module.imports.get(name)
        if target:
            mod_name, _, attr = target.rpartition(".")
            other = self.index.modules.get(mod_name)
            if other is not None:
                other_env = self.module_env(other)
                if attr in other_env:
                    return other_env[attr]
            cls = self.index.resolve_class(name)
            if cls is not None:
                return None
        return None


# ----------------------------------------------------------------------
class _Interp:
    """Flow-sensitive interpretation of one function body."""

    def __init__(
        self,
        engine: Engine,
        finfo: FunctionInfo | None,
        *,
        module: ModuleInfo | None = None,
        collect_attrs: bool = False,
    ):
        self.engine = engine
        self.finfo = finfo
        self.module = module if module is not None else (finfo.module if finfo else None)
        self.env: dict[str, object] = {}
        self.diags: list[Diagnostic] = []
        self.returns: list[object] = []
        self.collect_attrs = collect_attrs
        self.self_attrs: dict[str, object] = {}
        self.raw_alloc_attrs: set[str] = set()
        self._cur_stmt: ast.stmt | None = None
        self._occ: _Occurrences | None = None
        self._self_class: str | None = None
        if finfo is not None:
            self._bind_params()

    # -- setup ----------------------------------------------------------
    def _bind_params(self) -> None:
        fn = self.finfo
        args = fn.node.args
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for i, arg in enumerate(params):
            name = arg.arg
            if name == "self" and fn.cls is not None:
                self._self_class = fn.cls.name
                self.env[name] = Instance(fn.cls.name)
                continue
            ann = None
            if arg.annotation is not None:
                ann = dotted_name(arg.annotation) or (
                    arg.annotation.value
                    if isinstance(arg.annotation, ast.Constant)
                    else None
                )
                if isinstance(ann, str):
                    ann = ann.split(".")[-1].strip('"')
            cls = class_for_param(name, ann)
            if cls is not None:
                self.env[name] = Instance(cls)
            else:
                self.env[name] = ArrayValue(
                    aliases=frozenset({f"<param:{fn.qualname}:{i}>"})
                )

    def run(self) -> tuple[FunctionSummary, list[Diagnostic]]:
        if self.finfo is not None:
            self._occ = _Occurrences(self.finfo.node)
            self.exec_body(self.finfo.node.body)
        ret = None
        for r in self.returns:
            ret = r if ret is None else self._join_returns(ret, r)
        return FunctionSummary(returns=ret), self.diags

    @staticmethod
    def _join_returns(a, b):
        if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
            return tuple(join_values(x, y) for x, y in zip(a, b))
        return join_values(a, b) if not isinstance(a, tuple) else a

    def diag(self, kind: str, node: ast.AST, message: str) -> None:
        if self.finfo is not None:
            self.diags.append(Diagnostic(kind, node, self.finfo, message))

    # -- statement execution --------------------------------------------
    def exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._cur_stmt = stmt
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            current = self.eval_target_load(stmt.target)
            if isinstance(current, ArrayValue) and isinstance(value, ArrayValue):
                shape, conflict = (
                    broadcast_shapes(current.shape, value.shape)
                    if current.shape is not None and value.shape is not None
                    else (None, None)
                )
                if conflict:
                    self.diag(
                        "shape-mismatch", stmt,
                        f"in-place update aligns axis {conflict[0]!r} with "
                        f"{conflict[1]!r}",
                    )
                self._check_store_dtype(stmt, current, value, "in-place update")
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value) if stmt.value is not None else None
            self._check_scratch_escape(stmt, value)
            self.returns.append(value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before_env = dict(self.env)
            before_attrs = dict(self.self_attrs)
            self.exec_body(stmt.body)
            then_env, then_attrs = self.env, self.self_attrs
            self.env, self.self_attrs = dict(before_env), dict(before_attrs)
            self.exec_body(stmt.orelse)
            self.env = self._join_envs(then_env, self.env)
            self.self_attrs = self._join_envs(then_attrs, self.self_attrs)
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self.eval(stmt.iter)
                self.assign(stmt.target, self._loop_var_value(stmt.iter), stmt)
            else:
                self.eval(stmt.test)
            before = dict(self.env)
            self.exec_body(stmt.body)
            self.env = self._join_envs(before, self.env)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, None, stmt)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                saved = dict(self.env)
                self.exec_body(handler.body)
                self.env = self._join_envs(saved, self.env)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # nested defs, pass, etc.: no effect on the array state

    @staticmethod
    def _join_envs(a: dict, b: dict) -> dict:
        out: dict = {}
        for key in set(a) | set(b):
            if key in a and key in b:
                va, vb = a[key], b[key]
                if isinstance(va, Instance) and va == vb:
                    out[key] = va
                else:
                    out[key] = join_values(va, vb)
            else:
                out[key] = a.get(key) if key in a else b.get(key)
        return out

    def _loop_var_value(self, iter_expr: ast.expr):
        value = self.eval(iter_expr)
        if isinstance(value, ArrayValue):
            if value.shape is not None and len(value.shape) > 1:
                return ArrayValue(value.shape[1:], value.dtype, value.aliases)
            return ScalarValue(axis=None, dtype=value.dtype)
        if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name):
            if iter_expr.func.id == "range":
                return ScalarValue(None, "int64")
        return None

    # -- assignment ------------------------------------------------------
    def assign(self, target: ast.expr, value, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            # a rebound name also clears any stale dotted entries under it
            prefix = target.id + "."
            for key in [k for k in self.env if k.startswith(prefix)]:
                del self.env[key]
        elif isinstance(target, ast.Attribute):
            name = dotted_name(target)
            base = dotted_name(target.value)
            if name is None:
                return
            if base == "self" and self._self_class is not None:
                stored = value
                if isinstance(value, ArrayValue):
                    token = f"{self._self_class}.{target.attr}"
                    stored = ArrayValue(
                        value.shape, value.dtype,
                        value.aliases | {token} if value.aliases else frozenset({token}),
                        value.index_space,
                    )
                    if self.collect_attrs and self._was_raw_alloc(stmt):
                        self.raw_alloc_attrs.add(target.attr)
                if self.collect_attrs:
                    self.self_attrs[target.attr] = stored
                self.env[name] = stored
            else:
                base_val = self.env.get(base) if base else None
                if (
                    isinstance(base_val, Instance)
                    and base != "self"
                    and isinstance(value, ArrayValue)
                    and self._scratch_tokens() & value.aliases
                ):
                    self.diag(
                        "scratch-escape", stmt,
                        f"scratch buffer stored on foreign object {base!r} "
                        "outlives the sweep",
                    )
                self.env[name] = value
        elif isinstance(target, ast.Subscript):
            self._store_subscript(target, value, stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts = (
                value if isinstance(value, tuple) and len(value) == len(target.elts)
                else (None,) * len(target.elts)
            )
            for el, part in zip(target.elts, parts):
                self.assign(el, part, stmt)

    def _was_raw_alloc(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                fname = dotted_name(node.func) or ""
                if fname.split(".")[-1] in _ALLOC_FUNCS:
                    return True
        return False

    def _store_subscript(self, target: ast.Subscript, value, stmt: ast.stmt) -> None:
        base = self.eval_target_load(target.value)
        self.eval(target.slice)
        if not isinstance(base, ArrayValue):
            return
        if isinstance(value, ArrayValue):
            self._check_store_dtype(stmt, base, value, "element store")
            self._check_gather(target, base, target.slice)
        name = dotted_name(target.value)
        if name and _is_full_slice(target.slice) and isinstance(value, ArrayValue):
            # X[:] = v : contents replaced wholesale; keep the binding
            pass

    def _check_store_dtype(self, node, target, value, what: str) -> None:
        if (
            isinstance(target, ArrayValue)
            and isinstance(value, ArrayValue)
            and target.dtype == "float32"
            and value.dtype == "float64"
        ):
            self.diag(
                "dtype-downcast", node,
                f"{what} silently downcasts float64 data into a float32 "
                "buffer; add an explicit .astype or compute in float32",
            )

    # -- scratch ---------------------------------------------------------
    def _scratch_tokens(self) -> frozenset:
        if self._self_class is None:
            return frozenset()
        contracts = self.engine.class_contracts(self._self_class)
        if contracts is None:
            return frozenset()
        return frozenset(f"{contracts.name}.{a}" for a in contracts.scratch)

    def _check_scratch_escape(self, stmt: ast.stmt, value) -> None:
        if self.finfo is None or self.finfo.name.startswith("_"):
            return
        tokens = self._scratch_tokens()
        if not tokens:
            return
        values = value if isinstance(value, tuple) else (value,)
        for v in values:
            if isinstance(v, ArrayValue) and v.aliases & tokens:
                leaked = sorted(v.aliases & tokens)[0]
                self.diag(
                    "scratch-escape", stmt,
                    f"public method returns scratch buffer {leaked!r}; the "
                    "next sweep overwrites it under the caller's feet",
                )

    # -- expression evaluation ------------------------------------------
    def eval_target_load(self, node: ast.expr):
        """Evaluate an expression that syntactically sits in Store context
        (the base of a subscript/aug assignment)."""
        return self._eval_chain(node)

    def eval(self, node: ast.expr | None):
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return ScalarValue(None, "bool")
            if isinstance(v, int):
                return ScalarValue(None, "int64")
            if isinstance(v, float):
                return ScalarValue(None, None)  # weak python float (NEP 50)
            return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self._eval_chain(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand)
            if isinstance(node.op, ast.Not):
                return ScalarValue(None, "bool")
            if isinstance(node.op, ast.Invert) and isinstance(inner, ArrayValue):
                return ArrayValue(inner.shape, inner.dtype)  # ~mask: fresh
            return inner
        if isinstance(node, ast.Compare):
            left = self.eval(node.left)
            rights = [self.eval(c) for c in node.comparators]
            for right in rights:
                if isinstance(left, ArrayValue) and isinstance(right, ArrayValue):
                    if left.shape is not None and right.shape is not None:
                        shape, conflict = broadcast_shapes(left.shape, right.shape)
                        if conflict:
                            self.diag(
                                "shape-mismatch", node,
                                f"comparison aligns axis {conflict[0]!r} with "
                                f"{conflict[1]!r}",
                            )
                        else:
                            return ArrayValue(shape, "bool")
                    return ArrayValue(None, "bool")
            if isinstance(left, ArrayValue):
                return ArrayValue(left.shape, "bool")
            return ScalarValue(None, "bool")
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.eval(v)
            return None
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join_values(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Tuple):
            return tuple(self.eval(el) for el in node.elts)
        if isinstance(node, (ast.List, ast.Set, ast.Dict, ast.ListComp,
                             ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return None
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            self.assign(node.target, value, self._cur_stmt or ast.Pass())
            return value
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.JoinedStr):
            return None
        return None

    def _eval_chain(self, node: ast.expr):
        name = dotted_name(node)
        if name is None:
            if isinstance(node, ast.Attribute):
                base = self.eval(node.value)
                return self._attr_of(base, node.attr, node)
            return self.eval(node)
        if name in self.env:
            return self.env[name]
        if "." not in name:
            value = (
                self.engine.lookup_global(self.module, name)
                if self.module is not None
                else None
            )
            if value is not None:
                return value
            # numpy dtype constructors through the module's aliases
            target = self.module.imports.get(name) if self.module else None
            if target in ("numpy", "np"):
                return Instance("__numpy__")
            return None
        base_name, _, attr = name.rpartition(".")
        base = self._eval_chain(_chain_node(node))
        return self._attr_of(base, attr, node)

    def _attr_of(self, base, attr: str, node: ast.expr):
        if isinstance(base, ArrayValue):
            if attr == "T":
                shape = tuple(reversed(base.shape)) if base.shape else None
                return ArrayValue(shape, base.dtype, base.aliases)
            if attr == "shape":
                if base.shape is None:
                    return None
                return tuple(
                    ScalarValue(a if a in NAMED_AXES else None, "int64")
                    for a in base.shape
                )
            if attr in ("size", "ndim", "nbytes", "itemsize"):
                return ScalarValue(None, "int64")
            return None
        if isinstance(base, Instance):
            if base.class_name == "__numpy__":
                if attr in ("float32", "float64", "int64", "bool_", "intp"):
                    return DtypeValue(attr.rstrip("_").replace("intp", "int64"))
                return None
            contracts = self.engine.class_contracts(base.class_name)
            if contracts is not None and attr in contracts.attrs:
                return contracts.attrs[attr]
            return None
        return None

    # -- subscripts ------------------------------------------------------
    def _eval_subscript(self, node: ast.Subscript):
        base = self.eval(node.value)
        if isinstance(base, tuple):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, int
            ):
                i = node.slice.value
                if -len(base) <= i < len(base):
                    return base[i]
            return None
        if not isinstance(base, ArrayValue):
            self.eval(node.slice)
            return None
        return self._index(base, node.slice, node)

    def _index(self, base: ArrayValue, sl: ast.expr, node: ast.AST):
        shape = base.shape
        if isinstance(sl, ast.Tuple):
            dims = list(sl.elts)
        else:
            dims = [sl]
        # advanced indexing with an array anywhere → fresh copy
        idx_vals = [self.eval(d) if not isinstance(d, ast.Slice) else None
                    for d in dims]
        has_array = any(isinstance(v, ArrayValue) for v in idx_vals)
        if has_array and len(dims) == 1 and isinstance(idx_vals[0], ArrayValue):
            idx = idx_vals[0]
            self._check_gather_pair(node, base, idx)
            if idx.dtype == "bool":
                rest = shape[1:] if shape else None
                out_shape = ("?",) + rest if rest is not None else None
                return ArrayValue(out_shape, base.dtype, frozenset(), base.index_space)
            first = idx.shape[0] if idx.shape else UNKNOWN
            rest = shape[1:] if shape else ()
            out_shape = (first,) + tuple(rest) if shape is not None else None
            return ArrayValue(out_shape, base.dtype, frozenset(), base.index_space)
        if has_array:
            return ArrayValue(None, base.dtype, frozenset(), base.index_space)
        # basic indexing: a view that aliases the base
        if shape is None:
            return ArrayValue(None, base.dtype, base.aliases, base.index_space)
        out: list[str] = []
        axis = 0
        for d, v in zip(dims, idx_vals):
            if isinstance(d, ast.Slice):
                if axis < len(shape):
                    out.append(shape[axis] if _is_full_slice(d) else UNKNOWN)
                axis += 1
            elif isinstance(d, ast.Constant) and d.value is None:
                out.append("1")
            elif isinstance(d, ast.Constant) and d.value is Ellipsis:
                take = len(shape) - (len(dims) - 1)
                out.extend(shape[axis : axis + max(take, 0)])
                axis += max(take, 0)
            else:
                axis += 1  # integer index: drops the axis
        out.extend(shape[axis:])
        return ArrayValue(tuple(out), base.dtype, base.aliases, base.index_space)

    def _check_gather(self, node: ast.AST, base: ArrayValue, sl: ast.expr) -> None:
        idx = self.eval(sl) if not isinstance(sl, ast.Slice) else None
        if isinstance(idx, ArrayValue):
            self._check_gather_pair(node, base, idx)

    def _check_gather_pair(self, node: ast.AST, base: ArrayValue, idx: ArrayValue):
        if idx.dtype == "bool":
            # boolean mask: its *length* must match the indexed axis
            if (
                idx.shape and base.shape
                and not _axes_ok(idx.shape[0], base.shape[0])
            ):
                self.diag(
                    "gather-mismatch", node,
                    f"boolean mask over axis {idx.shape[0]!r} applied to an "
                    f"array indexed by {base.shape[0]!r}",
                )
            return
        if (
            idx.index_space is not None
            and base.shape
            and not _axes_ok(idx.index_space, base.shape[0])
        ):
            self.diag(
                "gather-mismatch", node,
                f"index array holds {idx.index_space!r} ids but gathers from "
                f"an array indexed by {base.shape[0]!r}",
            )

    # -- binary ops ------------------------------------------------------
    def _eval_binop(self, node: ast.BinOp):
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, ast.MatMult):
            return self._matmul(node, left, right)
        if isinstance(left, ArrayValue) and isinstance(right, ArrayValue):
            shape = None
            if left.shape is not None and right.shape is not None:
                shape, conflict = broadcast_shapes(left.shape, right.shape)
                if conflict:
                    self.diag(
                        "shape-mismatch", node,
                        f"operands align axis {conflict[0]!r} with "
                        f"{conflict[1]!r}; these dimensions are distinct",
                    )
            dtype = self._binop_dtype(node.op, left.dtype, right.dtype)
            return ArrayValue(shape, dtype, frozenset(),
                              self._binop_space(node.op, left, right))
        arr, other = (
            (left, right) if isinstance(left, ArrayValue) else (right, left)
        )
        if isinstance(arr, ArrayValue):
            dtype = arr.dtype
            if isinstance(other, ScalarValue) and other.dtype is not None:
                dtype = promote_dtype(arr.dtype, other.dtype)
            elif isinstance(node.op, ast.Div) and arr.dtype in ("int64", "bool"):
                dtype = "float64"
            space = arr.index_space if isinstance(node.op, (ast.Add, ast.Sub)) else None
            return ArrayValue(arr.shape, dtype, frozenset(), space)
        if isinstance(left, ScalarValue) and isinstance(right, ScalarValue):
            axis = None
            dtype = promote_dtype(left.dtype, right.dtype) or (
                left.dtype or right.dtype
            )
            return ScalarValue(axis, dtype)
        return None

    @staticmethod
    def _binop_space(op, left: ArrayValue, right: ArrayValue):
        # id arithmetic: offset + rank keeps the space; same-space
        # subtraction yields counts, not ids
        if isinstance(op, ast.Add):
            if left.index_space and not right.index_space:
                return left.index_space
            if right.index_space and not left.index_space:
                return right.index_space
            if left.index_space == right.index_space:
                return None if left.index_space else None
        return None

    @staticmethod
    def _binop_dtype(op, a: str | None, b: str | None) -> str | None:
        if isinstance(op, ast.Div):
            if a in ("int64", "bool") and b in ("int64", "bool"):
                return "float64"
        return promote_dtype(a, b)

    def _matmul(self, node, left, right):
        if not (isinstance(left, ArrayValue) and isinstance(right, ArrayValue)):
            return None
        if (
            left.shape is not None and right.shape is not None
            and len(left.shape) == 2 and len(right.shape) == 2
        ):
            if not _axes_ok(left.shape[1], right.shape[0]):
                self.diag(
                    "shape-mismatch", node,
                    f"matmul contracts axis {left.shape[1]!r} against "
                    f"{right.shape[0]!r}",
                )
            return ArrayValue(
                (left.shape[0], right.shape[1]),
                promote_dtype(left.dtype, right.dtype),
            )
        return ArrayValue(None, promote_dtype(left.dtype, right.dtype))

    # -- calls -----------------------------------------------------------
    def _eval_call(self, node: ast.Call):
        func = node.func
        # numpy: resolved through the module's import aliases
        fname = dotted_name(func)
        if fname is not None and self.module is not None:
            root = fname.split(".")[0]
            if self.module.imports.get(root) == "numpy" or root == "numpy":
                return self._numpy_call(node, fname.split(".", 1)[-1])
        # builtins
        if isinstance(func, ast.Name):
            if func.id == "len":
                arg = self.eval(node.args[0]) if node.args else None
                if isinstance(arg, ArrayValue) and arg.shape:
                    return ScalarValue(arg.shape[0], "int64")
                return ScalarValue(None, "int64")
            if func.id in ("int", "round"):
                for a in node.args:
                    self.eval(a)
                return ScalarValue(None, "int64")
            if func.id in ("float", "min", "max", "sum", "abs"):
                for a in node.args:
                    self.eval(a)
                return ScalarValue(None, None)
            if func.id == "range":
                for a in node.args:
                    self.eval(a)
                return None
        # graph store accessors through a dotted chain:
        # graph.beliefs.dense(), self.graph.potentials.stacked(), ...
        if isinstance(func, ast.Attribute) and fname is not None:
            parts = fname.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                value = self._value_of_dotted(prefix)
                if isinstance(value, Instance):
                    rest = ".".join(parts[cut:])
                    if value.class_name == "BeliefGraph" and rest in GRAPH_METHODS:
                        for a in node.args:
                            self.eval(a)
                        contract = GRAPH_METHODS[rest]
                        return ArrayValue(
                            contract.shape, contract.dtype,
                            frozenset({self.engine.fresh_token(rest)}),
                            contract.index_space,
                        )
                    break
        # method on an evaluated array
        if isinstance(func, ast.Attribute):
            base = self.eval(func.value)
            if isinstance(base, ArrayValue):
                return self._array_method(node, base, func.attr)
            if isinstance(base, Instance):
                return self._instance_method(node, base, func)
        # known helpers and project functions
        if isinstance(func, ast.Name):
            return self._project_call(node, func.id)
        for a in node.args:
            self.eval(a)
        for kw in node.keywords:
            self.eval(kw.value)
        return None

    def _project_call(self, node: ast.Call, name: str):
        args = [self.eval(a) for a in node.args]
        for kw in node.keywords:
            if kw.arg != "out":
                self.eval(kw.value)
        if name in _PASSTHROUGH_FRESH:
            out_kw = next(
                (kw.value for kw in node.keywords if kw.arg == "out"), None
            )
            if out_kw is not None:
                first = args[0] if args else None
                dtype = first.dtype if isinstance(first, ArrayValue) else None
                return self._handle_out(node, out_kw, dtype)
            if args and isinstance(args[0], ArrayValue):
                return ArrayValue(
                    args[0].shape, args[0].dtype,
                    frozenset({self.engine.fresh_token(name)}),
                )
            return ArrayValue()
        if self.module is None:
            return None
        finfo = self.engine.index.resolve_function(self.module, name)
        if finfo is None:
            cls = self.engine.index.resolve_class(name)
            if cls is not None or self.module.imports.get(name, "").endswith(name):
                if cls is not None:
                    return Instance(cls.name)
            return None
        summary, _ = self.engine.run_function(finfo)
        return self._resolve_summary(summary.returns, finfo, args)

    def _instance_method(self, node: ast.Call, base: Instance, func: ast.Attribute):
        args = [self.eval(a) for a in node.args]
        for kw in node.keywords:
            self.eval(kw.value)
        full = dotted_name(func) or ""
        method_path = full.split(".", 1)[1] if "." in full else func.attr
        if base.class_name == "BeliefGraph" and method_path in GRAPH_METHODS:
            contract = GRAPH_METHODS[method_path]
            return ArrayValue(
                contract.shape, contract.dtype,
                frozenset({self.engine.fresh_token(method_path)}),
                contract.index_space,
            )
        finfo = self.engine.index.resolve_method(base.class_name, func.attr)
        if finfo is None:
            return None
        summary, _ = self.engine.run_function(finfo)
        return self._resolve_summary(summary.returns, finfo, [base] + args)

    def _resolve_summary(self, returns, finfo: FunctionInfo, args: list):
        """Substitute ``<param:...>`` placeholder aliases with the actual
        argument alias sets."""
        if returns is None:
            return None
        if isinstance(returns, tuple):
            return tuple(self._resolve_summary(r, finfo, args) for r in returns)
        if not isinstance(returns, ArrayValue) or not returns.aliases:
            return returns
        # placeholder index i counts the callee's params in order; call
        # sites pass [self] + args for methods, so positions line up
        prefix = f"<param:{finfo.qualname}:"
        resolved: set[str] = set()
        for token in returns.aliases:
            if token.startswith(prefix):
                i = int(token[len(prefix):-1])
                if 0 <= i < len(args) and isinstance(args[i], ArrayValue):
                    resolved |= args[i].aliases
            else:
                resolved.add(token)
        return ArrayValue(
            returns.shape, returns.dtype, frozenset(resolved), returns.index_space
        )

    # -- the numpy model -------------------------------------------------
    def _numpy_call(self, node: ast.Call, name: str):
        name = name.split(".")[-1]
        args = [self.eval(a) for a in node.args]
        kwargs = {kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg}
        out_kw = next((kw.value for kw in node.keywords if kw.arg == "out"), None)
        dtype_kw = kwargs.get("dtype")
        dtype = dtype_kw.name if isinstance(dtype_kw, DtypeValue) else None

        def fresh(shape, dt, space=None):
            return ArrayValue(
                shape, dt, frozenset({self.engine.fresh_token(name)}), space
            )

        if name in _ALLOC_FUNCS:
            shape = self._shape_from_arg(node.args[0] if node.args else None)
            if dtype is None:
                if name == "full" and len(args) > 1:
                    fill = args[1]
                    dtype = (
                        fill.dtype if isinstance(fill, ScalarValue) and fill.dtype
                        else "float64"
                    )
                else:
                    dtype = "float64"
            return fresh(shape, dtype)
        if name in ("zeros_like", "empty_like", "ones_like", "full_like"):
            like = args[0] if args else None
            if isinstance(like, ArrayValue):
                return fresh(like.shape, dtype or like.dtype)
            return fresh(None, dtype)
        if name == "arange":
            space = None
            shape = ("?",)
            if len(node.args) == 1 and isinstance(args[0], ScalarValue):
                if args[0].axis is not None:
                    shape = (args[0].axis,)
                    space = args[0].axis
            return fresh(shape, dtype or "int64", space)
        if name in ("asarray", "ascontiguousarray", "asfortranarray"):
            arg = args[0] if args else None
            if isinstance(arg, ArrayValue):
                # may return the argument itself: aliases are preserved
                return ArrayValue(
                    arg.shape, dtype or arg.dtype, arg.aliases, arg.index_space
                )
            return ArrayValue(None, dtype)
        if name == "array":
            arg = args[0] if args else None
            if isinstance(arg, ArrayValue):
                return fresh(arg.shape, dtype or arg.dtype, arg.index_space)
            return fresh(None, dtype)
        if name == "take":
            base, idx = (args + [None, None])[:2]
            if isinstance(base, ArrayValue) and isinstance(idx, ArrayValue):
                self._check_gather_pair(node, base, idx)
                first = idx.shape[0] if idx.shape else UNKNOWN
                rest = base.shape[1:] if base.shape else ()
                shape = (first,) + tuple(rest) if base.shape is not None else None
                if out_kw is not None:
                    return self._handle_out(node, out_kw, base.dtype)
                return fresh(shape, base.dtype, base.index_space)
            return None
        if name == "bincount":
            x = args[0] if args else None
            weights = kwargs.get("weights")
            minlength = kwargs.get("minlength")
            out_axis = UNKNOWN
            if isinstance(minlength, ScalarValue) and minlength.axis:
                out_axis = minlength.axis
                if (
                    isinstance(x, ArrayValue)
                    and x.index_space is not None
                    and not _axes_ok(x.index_space, minlength.axis)
                ):
                    self.diag(
                        "gather-mismatch", node,
                        f"bincount over {x.index_space!r} ids scattered into "
                        f"a {minlength.axis!r}-length accumulator",
                    )
            elif isinstance(x, ArrayValue) and x.index_space:
                out_axis = x.index_space
            if (
                isinstance(weights, ArrayValue)
                and isinstance(x, ArrayValue)
                and weights.shape and x.shape
                and not _axes_ok(weights.shape[0], x.shape[0])
            ):
                self.diag(
                    "shape-mismatch", node,
                    f"bincount weights span axis {weights.shape[0]!r} but the "
                    f"ids span {x.shape[0]!r}",
                )
            return fresh(
                (out_axis,), "float64" if weights is not None else "int64"
            )
        if name == "flatnonzero":
            arg = args[0] if args else None
            space = None
            if isinstance(arg, ArrayValue) and arg.shape:
                space = arg.shape[0]
            return fresh(("?",), "int64", space)
        if name == "repeat":
            arg = args[0] if args else None
            space = arg.index_space if isinstance(arg, ArrayValue) else None
            return fresh(("?",), arg.dtype if isinstance(arg, ArrayValue) else None,
                         space)
        if name == "cumsum":
            arg = args[0] if args else None
            if out_kw is not None:
                return self._handle_out(
                    node, out_kw,
                    arg.dtype if isinstance(arg, ArrayValue) else None,
                )
            if isinstance(arg, ArrayValue):
                return fresh(arg.shape if kwargs.get("axis") else ("?",), arg.dtype)
            return None
        if name == "diff":
            return fresh(("?",), args[0].dtype if isinstance(args[0], ArrayValue) else None) if args else None
        if name in ("argsort", "argmax", "argmin"):
            arg = args[0] if args else None
            if isinstance(arg, ArrayValue) and name == "argsort":
                return fresh(arg.shape, "int64",
                             arg.shape[0] if arg.shape else None)
            return fresh(None, "int64")
        if name in ("sort", "unique", "concatenate", "hstack", "vstack", "stack"):
            return fresh(None, None)
        if name == "where":
            vals = [a for a in args if isinstance(a, ArrayValue)]
            shape = vals[0].shape if vals else None
            dt = None
            if len(vals) >= 3:
                dt = promote_dtype(vals[1].dtype, vals[2].dtype)
            return fresh(shape, dt)
        if name in ("einsum",):
            return self._einsum(node, args)
        if name in ("dot", "matmul"):
            if len(args) >= 2:
                return self._matmul(node, args[0], args[1])
            return None
        if name in _ELEMWISE_BINARY:
            a, b = (args + [None, None])[:2]
            shape, dt = None, None
            if isinstance(a, ArrayValue) and isinstance(b, ArrayValue):
                if a.shape is not None and b.shape is not None:
                    shape, conflict = broadcast_shapes(a.shape, b.shape)
                    if conflict:
                        self.diag(
                            "shape-mismatch", node,
                            f"np.{name} aligns axis {conflict[0]!r} with "
                            f"{conflict[1]!r}",
                        )
                dt = promote_dtype(a.dtype, b.dtype)
                if name in ("divide", "true_divide") and dt in ("int64", "bool"):
                    dt = "float64"
            elif isinstance(a, ArrayValue) or isinstance(b, ArrayValue):
                arr = a if isinstance(a, ArrayValue) else b
                other = b if arr is a else a
                shape = arr.shape
                dt = arr.dtype
                if isinstance(other, ScalarValue) and other.dtype:
                    dt = promote_dtype(arr.dtype, other.dtype)
            if out_kw is not None:
                return self._handle_out(node, out_kw, dt)
            return fresh(shape, dt)
        if name in _ELEMWISE_UNARY:
            arg = args[0] if args else None
            dt = dtype
            if dt is None and isinstance(arg, ArrayValue):
                dt = arg.dtype
                if name in ("exp", "log", "log2", "sqrt") and dt in ("int64", "bool"):
                    dt = "float64"
            if out_kw is not None:
                return self._handle_out(node, out_kw, dt)
            if isinstance(arg, ArrayValue):
                return fresh(arg.shape, dt)
            return None
        if name in ("sum", "max", "min", "mean", "prod", "nanmax", "nansum"):
            arg = args[0] if args else None
            if isinstance(arg, ArrayValue):
                return self._reduce(node, arg, kwargs)
            return ScalarValue(None, None)
        if name in ("isfinite", "isnan", "isinf", "logical_and", "logical_or",
                    "logical_not", "greater", "less", "equal", "not_equal"):
            arg = args[0] if args else None
            if isinstance(arg, ArrayValue):
                return fresh(arg.shape, "bool")
            return None
        if name == "clip":
            arg = args[0] if args else None
            if out_kw is not None:
                return self._handle_out(
                    node, out_kw,
                    arg.dtype if isinstance(arg, ArrayValue) else None,
                )
            if isinstance(arg, ArrayValue):
                return fresh(arg.shape, arg.dtype)
            return None
        if name in ("float32", "float64", "int64", "bool_"):
            return ScalarValue(None, name.rstrip("_"))
        if name in ("shares_memory", "may_share_memory", "array_equal", "allclose"):
            return ScalarValue(None, "bool")
        if name == "finfo" or name == "iinfo":
            return None
        return None

    def _reduce(self, node, arr: ArrayValue, kwargs: dict):
        kw_nodes = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        axis = kw_nodes.get("axis")
        if axis is None and len(node.args) > 1:
            axis = node.args[1]
        return self._method_reduce(arr, axis, kw_nodes.get("keepdims"))

    # -- array methods ---------------------------------------------------
    def _array_method(self, node: ast.Call, base: ArrayValue, method: str):
        args = [self.eval(a) for a in node.args]
        kw_nodes = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        for v in kw_nodes.values():
            self.eval(v)
        if method in ("sum", "max", "min", "mean", "prod", "std", "var"):
            axis = kw_nodes.get("axis")
            if axis is None and node.args:
                axis = node.args[0]
            keepdims = kw_nodes.get("keepdims")
            return self._method_reduce(base, axis, keepdims)
        if method == "copy":
            return ArrayValue(
                base.shape, base.dtype,
                frozenset({self.engine.fresh_token("copy")}), base.index_space,
            )
        if method == "astype":
            dt = None
            target = node.args[0] if node.args else kw_nodes.get("dtype")
            if target is not None:
                val = self.eval(target)
                if isinstance(val, DtypeValue):
                    dt = val.name
                elif isinstance(target, ast.Constant) and isinstance(target.value, str):
                    dt = target.value
            return ArrayValue(
                base.shape, dt,
                frozenset({self.engine.fresh_token("astype")}), base.index_space,
            )
        if method in ("reshape", "ravel", "view"):
            return ArrayValue(
                ("?",) if method == "ravel" else None,
                base.dtype, base.aliases, base.index_space,
            )
        if method == "flatten":
            return ArrayValue(("?",), base.dtype,
                              frozenset({self.engine.fresh_token("flatten")}),
                              base.index_space)
        if method in ("transpose",):
            shape = tuple(reversed(base.shape)) if base.shape else None
            return ArrayValue(shape, base.dtype, base.aliases)
        if method in ("any", "all"):
            return ScalarValue(None, "bool")
        if method in ("item",):
            return ScalarValue(None, base.dtype)
        if method in ("nonzero",):
            space = base.shape[0] if base.shape else None
            return (ArrayValue(("?",), "int64",
                               frozenset({self.engine.fresh_token("nonzero")}),
                               space),)
        if method in ("argsort",):
            return ArrayValue(base.shape, "int64",
                              frozenset({self.engine.fresh_token("argsort")}),
                              base.shape[0] if base.shape else None)
        if method in ("fill", "sort", "tolist", "tobytes"):
            return None
        return None

    def _method_reduce(self, base: ArrayValue, axis_node, keepdims_node):
        keep = (
            isinstance(keepdims_node, ast.Constant) and keepdims_node.value is True
        )
        if axis_node is None:
            return ScalarValue(None, base.dtype)
        if base.shape is None:
            return ArrayValue(None, base.dtype,
                              frozenset({self.engine.fresh_token("reduce")}))
        axis = (
            axis_node.value
            if isinstance(axis_node, ast.Constant) and isinstance(axis_node.value, int)
            else None
        )
        if axis is None:
            return ArrayValue(None, base.dtype,
                              frozenset({self.engine.fresh_token("reduce")}))
        shape = list(base.shape)
        if -len(shape) <= axis < len(shape):
            if keep:
                shape[axis] = "1"
            else:
                del shape[axis]
        return ArrayValue(tuple(shape), base.dtype,
                          frozenset({self.engine.fresh_token("reduce")}))

    # -- out= handling and the WAR check --------------------------------
    def _handle_out(self, call: ast.Call, out_expr: ast.expr, result_dtype):
        """Model a write through ``out=``: dtype-downcast check, then the
        write-after-read hazard scan against every live alias."""
        if isinstance(out_expr, ast.Subscript):
            target = self.eval_target_load(out_expr.value)
            self.eval(out_expr.slice)
            target_bases = {dotted_name(out_expr.value)}
            sliced = True
        else:
            target = self._eval_chain(out_expr)
            target_bases = {dotted_name(out_expr)}
            sliced = False
        target_bases.discard(None)
        if not isinstance(target, ArrayValue):
            return None
        if target.dtype == "float32" and result_dtype == "float64":
            self.diag(
                "dtype-downcast", call,
                "out= silently downcasts a float64 result into a float32 "
                "buffer; cast the operands or drop the out=",
            )
        self._check_war(call, target, target_bases)
        shape = target.shape if not sliced else None
        return ArrayValue(shape, target.dtype, target.aliases, target.index_space)

    def _check_war(self, call: ast.AST, target: ArrayValue,
                   target_bases: set) -> None:
        if self._occ is None or self._cur_stmt is None or not target.aliases:
            return
        tracked = set(self.env)
        tracked.update(n for _, n, _ in self._occ.events)
        for name in sorted(tracked):
            if name in target_bases or any(
                name.startswith(b + ".") or b.startswith(name + ".")
                for b in target_bases
            ):
                continue
            value = self._value_of_dotted(name)
            if not isinstance(value, ArrayValue) or not (
                value.aliases & target.aliases
            ):
                continue
            if self._occ.live_after(self._cur_stmt, name):
                self.diag(
                    "war-hazard", call,
                    f"out= overwrites a buffer still aliased by {name!r}, "
                    "which is read again afterwards; the reader sees the "
                    "clobbered values",
                )

    def _value_of_dotted(self, name: str):
        if name in self.env:
            return self.env[name]
        if "." not in name:
            return None
        parts = name.split(".")
        value = self.env.get(parts[0])
        for attr in parts[1:]:
            if isinstance(value, Instance):
                value = self._attr_of(value, attr, ast.Name(id="_"))
            else:
                return None
        return value

    # -- misc helpers ----------------------------------------------------
    def _shape_from_arg(self, arg: ast.expr | None):
        if arg is None:
            return None
        value = self.eval(arg)
        if isinstance(value, ScalarValue):
            return (value.axis or UNKNOWN,)
        if isinstance(value, tuple):
            out = []
            for v in value:
                if isinstance(v, ScalarValue) and v.axis:
                    out.append(v.axis)
                elif (
                    isinstance(arg, ast.Tuple)
                    and len(arg.elts) == len(value)
                    and isinstance(arg.elts[len(out)], ast.Constant)
                    and isinstance(arg.elts[len(out)].value, int)
                ):
                    out.append(str(arg.elts[len(out)].value))
                else:
                    out.append(UNKNOWN)
            return tuple(out)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
            return (str(arg.value),)
        return None

    def _einsum(self, node: ast.Call, args: list):
        spec = None
        if node.args and isinstance(node.args[0], ast.Constant):
            spec = node.args[0].value
        operands = [a for a in args[1:] if isinstance(a, ArrayValue)]
        dt = None
        for op in operands:
            dt = op.dtype if dt is None else promote_dtype(dt, op.dtype)
        if not isinstance(spec, str) or "->" not in spec:
            return ArrayValue(None, dt,
                              frozenset({self.engine.fresh_token("einsum")}))
        inputs, output = spec.replace(" ", "").split("->")
        binding: dict[str, str] = {}
        for letters, op in zip(inputs.split(","), operands):
            if op.shape is None or len(op.shape) != len(letters):
                continue
            for letter, axis in zip(letters, op.shape):
                prev = binding.get(letter)
                if prev is None or prev == UNKNOWN:
                    binding[letter] = axis
                elif axis != UNKNOWN and not _axes_ok(prev, axis):
                    self.diag(
                        "shape-mismatch", node,
                        f"einsum index {letter!r} binds axis {prev!r} and "
                        f"{axis!r} simultaneously",
                    )
        shape = tuple(binding.get(letter, UNKNOWN) for letter in output)
        return ArrayValue(shape, dt,
                          frozenset({self.engine.fresh_token("einsum")}))


def _chain_node(node: ast.expr) -> ast.expr:
    return node.value if isinstance(node, ast.Attribute) else node


def _axes_ok(a: str, b: str) -> bool:
    return axes_broadcastable(a, b)

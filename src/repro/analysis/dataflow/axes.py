"""The axis lattice: named project dimensions and abstract array values.

The whole-program analyzer does not track concrete sizes — it tracks
*which project dimension* each array axis ranges over.  The dimensions
are the handful of named sizes the entire runtime is indexed by
(``n_nodes``, ``n_edges``, ``n_states``, shard/halo rows); every
structure array in :class:`~repro.core.state.LoopyState` and
:class:`~repro.core.graph.BeliefGraph` is a product of them.  Two
arrays whose axes name *different* dimensions can never be legally
broadcast, gathered into each other's index space, or accumulated
together — that is the invariant rules RPR401/402 check.

An axis is a plain string token:

* a **named dimension** from :data:`NAMED_AXES` — pairwise distinct by
  construction (a graph with ``n_nodes == n_edges`` is possible, but
  code relying on it is a bug);
* a **literal** like ``"1"`` or ``"8"`` (broadcastable when ``"1"``);
* :data:`UNKNOWN` (``"?"``) — the lattice top, compatible with
  everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "UNKNOWN",
    "NAMED_AXES",
    "ArrayValue",
    "ScalarValue",
    "axes_broadcastable",
    "broadcast_shapes",
    "join_axis",
    "join_values",
    "promote_dtype",
]

#: lattice top: an axis (or dtype) the analysis could not pin down
UNKNOWN = "?"

#: the project's named dimensions; pairwise distinct for analysis purposes
NAMED_AXES = frozenset(
    {"n_nodes", "n_edges", "n_states", "n_shards", "owned_rows", "halo_rows"}
)

#: dtype promotion ladder (NEP-50 style: python scalars are weak and do
#: not promote float32 arrays, so they never appear here)
_DTYPE_RANK = {"bool": 0, "int64": 1, "float32": 2, "float64": 3}


def _is_literal(axis: str) -> bool:
    return axis not in NAMED_AXES and axis != UNKNOWN and axis.isdigit()


def axes_broadcastable(a: str, b: str) -> bool:
    """Can axes ``a`` and ``b`` legally align under numpy broadcasting?

    Conservative: only a pair of *distinct named* dimensions (or a named
    dimension against a literal > 1) is a definite mismatch.
    """
    if a == b or UNKNOWN in (a, b):
        return True
    if a == "1" or b == "1":
        return True
    if a in NAMED_AXES and b in NAMED_AXES:
        return False  # distinct named dims never coincide by contract
    if a in NAMED_AXES and _is_literal(b):
        return False
    if b in NAMED_AXES and _is_literal(a):
        return False
    return True  # two unequal literals etc.: leave to the runtime


def join_axis(a: str, b: str) -> str:
    return a if a == b else UNKNOWN


def broadcast_shapes(
    sa: tuple[str, ...], sb: tuple[str, ...]
) -> tuple[tuple[str, ...] | None, tuple[str, str] | None]:
    """Broadcast two abstract shapes.

    Returns ``(result_shape, conflict)``: on success ``conflict`` is
    ``None``; on a definite axis mismatch ``result_shape`` is ``None``
    and ``conflict`` names the offending axis pair.
    """
    rank = max(len(sa), len(sb))
    pa = (UNKNOWN,) * (rank - len(sa)) + sa
    pb = (UNKNOWN,) * (rank - len(sb)) + sb
    out: list[str] = []
    for x, y in zip(pa, pb):
        if not axes_broadcastable(x, y):
            return None, (x, y)
        if x == y:
            out.append(x)
        elif x == "1" or x == UNKNOWN:
            out.append(y)
        elif y == "1" or y == UNKNOWN:
            out.append(x)
        else:
            out.append(UNKNOWN)
    return tuple(out), None


def promote_dtype(a: str | None, b: str | None) -> str | None:
    """Result dtype of combining two array dtypes (``None`` = unknown)."""
    if a is None or b is None:
        return None
    if a == UNKNOWN or b == UNKNOWN:
        return None
    ra, rb = _DTYPE_RANK.get(a), _DTYPE_RANK.get(b)
    if ra is None or rb is None:
        return None
    return a if ra >= rb else b


@dataclass(frozen=True)
class ArrayValue:
    """What the analysis knows about one array-valued expression.

    ``shape`` is a tuple of axis tokens (``None`` = unknown rank);
    ``dtype`` one of bool/int64/float32/float64 (``None`` = unknown);
    ``aliases`` the set of *buffer tokens* this value may share memory
    with (``"LoopyState.beliefs"``, ``"CompiledExecutor._raw"``,
    ``"local:f:x@12"``); ``index_space`` names the dimension an integer
    array's *values* index into (``src``/``dst`` hold node ids →
    ``"n_nodes"``, ``rev``/``in_edge_ids`` hold edge ids →
    ``"n_edges"``).
    """

    shape: tuple[str, ...] | None = None
    dtype: str | None = None
    aliases: frozenset[str] = field(default_factory=frozenset)
    index_space: str | None = None

    @property
    def rank(self) -> int | None:
        return None if self.shape is None else len(self.shape)

    def with_shape(self, shape: tuple[str, ...] | None) -> "ArrayValue":
        return replace(self, shape=shape)

    def fresh(self) -> "ArrayValue":
        """The same value but guaranteed freshly allocated (no aliases)."""
        return replace(self, aliases=frozenset())


@dataclass(frozen=True)
class ScalarValue:
    """An integer/float scalar; ``axis`` names the dimension it equals
    (``state.n`` → ``"n_nodes"``), so shape tuples built from scalars
    recover named axes."""

    axis: str | None = None
    dtype: str | None = None


def join_values(a, b):
    """Lattice join of two abstract values (for branch merges)."""
    if a is None or b is None:
        return None
    if isinstance(a, ScalarValue) and isinstance(b, ScalarValue):
        return ScalarValue(
            axis=a.axis if a.axis == b.axis else None,
            dtype=a.dtype if a.dtype == b.dtype else None,
        )
    if isinstance(a, ArrayValue) and isinstance(b, ArrayValue):
        if a.shape is not None and b.shape is not None and len(a.shape) == len(b.shape):
            shape = tuple(join_axis(x, y) for x, y in zip(a.shape, b.shape))
        elif a.shape == b.shape:
            shape = a.shape
        else:
            shape = None
        return ArrayValue(
            shape=shape,
            dtype=a.dtype if a.dtype == b.dtype else None,
            aliases=a.aliases | b.aliases,
            index_space=a.index_space if a.index_space == b.index_space else None,
        )
    return None

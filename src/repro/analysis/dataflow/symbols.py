"""Project-wide symbol table and call graph.

The per-module rules of PR 4 see one file at a time.  The dataflow pass
needs to answer cross-module questions — "what does
``state.propagate_messages`` return?", "which class does this ``self``
belong to?" — so :class:`ProjectIndex` parses every analyzed module
once, indexes classes/functions/methods by both bare and qualified
name, records import aliases, and resolves call expressions to their
definitions.

Core runtime modules (``repro.core.state``, ``repro.core.graph``,
``repro.core.numeric``) are force-loaded even when the analyzed path
set does not include them (e.g. a fixture-only run), because the
contract derivation in :mod:`~repro.analysis.dataflow.engine` needs
``LoopyState.__init__`` to exist.  Loading degrades silently when the
package is not importable (detached checkout).
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectIndex"]

#: modules whose classes anchor the contract derivation
CORE_MODULES = ("repro.core.graph", "repro.core.numeric", "repro.core.state")


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # "module.path:Class.method" or "module.path:func"
    node: ast.FunctionDef
    module: "ModuleInfo"
    cls: "ClassInfo | None" = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class definition with its methods and base-class names."""

    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    name: str  # dotted module name when under src/, else the stem
    tree: ast.Module
    source: str
    #: local name → dotted target ("np" → "numpy", "LoopyState" →
    #: "repro.core.state.LoopyState")
    imports: dict[str, str] = field(default_factory=dict)


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "repro"):
        if anchor in parts:
            idx = parts.index(anchor)
            parts = parts[idx + 1 :] if anchor == "src" else parts[idx:]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


class ProjectIndex:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}  # bare name → info
        self.functions: dict[str, FunctionInfo] = {}  # qualified name
        self._bare_functions: dict[str, FunctionInfo] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, sources: list[tuple[Path, str, ast.Module]]) -> "ProjectIndex":
        """Index pre-parsed modules, then force-load missing core modules."""
        index = cls()
        for path, source, tree in sources:
            index.add_module(path, source, tree)
        index._ensure_core_modules()
        return index

    def add_module(self, path: Path, source: str, tree: ast.Module) -> ModuleInfo:
        name = _module_name(Path(path))
        info = ModuleInfo(
            path=Path(path), name=name, tree=tree, source=source,
            imports=_collect_imports(tree),
        )
        self.modules[name] = info
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    self._add_function(info, node, None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(info, node)
        return info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        bases = tuple(
            b.id if isinstance(b, ast.Name) else ast.unparse(b) for b in node.bases
        )
        cinfo = ClassInfo(name=node.name, node=node, module=module, bases=bases)
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                finfo = FunctionInfo(
                    qualname=f"{module.name}:{node.name}.{item.name}",
                    node=item, module=module, cls=cinfo,
                )
                cinfo.methods[item.name] = finfo
                self.functions[finfo.qualname] = finfo
        # first definition wins (bare-name collisions are rare and the
        # contract classes are unique in the tree)
        self.classes.setdefault(node.name, cinfo)

    def _add_function(
        self, module: ModuleInfo, node: ast.FunctionDef, cls: ClassInfo | None
    ) -> None:
        finfo = FunctionInfo(
            qualname=f"{module.name}:{node.name}", node=node, module=module, cls=cls
        )
        self.functions[finfo.qualname] = finfo
        self._bare_functions.setdefault(node.name, finfo)

    def _ensure_core_modules(self) -> None:
        for dotted in CORE_MODULES:
            if dotted in self.modules:
                continue
            try:
                spec = importlib.util.find_spec(dotted)
            except (ImportError, ValueError):
                spec = None
            if spec is None or not spec.origin:
                continue
            path = Path(spec.origin)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError):
                continue
            self.add_module(path, source, tree)

    # -- resolution -----------------------------------------------------
    def resolve_class(self, name: str) -> ClassInfo | None:
        return self.classes.get(name)

    def resolve_function(
        self, module: ModuleInfo, name: str
    ) -> FunctionInfo | None:
        """Resolve a bare call ``name(...)`` from inside ``module``."""
        local = self.functions.get(f"{module.name}:{name}")
        if local is not None:
            return local
        target = module.imports.get(name)
        if target is not None:
            mod, _, func = target.rpartition(".")
            resolved = self.functions.get(f"{mod}:{func}")
            if resolved is not None:
                return resolved
        return self._bare_functions.get(name)

    def resolve_method(self, class_name: str, method: str) -> FunctionInfo | None:
        """Resolve ``Class.method``, walking base classes by bare name."""
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            cname = queue.pop(0)
            if cname in seen:
                continue
            seen.add(cname)
            cinfo = self.classes.get(cname)
            if cinfo is None:
                continue
            if method in cinfo.methods:
                return cinfo.methods[method]
            queue.extend(cinfo.bases)
        return None

    # -- call graph -----------------------------------------------------
    def call_graph(self) -> dict[str, set[str]]:
        """Qualified-name → set of qualified callee names (best-effort:
        bare calls and ``self.method`` calls; external calls dropped)."""
        edges: dict[str, set[str]] = {}
        for qualname, finfo in self.functions.items():
            callees: set[str] = set()
            for node in ast.walk(finfo.node):
                if not isinstance(node, ast.Call):
                    continue
                target = None
                if isinstance(node.func, ast.Name):
                    target = self.resolve_function(finfo.module, node.func.id)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and finfo.cls is not None
                ):
                    target = self.resolve_method(finfo.cls.name, node.func.attr)
                if target is not None and target.qualname != qualname:
                    callees.add(target.qualname)
            edges[qualname] = callees
        return edges

"""Hand-seeded axis contracts for the runtime's root structures.

Everything the whole-program pass knows ultimately flows from
:class:`~repro.core.graph.BeliefGraph`: its structure arrays are the
axioms (``src`` is ``(n_edges,)`` int64 holding *node* ids, …), and the
contracts of every other class — :class:`~repro.core.state.LoopyState`,
the compiled executor's scratch buffers, fixture classes in tests — are
**derived** by abstractly interpreting their ``__init__`` against these
seeds (see :mod:`repro.analysis.dataflow.engine`).

Only the graph is seeded by hand because its arrays are built from raw
user input (``np.asarray`` of whatever the caller passed), which is
beyond shape inference; everything downstream is plain array algebra
the interpreter can follow.
"""

from __future__ import annotations

from repro.analysis.dataflow.axes import ArrayValue, ScalarValue

__all__ = [
    "GRAPH_ATTRS",
    "GRAPH_METHODS",
    "GRAPH_SCALARS",
    "PARAM_CLASS_CONVENTIONS",
    "class_for_param",
]


def _arr(owner: str, attr: str, shape, dtype, index_space=None) -> ArrayValue:
    return ArrayValue(
        shape=tuple(shape),
        dtype=dtype,
        aliases=frozenset({f"{owner}.{attr}"}),
        index_space=index_space,
    )


#: BeliefGraph structure arrays (the axioms).  ``index_space`` records
#: what the *values* of integer arrays index into: ``src``/``dst`` hold
#: node ids, ``reverse_edge``/``*_edge_ids`` hold edge ids.
GRAPH_ATTRS: dict[str, ArrayValue] = {
    "src": _arr("BeliefGraph", "src", ("n_edges",), "int64", "n_nodes"),
    "dst": _arr("BeliefGraph", "dst", ("n_edges",), "int64", "n_nodes"),
    "reverse_edge": _arr(
        "BeliefGraph", "reverse_edge", ("n_edges",), "int64", "n_edges"
    ),
    "in_offsets": _arr("BeliefGraph", "in_offsets", ("?",), "int64", "n_edges"),
    "in_edge_ids": _arr(
        "BeliefGraph", "in_edge_ids", ("n_edges",), "int64", "n_edges"
    ),
    "out_offsets": _arr("BeliefGraph", "out_offsets", ("?",), "int64", "n_edges"),
    "out_edge_ids": _arr(
        "BeliefGraph", "out_edge_ids", ("n_edges",), "int64", "n_edges"
    ),
    "observed": _arr("BeliefGraph", "observed", ("n_nodes",), "bool"),
    "observed_state": _arr(
        "BeliefGraph", "observed_state", ("n_nodes",), "int64", "n_states"
    ),
    "dims": _arr("BeliefGraph", "dims", ("n_nodes",), "int64"),
}

#: graph methods / store accessors the interpreter treats as opaque
#: calls with known result contracts (all return fresh buffers).
GRAPH_METHODS: dict[str, ArrayValue] = {
    "beliefs.dense": ArrayValue(("n_nodes", "n_states"), "float32"),
    "priors.dense": ArrayValue(("n_nodes", "n_states"), "float32"),
    "potentials.stacked": ArrayValue(
        ("n_edges", "n_states", "n_states"), "float32"
    ),
    "potentials.matrix": ArrayValue(("n_states", "n_states"), "float32"),
    "in_degree": ArrayValue(("n_nodes",), "int64"),
    "out_degree": ArrayValue(("n_nodes",), "int64"),
    "in_edges": ArrayValue(("?",), "int64", index_space="n_edges"),
    "out_edges": ArrayValue(("?",), "int64", index_space="n_edges"),
}

#: scalar attributes naming a project dimension
GRAPH_SCALARS: dict[str, ScalarValue] = {
    "n_nodes": ScalarValue("n_nodes", "int64"),
    "n_edges": ScalarValue("n_edges", "int64"),
    "n_states": ScalarValue("n_states", "int64"),
}

#: parameter-name conventions: a bare parameter with one of these names
#: is assumed to carry the corresponding class's contracts.  This is how
#: interprocedural propagation enters a function that takes ``state`` or
#: ``graph`` without annotations.
PARAM_CLASS_CONVENTIONS: dict[str, str] = {
    "graph": "BeliefGraph",
    "union": "BeliefGraph",
    "state": "LoopyState",
}


def class_for_param(name: str, annotation: str | None = None) -> str | None:
    """Resolve a parameter to a contract class via annotation or name."""
    if annotation in ("BeliefGraph", "LoopyState"):
        return annotation
    return PARAM_CLASS_CONVENTIONS.get(name)

"""Whole-program array dataflow analysis for the lint framework.

Builds a project-wide symbol table and call graph
(:mod:`~repro.analysis.dataflow.symbols`), seeds axis contracts from the
``BeliefGraph`` structure arrays (:mod:`~repro.analysis.dataflow.contracts`)
and propagates shape / dtype / alias facts interprocedurally with an
abstract interpreter (:mod:`~repro.analysis.dataflow.engine`).  The RPR4xx
rules in :mod:`repro.analysis.rules.dataflow` consume the resulting
diagnostics.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.dataflow.axes import (
    NAMED_AXES,
    UNKNOWN,
    ArrayValue,
    ScalarValue,
    axes_broadcastable,
    join_values,
)
from repro.analysis.dataflow.engine import Diagnostic, Engine
from repro.analysis.dataflow.symbols import ProjectIndex

__all__ = [
    "NAMED_AXES",
    "UNKNOWN",
    "ArrayValue",
    "ScalarValue",
    "axes_broadcastable",
    "join_values",
    "Diagnostic",
    "Engine",
    "ProjectIndex",
    "DataflowProject",
]


class DataflowProject:
    """One analyzed project: index + engine + memoized per-file diagnostics.

    Construct it from ``(path, source, tree)`` triples (the lint
    framework's parsed modules) and query diagnostics per file; the
    engine interprets each function exactly once across all queries.
    """

    def __init__(self, sources: list[tuple[Path, str, object]]):
        self.index = ProjectIndex.build(
            [(Path(p), src, tree) for p, src, tree in sources]
        )
        self.engine = Engine(self.index)
        self._by_path: dict[Path, list[Diagnostic]] | None = None

    def diagnostics_for(self, path: Path) -> list[Diagnostic]:
        if self._by_path is None:
            self._by_path = {}
            for module in list(self.index.modules.values()):
                diags = self.engine.analyze_module(module)
                self._by_path.setdefault(module.path.resolve(), []).extend(diags)
        return self._by_path.get(Path(path).resolve(), [])

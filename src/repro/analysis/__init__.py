"""repro.analysis: project-aware static checker + shard race detector.

Two complementary halves:

* :mod:`repro.analysis.framework` + :mod:`repro.analysis.rules` — an
  AST lint pass with rules that encode *this repo's* invariants
  (epsilon-clamped logs and divisions, serve-layer lock discipline,
  registry-resolvable backend qualifiers, live ``LoopyConfig`` kwargs).
  Run it as ``python -m repro.analysis src`` or ``credo lint``.
* :mod:`repro.analysis.races` — a dynamic lockset/epoch race detector
  that instruments :class:`~repro.core.sharded.ShardedLoopyBP` state
  arrays and reports unsynchronized same-epoch accesses from different
  threads.
"""

from repro.analysis.framework import (
    AnalysisResult,
    Analyzer,
    Finding,
    Module,
    Rule,
    all_rules,
    apply_baseline,
    load_baseline,
    register,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.races import Access, RaceDetector, RaceError, TrackedArray

__all__ = [
    "Analyzer",
    "AnalysisResult",
    "Finding",
    "Module",
    "Rule",
    "register",
    "all_rules",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
    "RaceDetector",
    "RaceError",
    "TrackedArray",
    "Access",
]

"""AST lint framework for the project-aware static checker.

The generic machinery lives here; the *project knowledge* lives in
:mod:`repro.analysis.rules`.  A rule is a class with an ``RPR###`` id
that walks one parsed module and yields :class:`Finding`\\ s.  The
analyzer adds the workflow glue a blocking CI gate needs:

suppression
    A ``# noqa: RPR###`` comment on the offending line silences that
    rule there (bare ``# noqa`` silences every rule on the line).

baseline
    Known debt is recorded in a JSON baseline file keyed by stable
    fingerprints ``(rule, path, source line)``, so pre-existing
    findings don't block CI while *new* ones do.  Each baselined entry
    carries a human ``reason``.

reporters
    Human one-line-per-finding output for terminals, JSON for CI
    artifacts and tooling.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "Module",
    "Analyzer",
    "AnalysisResult",
    "register",
    "all_rules",
    "load_baseline",
    "write_baseline",
    "update_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
]

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?",
    re.IGNORECASE,
)

#: directories never descended into when collecting files ("fixtures"
#: keeps the planted lint fixtures out of real scans of tests/)
SKIP_DIRS = {
    ".git", "__pycache__", ".venv", "venv", "build", "dist", ".eggs", "fixtures",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # "RPR101"
    name: str  # "unguarded-log"
    severity: str  # "error" | "warning"
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    snippet: str = ""  # stripped source line (fingerprint input)

    @property
    def fingerprint(self) -> str:
        """Stable id for baselining: survives moves within a file."""
        raw = f"{self.rule}:{self.path}:{self.snippet}"
        return hashlib.sha1(raw.encode("utf-8", "replace")).hexdigest()[:16]

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.name}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


class Rule:
    """Base class: subclass, set ``id``/``name``, implement :meth:`check`."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, module: "Module") -> Iterator[Finding]:
        raise NotImplementedError

    # convenience for subclasses
    def finding(self, module: "Module", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(
            rule=self.id,
            name=self.name,
            severity=self.severity,
            path=module.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


class ProjectRule(Rule):
    """A rule that needs the *whole* analyzed module set at once.

    Per-module :meth:`Rule.check` is a no-op; the analyzer calls
    :meth:`check_project` once after every file has been parsed.  The
    RPR4xx dataflow rules are project rules: their facts (axis
    contracts, alias sets, call summaries) span module boundaries.
    """

    def check(self, module: "Module") -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: list["Module"]) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instances of every registered rule, sorted by id."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


class Module:
    """One parsed source file plus the lookups rules keep needing."""

    def __init__(self, path: Path, root: Path | None = None):
        self.path = path
        try:
            self.rel_path = path.resolve().relative_to(
                (root or Path.cwd()).resolve()
            ).as_posix()
        except ValueError:
            self.rel_path = path.as_posix()
        self.source = path.read_text(encoding="utf-8", errors="replace")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        #: local names bound to the numpy module ("np", "numpy", ...)
        self.numpy_aliases = {
            alias.asname or alias.name
            for node in ast.walk(self.tree)
            if isinstance(node, ast.Import)
            for alias in node.names
            if alias.name == "numpy"
        }

    # -- shared helpers -------------------------------------------------
    def is_numpy_call(self, node: ast.AST, *attrs: str) -> bool:
        """Is ``node`` a call ``np.<attr>(...)`` for one of ``attrs``?"""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in attrs
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.numpy_aliases
        )

    def enclosing_function(self, node: ast.AST):
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def suppressed(self, finding: Finding) -> bool:
        """Is there a ``# noqa`` comment covering this finding's line?"""
        if not 1 <= finding.line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[finding.line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True  # bare "# noqa" silences everything
        return finding.rule in {c.strip().upper() for c in codes.split(",")}


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: list[Finding]
    suppressed: int = 0  # count silenced by "# noqa"
    baselined: int = 0  # count matched against the baseline file
    files: int = 0
    errors: list[str] = None  # unparseable files

    def __post_init__(self) -> None:
        if self.errors is None:
            self.errors = []

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.errors) else 0


class Analyzer:
    """Run a rule set over a file tree."""

    def __init__(self, rules: Iterable[Rule] | None = None, root: Path | None = None):
        self.rules = list(rules) if rules is not None else all_rules()
        self.root = root or Path.cwd()

    def collect(self, paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for entry in paths:
            p = Path(entry)
            if p.is_dir():
                for sub in sorted(p.rglob("*.py")):
                    if not SKIP_DIRS.intersection(sub.parts):
                        files.append(sub)
            elif p.suffix == ".py":
                files.append(p)
        return files

    def run(self, paths: Iterable[str | Path]) -> AnalysisResult:
        findings: list[Finding] = []
        errors: list[str] = []
        suppressed = 0
        files = self.collect(paths)
        modules: list[Module] = []
        for path in files:
            try:
                module = Module(path, root=self.root)
            except (SyntaxError, OSError) as exc:
                errors.append(f"{path}: {exc}")
                continue
            modules.append(module)
            for rule in self.rules:
                if isinstance(rule, ProjectRule):
                    continue
                for finding in rule.check(module):
                    if module.suppressed(finding):
                        suppressed += 1
                    else:
                        findings.append(finding)
        by_path = {m.rel_path: m for m in modules}
        for rule in self.rules:
            if not isinstance(rule, ProjectRule):
                continue
            for finding in rule.check_project(modules):
                module = by_path.get(finding.path)
                if module is not None and module.suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return AnalysisResult(
            findings=findings,
            suppressed=suppressed,
            files=len(files),
            errors=errors,
        )


# -- baseline ----------------------------------------------------------
def load_baseline(path: str | Path) -> dict[str, dict]:
    """fingerprint → {"rule", "path", "count", "reason"} from a baseline file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    return dict(data.get("findings", {}))


def write_baseline(
    findings: Iterable[Finding],
    path: str | Path,
    reason: str = "pre-existing at baseline creation",
) -> None:
    entries: dict[str, dict] = {}
    for f in findings:
        entry = entries.setdefault(
            f.fingerprint,
            {"rule": f.rule, "path": f.path, "count": 0, "reason": reason},
        )
        entry["count"] += 1
    Path(path).write_text(
        json.dumps({"version": 1, "findings": entries}, indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )


def update_baseline(
    findings: Iterable[Finding],
    path: str | Path,
    reason: str = "pre-existing at baseline update",
) -> tuple[int, int]:
    """Regenerate a baseline file in place from the current findings.

    Unlike :func:`write_baseline` this preserves the human ``reason``
    fields of the old file: an entry whose ``(rule, path)`` pair already
    appears in the old baseline keeps that entry's reason even when the
    fingerprint changed (the usual case after a refactor shifts the
    offending line's text).  Returns ``(kept, dropped)`` — entries
    carried over vs. stale entries removed.
    """
    target = Path(path)
    old: dict[str, dict] = {}
    if target.exists():
        old = load_baseline(target)
    reasons_by_key = {
        (entry.get("rule"), entry.get("path")): entry.get("reason")
        for entry in old.values()
        if entry.get("reason")
    }
    entries: dict[str, dict] = {}
    for f in findings:
        entry = entries.setdefault(
            f.fingerprint,
            {
                "rule": f.rule,
                "path": f.path,
                "count": 0,
                "reason": (
                    old.get(f.fingerprint, {}).get("reason")
                    or reasons_by_key.get((f.rule, f.path))
                    or reason
                ),
            },
        )
        entry["count"] += 1
    kept = sum(1 for fp in entries if fp in old)
    dropped = sum(1 for fp in old if fp not in entries)
    target.write_text(
        json.dumps({"version": 1, "findings": entries}, indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return kept, dropped


def apply_baseline(
    findings: list[Finding], baseline: dict[str, dict]
) -> tuple[list[Finding], int]:
    """Split findings into (new, n_baselined) against baseline counts."""
    budget = {fp: int(entry.get("count", 0)) for fp, entry in baseline.items()}
    fresh: list[Finding] = []
    matched = 0
    for f in findings:
        if budget.get(f.fingerprint, 0) > 0:
            budget[f.fingerprint] -= 1
            matched += 1
        else:
            fresh.append(f)
    return fresh, matched


# -- reporters ---------------------------------------------------------
def render_text(result: AnalysisResult) -> str:
    out = [f.format() for f in result.findings]
    out.extend(f"parse error: {err}" for err in result.errors)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        f" ({result.baselined} baselined, {result.suppressed} suppressed)"
    )
    out.append(summary)
    return "\n".join(out)


def render_json(result: AnalysisResult) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in result.findings],
            "errors": result.errors,
            "files": result.files,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "counts": _counts(result.findings),
        },
        indent=2,
        sort_keys=True,
    )


def _counts(findings: Iterable[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return counts

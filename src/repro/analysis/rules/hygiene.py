"""API-hygiene rules (RPR3xx).

These rules are *project-aware*: they import the live registries
(backends, schedules, partitioners, ``LoopyConfig``) and validate
string literals and keyword arguments against them, so a typo'd
``"c-nod:residual"`` or a ``LoopyConfig(paradgim=...)`` fails CI
instead of a production selection path.  When the project itself is
not importable (linting a detached checkout), the registry-backed
rules degrade to no-ops rather than crashing the analyzer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

#: deprecation shims removed in repro 2.0 — importing them is now an error
_REMOVED_MODULES = {
    "repro.core.residual": "repro.core.scheduler (ResidualBP)",
    "repro.core.workqueue": "repro.core.scheduler (WorkQueue)",
}

#: BeliefGraph fields a registered model's master graph freezes; writes
#: must go through the GraphDelta API (repro.stream.delta) instead
_FROZEN_GRAPH_FIELDS = {
    "src",
    "dst",
    "reverse_edge",
    "priors",
    "beliefs",
    "potentials",
    "observed",
    "observed_state",
    "node_names",
    "dims",
    "in_offsets",
    "in_edge_ids",
    "out_offsets",
    "out_edge_ids",
}


def _registries():
    """(BACKENDS, normalize_schedule, normalize_partitioner, parse) or None."""
    try:
        from repro.backends.registry import BACKENDS
        from repro.core.scheduler import normalize_schedule
        from repro.credo.runner import parse_qualified
        from repro.partition import normalize_partitioner
    except Exception:  # pragma: no cover - detached checkout
        return None
    return BACKENDS, normalize_schedule, normalize_partitioner, parse_qualified


def validate_qualifier(spec: str) -> str | None:
    """Human-readable error for an unresolvable backend qualifier, else None.

    The grammar
    ``<backend>[:<schedule>][@<K>x<METHOD>[+<POLICY>[~<STALENESS>]]]``
    ``[!<EXECUTOR>][%<LAYOUT>]`` is owned by
    :func:`repro.credo.runner.parse_qualified` — the linter calls it in
    strict mode instead of keeping a second copy of the regex, so the
    checker can never drift from what the runner actually accepts.
    """
    registries = _registries()
    if registries is None:
        return None
    backends, normalize_schedule, normalize_partitioner, parse_qualified = registries
    try:
        fields = parse_qualified(spec, strict=True)
    except ValueError as exc:
        return str(exc)
    base = fields["backend"]
    if base not in backends:
        return f"unknown backend {base!r} (known: {', '.join(sorted(backends))})"
    schedule = fields.get("schedule")
    if schedule is not None:
        try:
            normalize_schedule(schedule)
        except (KeyError, ValueError) as exc:
            return f"bad schedule qualifier in {spec!r}: {exc}"
    method = fields.get("partitioner")
    if method is not None:
        try:
            normalize_partitioner(method)
        except (KeyError, ValueError) as exc:
            return f"bad partitioner in {spec!r}: {exc}"
    policy = fields.get("policy")
    if policy is not None:
        error = _validate_shard_policy(policy)
        if error is not None:
            return f"bad shard policy in {spec!r}: {error}"
        staleness = fields.get("staleness")
        if staleness is not None:
            error = _validate_staleness(policy, staleness)
            if error is not None:
                return f"bad staleness in {spec!r}: {error}"
    executor = fields.get("executor")
    if executor is not None:
        error = _validate_executor(executor)
        if error is not None:
            return f"bad executor in {spec!r}: {error}"
    layout = fields.get("layout")
    if layout is not None:
        error = _validate_layout(layout)
        if error is not None:
            return f"bad layout in {spec!r}: {error}"
    return None


def _validate_shard_policy(name: str) -> str | None:
    try:
        from repro.core.shard_policies import normalize_shard_policy
    except Exception:  # pragma: no cover - detached checkout
        return None
    try:
        normalize_shard_policy(name)
    except (KeyError, ValueError) as exc:
        return str(exc)
    return None


def _validate_staleness(policy: str | None, staleness: int) -> str | None:
    try:
        from repro.core.shard_policies import normalize_shard_policy
    except Exception:  # pragma: no cover - detached checkout
        return None
    if staleness < 0:
        return "staleness must be non-negative"
    if policy is not None:
        try:
            canonical = normalize_shard_policy(policy)
        except (KeyError, ValueError):
            return None  # the policy finding already covers this call
        if canonical == "sync" and staleness:
            return "the sync policy is staleness-free; use policy='async'"
    return None


def _validate_executor(name: str) -> str | None:
    try:
        from repro.kernels.executor import normalize_executor
    except Exception:  # pragma: no cover - detached checkout
        return None
    try:
        normalize_executor(name)
    except ValueError as exc:
        return str(exc)
    return None


def _validate_layout(name: str) -> str | None:
    try:
        from repro.kernels.layout import normalize_layout
    except Exception:  # pragma: no cover - detached checkout
        return None
    try:
        normalize_layout(name)
    except ValueError as exc:
        return str(exc)
    return None


def _validate_schedule(name: str) -> str | None:
    registries = _registries()
    if registries is None:
        return None
    _, normalize_schedule, _, _ = registries
    try:
        normalize_schedule(name)
    except (KeyError, ValueError) as exc:
        return str(exc)
    return None


@register
class DeprecatedShimRule(Rule):
    """RPR301: imports of removed 2.0 shim modules / deprecated kwargs."""

    id = "RPR301"
    name = "deprecated-shim"
    severity = "warning"
    description = (
        "import of a module removed in repro 2.0 (repro.core.residual / "
        "repro.core.workqueue) or use of the edge_cut_fraction kwarg"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _REMOVED_MODULES:
                        yield self._shim_finding(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module in _REMOVED_MODULES:
                    yield self._shim_finding(module, node, node.module)
            elif isinstance(node, ast.Call):
                func_name = self._call_name(node)
                if func_name is not None and func_name.endswith("Backend"):
                    for kw in node.keywords:
                        if kw.arg == "edge_cut_fraction":
                            yield self.finding(
                                module,
                                node,
                                "edge_cut_fraction= is deprecated (removal: "
                                "repro 2.0); pass a measured Partition "
                                "(repro.partition.make_partition) instead",
                            )

    def _shim_finding(self, module: Module, node: ast.AST, name: str) -> Finding:
        return self.finding(
            module,
            node,
            f"import of {name}, removed in repro 2.0; "
            f"import from {_REMOVED_MODULES[name]} instead",
        )

    @staticmethod
    def _call_name(call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return None


@register
class UnresolvableQualifierRule(Rule):
    """RPR302: backend / schedule qualifier strings that don't resolve."""

    id = "RPR302"
    name = "unresolvable-qualifier"
    description = (
        "backend name, ':schedule' or '@KxMETHOD' qualifier literal that "
        "does not resolve against the live registries"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            candidates: list[tuple[ast.AST, str, str]] = []
            if func_name == "get_backend" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    candidates.append((arg, arg.value, "backend"))
            for kw in node.keywords:
                if not (
                    isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    continue
                if kw.arg == "backend":
                    candidates.append((kw.value, kw.value.value, "backend"))
                elif kw.arg == "schedule":
                    candidates.append((kw.value, kw.value.value, "schedule"))
            for target, value, kind in candidates:
                error = (
                    validate_qualifier(value)
                    if kind == "backend"
                    else _validate_schedule(value)
                )
                if error is not None:
                    yield self.finding(
                        module,
                        target,
                        f"{kind} literal {value!r} does not resolve: {error}",
                    )


@register
class UnknownConfigKwargRule(Rule):
    """RPR303: ``LoopyConfig(...)`` kwargs that don't exist (or are shims)."""

    id = "RPR303"
    name = "unknown-config-kwarg"
    description = (
        "LoopyConfig called with a keyword that is not a config field, "
        "or with the deprecated work_queue= boolean shim"
    )

    def _fields(self) -> set[str] | None:
        try:
            import dataclasses

            from repro.core.loopy import LoopyConfig
        except Exception:  # pragma: no cover - detached checkout
            return None
        return {f.name for f in dataclasses.fields(LoopyConfig)}

    def check(self, module: Module) -> Iterator[Finding]:
        fields = self._fields()
        if fields is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "LoopyConfig":
                continue
            for kw in node.keywords:
                if kw.arg is None:  # **kwargs — can't check statically
                    continue
                if kw.arg == "work_queue":
                    yield self.finding(
                        module,
                        node,
                        "LoopyConfig(work_queue=...) is a deprecated shim "
                        "(removal: repro 2.0); use schedule='work_queue' / "
                        "schedule='sync'",
                    )
                elif kw.arg not in fields:
                    yield self.finding(
                        module,
                        node,
                        f"LoopyConfig has no field {kw.arg!r} "
                        f"(known: {', '.join(sorted(fields))})",
                    )


@register
class UnknownShardPolicyRule(Rule):
    """RPR304: shard-policy / staleness values that don't resolve."""

    id = "RPR304"
    name = "unknown-shard-policy"
    description = (
        "policy=/shard_policy= literal not in the live shard-policy "
        "registry, a negative staleness= literal, or staleness on the "
        "staleness-free sync policy"
    )

    @staticmethod
    def _int_literal(node: ast.AST) -> int | None:
        """Plain or negated int literal (``-1`` parses as USub(1))."""
        if isinstance(node, ast.Constant):
            value = node.value
            return value if type(value) is int else None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = UnknownShardPolicyRule._int_literal(node.operand)
            return None if inner is None else -inner
        return None

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            policy: str | None = None
            policy_node: ast.AST | None = None
            staleness: int | None = None
            staleness_node: ast.AST | None = None
            for kw in node.keywords:
                if (
                    kw.arg in ("policy", "shard_policy")
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    policy, policy_node = kw.value.value, kw.value
                elif kw.arg == "staleness":
                    literal = self._int_literal(kw.value)
                    if literal is not None:
                        staleness, staleness_node = literal, kw.value
            if policy is not None:
                error = _validate_shard_policy(policy)
                if error is not None:
                    yield self.finding(
                        module,
                        policy_node,
                        f"shard policy literal {policy!r} does not resolve: "
                        f"{error}",
                    )
                    policy = None  # suppress the dependent staleness check
            if staleness is not None:
                error = _validate_staleness(policy, staleness)
                if error is not None:
                    yield self.finding(
                        module,
                        staleness_node,
                        f"staleness literal {staleness!r} does not resolve: "
                        f"{error}",
                    )


@register
class FrozenGraphMutationRule(Rule):
    """RPR306: direct mutation of a registered model's frozen graph."""

    id = "RPR306"
    name = "frozen-graph-mutation"
    description = (
        "write to a structure field of a '.graph' attribute (a registered "
        "model's frozen master), or evidence applied to one — mutate "
        "through the GraphDelta API (repro.stream.delta) instead"
    )

    @staticmethod
    def _attr_chain(node: ast.AST) -> list[str]:
        """Attribute names along a ``a.b[i].c``-style chain, outermost last.

        Subscripts between attributes are transparent, so
        ``registry.get("m").graph.src[0]`` yields ``['graph', 'src']`` —
        the call boundary resets the chain (its result, not its receiver,
        is what's being mutated).
        """
        attrs: list[str] = []
        while True:
            if isinstance(node, ast.Attribute):
                attrs.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            else:
                break
        attrs.reverse()
        return attrs

    def _is_frozen_write(self, target: ast.AST) -> bool:
        attrs = self._attr_chain(target)
        for i, name in enumerate(attrs[:-1]):
            if name == "graph" and attrs[i + 1] in _FROZEN_GRAPH_FIELDS:
                return True
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if self._is_frozen_write(target):
                        yield self.finding(
                            module,
                            node,
                            "direct write to a registered model's frozen "
                            "graph; apply a GraphDelta "
                            "(repro.stream.delta) instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                func_name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if func_name not in ("observe", "clear_observations"):
                    continue
                if not node.args:
                    continue
                attrs = self._attr_chain(node.args[0])
                if attrs and attrs[-1] == "graph":
                    yield self.finding(
                        module,
                        node,
                        f"{func_name}() on a registered model's frozen "
                        "graph; evidence travels with queries, structural "
                        "changes through GraphDelta (repro.stream.delta)",
                    )


@register
class UnknownExecutorLayoutRule(Rule):
    """RPR305: ``executor=`` / ``layout=`` literals not in the registries."""

    id = "RPR305"
    name = "unknown-executor-layout"
    description = (
        "executor=/layout= string literal that does not resolve against "
        "the live repro.kernels registries ('auto' is allowed: run-time "
        "selection)"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg not in ("executor", "layout"):
                    continue
                value = kw.value
                if not (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    continue
                if value.value == "auto":  # resolved by the selector at run time
                    continue
                error = (
                    _validate_executor(value.value)
                    if kw.arg == "executor"
                    else _validate_layout(value.value)
                )
                if error is not None:
                    yield self.finding(
                        module,
                        value,
                        f"{kw.arg} literal {value.value!r} does not resolve: "
                        f"{error}",
                    )

"""RPR4xx: whole-program array dataflow rules.

These are :class:`~repro.analysis.framework.ProjectRule`\\ s — they see
every analyzed module at once, build one
:class:`~repro.analysis.dataflow.DataflowProject` (symbol table, axis
contracts, abstract interpretation) per module set, and translate the
engine's diagnostics into findings:

RPR401  shape/axis mismatch: binary ops, ``np.take``/fancy gathers and
        ``np.bincount`` scatters that align two distinct project
        dimensions (``n_nodes`` vs ``n_edges`` vs ``n_states``).
RPR402  dtype drift: float64 results silently narrowed into float32
        belief buffers via ``out=``, element stores or ``+=``.
RPR403  write-after-read hazard: an ``out=`` write clobbers a buffer
        another live name still reads afterwards.
RPR404  scratch escape: a plan-time scratch buffer (allocated once,
        reused by every sweep) returned from a public method or stored
        on a foreign object.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.dataflow import DataflowProject
from repro.analysis.framework import Finding, Module, ProjectRule, register

#: engine diagnostic kind → rule id owning it
_KIND_TO_RULE = {
    "shape-mismatch": "RPR401",
    "gather-mismatch": "RPR401",
    "dtype-downcast": "RPR402",
    "war-hazard": "RPR403",
    "scratch-escape": "RPR404",
}

#: one shared project per module set (all four rules run over the same
#: files in one analyzer pass; building the engine four times would
#: quadruple the cost for identical answers)
_PROJECT_CACHE: dict[tuple, DataflowProject] = {}


def _project_for(modules: list[Module]) -> DataflowProject:
    key = tuple(sorted((m.rel_path, hash(m.source)) for m in modules))
    project = _PROJECT_CACHE.get(key)
    if project is None:
        _PROJECT_CACHE.clear()  # only ever one live module set per run
        project = DataflowProject([(m.path, m.source, m.tree) for m in modules])
        _PROJECT_CACHE[key] = project
    return project


class _DataflowRule(ProjectRule):
    """Shared plumbing: filter the engine's diagnostics to this rule."""

    def check_project(self, modules: list[Module]) -> Iterator[Finding]:
        project = _project_for(modules)
        for module in modules:
            for diag in project.diagnostics_for(module.path):
                if _KIND_TO_RULE.get(diag.kind) != self.id:
                    continue
                yield self.finding(module, diag.node, diag.message)


@register
class ShapeAxisMismatchRule(_DataflowRule):
    id = "RPR401"
    name = "shape-axis-mismatch"
    description = (
        "array operation aligns two distinct project dimensions "
        "(n_nodes/n_edges/n_states) in a broadcast, gather or scatter"
    )


@register
class DtypeDriftRule(_DataflowRule):
    id = "RPR402"
    name = "dtype-drift"
    description = (
        "float64 result silently downcast into a float32 belief buffer "
        "(out=, element store, or in-place update)"
    )


@register
class WriteAfterReadRule(_DataflowRule):
    id = "RPR403"
    name = "write-after-read"
    description = (
        "out= write clobbers a buffer a still-live alias reads afterwards"
    )


@register
class ScratchEscapeRule(_DataflowRule):
    id = "RPR404"
    name = "scratch-escape"
    description = (
        "plan-time scratch buffer escapes its executor (returned from a "
        "public method or stored on a foreign object)"
    )

"""Project rule catalog.

Importing this package registers every rule with the framework
registry (see :func:`repro.analysis.framework.all_rules`).
"""

from repro.analysis.rules import concurrency, dataflow, hygiene, numeric

__all__ = ["numeric", "concurrency", "hygiene", "dataflow"]

"""Numerical-safety rules (RPR1xx).

Belief/message arrays are probability rows that legitimately contain
exact zeros (hard evidence, deterministic potentials), so every ``log``
and every division by such an array must clamp first — the shared
floors live in :mod:`repro.core.numeric`.  These rules do a light
per-function dataflow pass: a name assigned from ``np.maximum`` /
``np.clip`` / ``safe_log`` / ``safe_divide`` / builtin ``max`` counts
as *clamped* for the rest of the function.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

#: identifiers that smell like probability vectors/matrices
_PROB_NAME = re.compile(
    r"(message|msg|belief|prior|cavity|marginal|posterior|prob(?!e)|potential|psi)",
    re.IGNORECASE,
)

#: builtin calls whose result is a count / cast, never probability mass
_COUNT_FUNCS = {"len", "int", "float", "range", "id", "ord"}

#: numpy calls whose result is safe to log / divide by
_GUARD_ATTRS = {"maximum", "clip", "abs", "exp", "square"}
#: project helpers that clamp internally
_SAFE_FUNCS = {"safe_log", "safe_divide"}
#: structure arrays shared across BeliefGraph.copy() — in-place writes
#: through any copy corrupt every sibling (and the registered master)
_SHARED_STRUCTURE_ATTRS = {
    "src",
    "dst",
    "reverse_edge",
    "in_offsets",
    "in_edge_ids",
    "out_offsets",
    "out_edge_ids",
    "dims",
}


def _terminal_name(node: ast.AST) -> str | None:
    """``a`` for ``a``, ``b`` for ``a.b``, ``a`` for ``a[i]``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _clamped_names(func: ast.AST, module: Module) -> set[str]:
    """Names assigned from a clamping call anywhere in ``func``."""
    clamped: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if _is_guard_expr(node.value, module, clamped):
            clamped.add(target.id)
    return clamped


def _is_guard_expr(node: ast.AST, module: Module, clamped: set[str]) -> bool:
    """Is this expression already safe to log / divide by?"""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return node.id in clamped
    if isinstance(node, ast.Subscript):
        return _is_guard_expr(node.value, module, clamped)
    if isinstance(node, ast.IfExp):
        return _is_guard_expr(node.body, module, clamped) and _is_guard_expr(
            node.orelse, module, clamped
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        # "x + eps" style guard
        return isinstance(node.left, ast.Constant) or isinstance(
            node.right, ast.Constant
        )
    if isinstance(node, ast.Call):
        if module.is_numpy_call(node, *_GUARD_ATTRS):
            return True
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SAFE_FUNCS | {"max", "abs"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SAFE_FUNCS:
            return True
    return False


def _prob_names_in(node: ast.AST, module: Module, clamped: set[str]) -> list[str]:
    """Unclamped probability-ish identifiers inside a denominator,
    not descending into guarded subexpressions."""
    if _is_guard_expr(node, module, clamped):
        return []
    if isinstance(node, ast.Name):
        return [node.id] if _PROB_NAME.search(node.id) and node.id not in clamped else []
    if isinstance(node, ast.Attribute):
        return [node.attr] if _PROB_NAME.search(node.attr) else []
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _COUNT_FUNCS:
            return []  # len(msgs) etc. is a count, not probability mass
        out: list[str] = []
        if isinstance(func, ast.Attribute) and func.attr in {"sum", "prod", "dot"}:
            # x / msgs.sum(): reductions of zeroed rows are the classic case
            out.extend(_prob_names_in(func.value, module, clamped))
        # an unguarded call result: inspect its arguments conservatively
        for arg in node.args:
            out.extend(_prob_names_in(arg, module, clamped))
        return out
    out = []
    for child in ast.iter_child_nodes(node):
        out.extend(_prob_names_in(child, module, clamped))
    return out


@register
class UnguardedLogRule(Rule):
    """RPR101: ``np.log`` on a potentially-zero probability array."""

    id = "RPR101"
    name = "unguarded-log"
    description = (
        "np.log on belief/message/prior data without an epsilon clamp; "
        "use repro.core.numeric.safe_log (or np.maximum(x, TINY/EPS))"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        clamp_cache: dict[ast.AST, set[str]] = {}
        for node in ast.walk(module.tree):
            if not module.is_numpy_call(node, "log", "log2", "log10"):
                continue
            if not node.args:
                continue
            func = module.enclosing_function(node)
            if func not in clamp_cache:
                clamp_cache[func] = (
                    _clamped_names(func, module) if func is not None else set()
                )
            if _is_guard_expr(node.args[0], module, clamp_cache[func]):
                continue
            yield self.finding(
                module,
                node,
                "np.log on an unclamped operand can produce -inf on zero "
                "probabilities; use repro.core.numeric.safe_log or clamp "
                "with np.maximum(x, TINY/EPS) first",
            )


@register
class UnguardedDivideRule(Rule):
    """RPR102: division by a belief/message array without a clamp."""

    id = "RPR102"
    name = "unguarded-divide"
    description = (
        "division by message/belief data without an epsilon clamp; "
        "use repro.core.numeric.safe_divide (or clamp the denominator)"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        clamp_cache: dict[ast.AST, set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                denominator = node.right
            elif module.is_numpy_call(node, "divide", "true_divide") and len(
                node.args
            ) >= 2:
                denominator = node.args[1]
            else:
                continue
            func = module.enclosing_function(node)
            if func not in clamp_cache:
                clamp_cache[func] = (
                    _clamped_names(func, module) if func is not None else set()
                )
            names = _prob_names_in(denominator, module, clamp_cache[func])
            if not names:
                continue
            yield self.finding(
                module,
                node,
                f"division by {'/'.join(sorted(set(names)))} without a zero "
                "guard; cavity divisions hit zeroed message rows under hard "
                "evidence — use repro.core.numeric.safe_divide",
            )


@register
class InPlaceSharedMutationRule(Rule):
    """RPR103: in-place mutation of shared / cache-returned arrays."""

    id = "RPR103"
    name = "inplace-shared-mutation"
    description = (
        "in-place writes to BeliefGraph structure arrays (shared across "
        ".copy()) or to objects returned by a result cache"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        tainted = self._cache_returned_names(module)
        for node in ast.walk(module.tree):
            target = None
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Subscript):
                        target = t
            elif isinstance(node, ast.AugAssign):
                target = node.target
            if target is None:
                continue

            # graph.src[...] = ... / graph.src += ... on shared structure
            base = target.value if isinstance(target, ast.Subscript) else target
            if (
                isinstance(base, ast.Attribute)
                and base.attr in _SHARED_STRUCTURE_ATTRS
                and not self._is_self_constructor_write(module, node, base)
            ):
                yield self.finding(
                    module,
                    node,
                    f"in-place write to .{base.attr}: graph structure arrays "
                    "are shared across BeliefGraph.copy() — build a new array "
                    "instead of mutating",
                )
                continue

            # cached[...] = ... on a cache-returned object
            name = _terminal_name(target)
            if name is not None and name in tainted:
                yield self.finding(
                    module,
                    node,
                    f"in-place mutation of {name!r}, which came from a result "
                    "cache; mutate a copy (copy_posteriors / np.array(x, "
                    "copy=True)) so cached entries stay pristine",
                )

    @staticmethod
    def _cache_returned_names(module: Module) -> set[str]:
        """Names assigned from ``<something cache>.get(...)``."""
        tainted: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "get"
            ):
                owner = _terminal_name(value.func.value)
                if owner is not None and "cache" in owner.lower():
                    tainted.add(target.id)
        return tainted

    @staticmethod
    def _is_self_constructor_write(
        module: Module, node: ast.AST, base: ast.Attribute
    ) -> bool:
        """``self.src[...] = ...`` inside ``__init__``/``build`` is the
        constructor filling arrays it just allocated — not shared yet."""
        if not (isinstance(base.value, ast.Name) and base.value.id == "self"):
            return False
        func = module.enclosing_function(node)
        return func is not None and func.name in {"__init__", "build", "__new__"}

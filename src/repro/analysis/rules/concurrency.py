"""Concurrency-discipline rules (RPR2xx).

The serving layer (engine, admission queue, metrics, result cache,
model registry) follows one convention: every class that owns a
``threading.Lock`` / ``RLock`` / ``Condition`` attribute touches its
lock-guarded state only inside ``with self.<lock>:`` blocks.  RPR201
infers the guarded attribute set per class (anything *stored* under the
lock) and flags any access to those attributes outside a lock block.
Helper methods that document themselves as running with the lock held
("caller holds lock" in the docstring) are exempt.

RPR202 catches the classic thread-pool bug: submitting a lambda (or a
nested function) that closes over the loop variable — by the time the
worker runs, every submission sees the final iteration's value.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
_HELD_MARKERS = ("caller holds lock", "lock held", "caller holds the lock", "with the lock held")


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.X`` attributes assigned a threading primitive in this class."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _is_lock_with(item: ast.withitem, locks: set[str]) -> bool:
    expr = item.context_expr
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in locks
    )


def _documented_lock_held(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    doc = ast.get_docstring(func) or ""
    doc = doc.lower()
    return any(marker in doc for marker in _HELD_MARKERS)


class _AccessVisitor(ast.NodeVisitor):
    """Collect self-attribute accesses tagged with lock context."""

    def __init__(self, locks: set[str]):
        self.locks = locks
        self.depth = 0
        #: (attr, node, is_store, under_lock)
        self.accesses: list[tuple[str, ast.AST, bool, bool]] = []

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_lock_with(item, self.locks) for item in node.items)
        if locked:
            self.depth += 1
        self.generic_visit(node)
        if locked:
            self.depth -= 1

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if node.attr not in self.locks:
                is_store = isinstance(node.ctx, (ast.Store, ast.Del))
                self.accesses.append((node.attr, node, is_store, self.depth > 0))
        self.generic_visit(node)

    # nested defs get their own analysis pass; don't double-count
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


@register
class UnlockedSharedAttributeRule(Rule):
    """RPR201: lock-guarded attribute accessed outside ``with self._lock``."""

    id = "RPR201"
    name = "unlocked-attribute"
    description = (
        "attribute written under a lock elsewhere in the class is "
        "read or written without holding that lock"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for cls in module.classes():
            locks = _lock_attrs(cls)
            if not locks:
                continue
            methods = [
                n
                for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            per_method: list[tuple[ast.FunctionDef, _AccessVisitor]] = []
            guarded: set[str] = set()
            for method in methods:
                visitor = _AccessVisitor(locks)
                for stmt in method.body:
                    visitor.visit(stmt)
                per_method.append((method, visitor))
                for attr, _node, is_store, under_lock in visitor.accesses:
                    if is_store and under_lock:
                        guarded.add(attr)
            if not guarded:
                continue
            for method, visitor in per_method:
                if method.name in {"__init__", "__new__"}:
                    continue  # no concurrent access before construction ends
                if _documented_lock_held(method):
                    continue
                for attr, node, is_store, under_lock in visitor.accesses:
                    if attr in guarded and not under_lock:
                        kind = "write to" if is_store else "read of"
                        yield self.finding(
                            module,
                            node,
                            f"{kind} self.{attr} outside the lock: it is "
                            f"written under `with self.{'/'.join(sorted(locks))}` "
                            f"elsewhere in {cls.name}; take the lock (or mark "
                            "the helper \"caller holds lock\")",
                        )


@register
class ThreadPoolLoopCaptureRule(Rule):
    """RPR202: thread-pool submission capturing a mutable loop variable."""

    id = "RPR202"
    name = "loop-variable-capture"
    description = (
        "lambda/closure submitted to an executor references the enclosing "
        "loop variable; bind it as a default argument instead"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            loop_names = {
                n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)
            }
            if not loop_names:
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_submission(node):
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    captured = self._free_loop_vars(arg, loop_names)
                    if captured:
                        yield self.finding(
                            module,
                            node,
                            "closure submitted to a worker references loop "
                            f"variable(s) {', '.join(sorted(captured))}; by "
                            "execution time every submission sees the last "
                            "value — bind via default args "
                            "(lambda x=x: ...) or functools.partial",
                        )

    @staticmethod
    def _is_submission(call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in {"submit", "apply_async"}:
            return True
        return isinstance(func, ast.Name) and func.id == "Thread"

    @staticmethod
    def _free_loop_vars(node: ast.AST, loop_names: set[str]) -> set[str]:
        if isinstance(node, ast.Lambda):
            bound = {a.arg for a in node.args.args + node.args.kwonlyargs}
            bound.update(
                a.arg
                for a in (node.args.vararg, node.args.kwarg)
                if a is not None
            )
            free = {
                n.id
                for n in ast.walk(node.body)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            }
            return (free & loop_names) - bound
        return set()

"""CLI for the project-aware static checker.

Usage::

    python -m repro.analysis [paths...] [--baseline FILE] [--json]
    credo lint [same arguments]

Exit code 0 when no *new* findings (after baseline + noqa), 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.framework import (
    Analyzer,
    all_rules,
    apply_baseline,
    load_baseline,
    render_json,
    render_text,
    update_baseline,
    write_baseline,
)
from repro.analysis.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="project-aware static checker (RPR rules)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of known findings; only new ones fail",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "regenerate --baseline in place from current findings, "
            "preserving recorded reasons, and exit 0"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the JSON report to stdout"
    )
    parser.add_argument(
        "--json-report",
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--sarif", action="store_true", help="emit a SARIF 2.1.0 report to stdout"
    )
    parser.add_argument(
        "--sarif-report",
        metavar="FILE",
        help="also write the SARIF 2.1.0 report to FILE (code-scanning upload)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id} [{rule.name}] ({rule.severity}) {rule.description}")
        return 0
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [r for r in rules if r.id in wanted]

    analyzer = Analyzer(rules=rules)
    result = analyzer.run(args.paths or ["src"])

    if args.write_baseline:
        write_baseline(result.findings, args.write_baseline)
        print(
            f"baseline: {len(result.findings)} finding(s) recorded "
            f"to {args.write_baseline}"
        )
        return 0

    if args.update_baseline:
        if not args.baseline:
            print("--update-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        kept, dropped = update_baseline(result.findings, args.baseline)
        print(
            f"baseline: {args.baseline} regenerated with "
            f"{len(result.findings)} finding(s) "
            f"({kept} reason(s) preserved, {dropped} stale entries dropped)"
        )
        return 0

    if args.baseline and Path(args.baseline).exists():
        baseline = load_baseline(args.baseline)
        result.findings, result.baselined = apply_baseline(result.findings, baseline)

    if args.json_report:
        Path(args.json_report).write_text(render_json(result) + "\n", encoding="utf-8")
    if args.sarif_report:
        Path(args.sarif_report).write_text(
            render_sarif(result, rules) + "\n", encoding="utf-8"
        )
    if args.sarif:
        print(render_sarif(result, rules))
    elif args.json:
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())

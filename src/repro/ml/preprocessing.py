"""Preprocessing: standardization and PCA (paper §3.7).

The paper tried PCA on the Credo features and found it "results in worse
F1-score metrics" because every feature carries independent signal — the
E10 benchmark replays that ablation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError

__all__ = ["StandardScaler", "PCA"]


class StandardScaler:
    """Zero-mean, unit-variance feature scaling."""

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise NotFittedError("StandardScaler is not fitted yet")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise NotFittedError("StandardScaler is not fitted yet")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class PCA:
    """Principal component analysis via SVD of the centred data.

    Per the HPC guide: we ask for the thin SVD (``full_matrices=False``)
    — only the leading factors are needed.
    """

    def __init__(self, n_components: int | None = None):
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components

    def fit(self, X) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.mean_ = X.mean(axis=0)
        centred = X - self.mean_
        _u, s, vt = np.linalg.svd(centred, full_matrices=False)
        k = self.n_components or min(X.shape)
        k = min(k, vt.shape[0])
        self.components_ = vt[:k]
        var = (s**2) / max(len(X) - 1, 1)
        total = var.sum()
        self.explained_variance_ = var[:k]
        self.explained_variance_ratio_ = var[:k] / total if total > 0 else var[:k]
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "components_"):
            raise NotFittedError("PCA is not fitted yet")
        return (np.asarray(X, dtype=np.float64) - self.mean_) @ self.components_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if not hasattr(self, "components_"):
            raise NotFittedError("PCA is not fitted yet")
        return np.asarray(X, dtype=np.float64) @ self.components_ + self.mean_

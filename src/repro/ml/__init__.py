"""From-scratch classifier library (paper §3.7, §4.3).

The paper selects the best BP implementation with scikit-learn
classifiers; this subpackage reimplements the ones its evaluation
compares — decision tree (CART), random forest, k-nearest neighbours,
Gaussian naive Bayes, a linear SVM, a multi-layer perceptron and gradient
boosting — together with the metrics (F1), model-selection utilities
(train/test split, k-fold cross-validation) and preprocessing (scaler,
PCA) the experiments use.

The implementations favour clarity and determinism (every stochastic
component takes a seed) over speed; the datasets involved are tiny
(~95 rows × 5 features).
"""

from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNBClassifier
from repro.ml.svm import LinearSVMClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.gp import GaussianProcessClassifier
from repro.ml.metrics import accuracy_score, f1_score, confusion_matrix
from repro.ml.model_selection import train_test_split, KFold, cross_val_score
from repro.ml.preprocessing import StandardScaler, PCA

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "GaussianNBClassifier",
    "LinearSVMClassifier",
    "MLPClassifier",
    "GradientBoostingClassifier",
    "GaussianProcessClassifier",
    "accuracy_score",
    "f1_score",
    "confusion_matrix",
    "train_test_split",
    "KFold",
    "cross_val_score",
    "StandardScaler",
    "PCA",
]

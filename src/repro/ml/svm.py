"""Linear support-vector machine via subgradient descent on the hinge loss
(compared in paper §4.3).

The paper observes that because "the majority of the features [are]
ratios between zero and one … this heavy normalization limits the
utility of the remapping that the Support Vector Machine classifier
does".  A deterministic Pegasos-style trainer with one-vs-rest
multiclass handling.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_xy

__all__ = ["LinearSVMClassifier"]


class LinearSVMClassifier(ClassifierMixin):
    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 500,
        tol: float = 1e-4,
        random_state: int | None = 0,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def _fit_binary(self, X: np.ndarray, t: np.ndarray, rng) -> tuple[np.ndarray, float]:
        """Train one ±1 classifier; returns (w, b)."""
        n, k = X.shape
        w = np.zeros(k)
        b = 0.0
        lam = 1.0 / (self.C * n)
        step = 0
        for epoch in range(self.max_iter):
            order = rng.permutation(n)
            moved = 0.0
            for i in order:
                step += 1
                eta = 1.0 / (lam * step)
                margin = t[i] * (X[i] @ w + b)
                if margin < 1.0:
                    dw = lam * w - t[i] * X[i]
                    db = -t[i]
                else:
                    dw = lam * w
                    db = 0.0
                w -= eta * dw
                b -= eta * 0.01 * db  # slow bias updates stabilize Pegasos
                moved += float(np.abs(eta * dw).sum())
            if moved / n < self.tol:
                break
        return w, b

    def fit(self, X, y) -> "LinearSVMClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode(y)
        rng = np.random.default_rng(self.random_state)
        n_classes = len(self.classes_)
        if n_classes < 2:
            self.coef_ = np.zeros((1, X.shape[1]))
            self.intercept_ = np.zeros(1)
            return self
        if n_classes == 2:
            t = np.where(encoded == 1, 1.0, -1.0)
            w, b = self._fit_binary(X, t, rng)
            self.coef_ = np.array([w])
            self.intercept_ = np.array([b])
        else:
            ws, bs = [], []
            for c in range(n_classes):
                t = np.where(encoded == c, 1.0, -1.0)
                w, b = self._fit_binary(X, t, rng)
                ws.append(w)
                bs.append(b)
            self.coef_ = np.array(ws)
            self.intercept_ = np.array(bs)
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        return X @ self.coef_.T + self.intercept_

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        if len(self.classes_) == 2:
            return self._decode((scores[:, 0] > 0).astype(int))
        return self._decode(scores.argmax(axis=1))

    def predict_proba(self, X) -> np.ndarray:
        """Platt-style logistic squash of the margins (not calibrated)."""
        scores = self.decision_function(X)
        if len(self.classes_) == 2:
            p1 = 1.0 / (1.0 + np.exp(-scores[:, 0]))
            return np.column_stack([1.0 - p1, p1])
        scores -= scores.max(axis=1, keepdims=True)
        p = np.exp(scores)
        return p / p.sum(axis=1, keepdims=True)

"""k-nearest-neighbours classifier (compared in paper §4.3).

The paper notes kNN "only excels when the features can yield entirely
separable clusters", which the interrelated Credo features do not —
hence its middling Figure 10 scores.  Euclidean distance, optional
inverse-distance weighting.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_xy

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(ClassifierMixin):
    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_xy(X, y)
        self._X = X
        self._y = self._encode(y)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        k = min(self.n_neighbors, len(self._X))
        # (q, n) pairwise squared distances
        d2 = ((X[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        out = np.zeros((len(X), len(self.classes_)))
        for i in range(len(X)):
            labels = self._y[nearest[i]]
            if self.weights == "uniform":
                w = np.ones(k)
            else:
                w = 1.0 / np.maximum(np.sqrt(d2[i, nearest[i]]), 1e-12)
            for label, weight in zip(labels, w):
                out[i, label] += weight
            out[i] /= out[i].sum()
        return out

    def predict(self, X) -> np.ndarray:
        return self._decode(self.predict_proba(X).argmax(axis=1))

"""Classification metrics (paper §3.7, §4.3).

The paper scores everything by **F1** ("94.7 % F1-score" for the tuned
random forest, "89.5 %" for the depth-2 tree, "72.2 %" on Volta).  With a
binary Node/Edge label we report the standard binary F1 against the
positive class by default and macro-averaged F1 for multiclass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy_score", "precision_recall_f1", "f1_score", "confusion_matrix"]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """``C[i, j]`` = count of samples with true label i predicted as j."""
    y_true, y_pred = _validate(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix


def precision_recall_f1(y_true, y_pred, positive) -> tuple[float, float, float]:
    """Binary precision/recall/F1 with ``positive`` as the target class."""
    y_true, y_pred = _validate(y_true, y_pred)
    tp = float(((y_true == positive) & (y_pred == positive)).sum())
    fp = float(((y_true != positive) & (y_pred == positive)).sum())
    fn = float(((y_true == positive) & (y_pred != positive)).sum())
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return precision, recall, f1


def f1_score(y_true, y_pred, *, average: str = "binary", positive=None) -> float:
    """F1-score.

    ``average="binary"`` scores the ``positive`` class (defaults to the
    lexicographically larger of two labels); ``"macro"`` averages the
    per-class F1s.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    if average == "binary":
        if len(labels) > 2:
            raise ValueError("binary F1 needs at most two classes; use average='macro'")
        if positive is None:
            positive = sorted(labels.tolist())[-1]
        return precision_recall_f1(y_true, y_pred, positive)[2]
    if average == "macro":
        return float(
            np.mean([precision_recall_f1(y_true, y_pred, c)[2] for c in labels])
        )
    raise ValueError(f"unknown average {average!r}")

"""Gaussian naive Bayes (compared in paper §4.3).

The paper points out its assumptions — "a normal distribution of the
features and a lack of covariances among them" — are violated by the
Credo features (Figure 4 shows clear interrelation), explaining its weak
Figure 10 performance.
"""

from __future__ import annotations

import numpy as np

from repro.core.numeric import EPS, safe_log
from repro.ml.base import ClassifierMixin, check_xy

__all__ = ["GaussianNBClassifier"]


class GaussianNBClassifier(ClassifierMixin):
    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNBClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        global_var = X.var(axis=0).max() if len(X) > 1 else 1.0
        eps = self.var_smoothing * max(global_var, 1e-12)
        for c in range(n_classes):
            rows = X[encoded == c]
            self.class_prior_[c] = len(rows) / len(X)
            self.theta_[c] = rows.mean(axis=0)
            self.var_[c] = rows.var(axis=0) + eps
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((len(X), len(self.classes_)))
        for c in range(len(self.classes_)):
            log_prior = np.log(max(self.class_prior_[c], EPS))
            diff = X - self.theta_[c]
            # var_ >= var_smoothing > EPS after fit, so the clamp is exact
            log_like = -0.5 * (
                safe_log(2.0 * np.pi * self.var_[c], EPS) + diff**2 / self.var_[c]
            ).sum(axis=1)
            jll[:, c] = log_prior + log_like
        return jll

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        return self._decode(self._joint_log_likelihood(X).argmax(axis=1))

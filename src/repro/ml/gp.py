"""Gaussian-process classifier (compared in paper §4.3 / Figure 10).

A binary GP classifier with an RBF kernel and the Laplace approximation
(Rasmussen & Williams, ch. 3): Newton iterations find the posterior mode
of the latent function under the logistic likelihood, prediction pushes
the latent mean through the link.  One-vs-rest handles multiclass.

The paper groups it with naive Bayes among the poorly suited models:
both "assume a normal distribution of the features and a lack of
covariances among them", which the Credo features violate.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_xy

__all__ = ["GaussianProcessClassifier"]


def _rbf(a: np.ndarray, b: np.ndarray, length_scale: float) -> np.ndarray:
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    return np.exp(-0.5 * d2 / length_scale**2)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class _BinaryLaplaceGP:
    def __init__(self, length_scale: float, noise: float, max_newton: int):
        self.length_scale = length_scale
        self.noise = noise
        self.max_newton = max_newton

    def fit(self, X: np.ndarray, t: np.ndarray) -> "_BinaryLaplaceGP":
        """t ∈ {0, 1}."""
        self.X = X
        K = _rbf(X, X, self.length_scale) + self.noise * np.eye(len(X))
        f = np.zeros(len(X))
        for _ in range(self.max_newton):
            pi = _sigmoid(f)
            W = pi * (1.0 - pi)
            grad = t - pi
            # Newton step: f_new = K (W f + grad) preconditioned by
            # (I + K W); solve the symmetric system directly
            B = np.eye(len(X)) + K * W[None, :]
            rhs = K @ (W * f + grad)
            f_new = np.linalg.solve(B, rhs)
            if np.abs(f_new - f).max() < 1e-6:
                f = f_new
                break
            f = f_new
        self.f_hat = f
        pi = _sigmoid(f)
        self.grad = t - pi
        return self

    def latent_mean(self, Xq: np.ndarray) -> np.ndarray:
        Ks = _rbf(Xq, self.X, self.length_scale)
        return Ks @ self.grad


class GaussianProcessClassifier(ClassifierMixin):
    """RBF-kernel GP classification via the Laplace approximation."""

    def __init__(
        self,
        length_scale: float = 1.0,
        noise: float = 1e-6,
        max_newton: int = 30,
    ):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.length_scale = length_scale
        self.noise = noise
        self.max_newton = max_newton

    def fit(self, X, y) -> "GaussianProcessClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode(y)
        n_classes = len(self.classes_)
        self._models: list[_BinaryLaplaceGP] = []
        targets = [(encoded == c).astype(float) for c in range(max(n_classes, 2))]
        if n_classes <= 2:
            targets = [targets[1] if n_classes == 2 else targets[0]]
        for t in targets[: n_classes if n_classes > 2 else 1]:
            model = _BinaryLaplaceGP(self.length_scale, self.noise, self.max_newton)
            self._models.append(model.fit(X, t))
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        if len(self.classes_) <= 2:
            p1 = _sigmoid(self._models[0].latent_mean(X))
            if len(self.classes_) == 1:
                return np.ones((len(X), 1))
            return np.column_stack([1.0 - p1, p1])
        scores = np.column_stack([m.latent_mean(X) for m in self._models])
        scores -= scores.max(axis=1, keepdims=True)
        p = np.exp(scores)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self._decode(self.predict_proba(X).argmax(axis=1))

"""Gradient boosting (compared in paper §4.3).

Binomial/multinomial gradient boosting over shallow CART regression-style
trees (class-probability leaves re-fit on residual sign agreement keeps
this compact: we boost the log-odds with depth-limited classification
trees fit to the pseudo-residual sign, the classic LogitBoost-lite
construction).  The paper finds it decent but data-hungry (§4.3) — the
same verdict Figure 10 encodes.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_xy

__all__ = ["GradientBoostingClassifier"]


class _RegressionStump:
    """Depth-limited regression tree fit by variance reduction."""

    def __init__(self, max_depth: int, min_samples_leaf: int):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf

    def fit(self, X: np.ndarray, r: np.ndarray) -> "_RegressionStump":
        self.root = self._build(X, r, 0)
        return self

    def _build(self, X: np.ndarray, r: np.ndarray, depth: int) -> dict:
        node = {"value": float(r.mean()) if len(r) else 0.0, "feature": -1}
        if depth >= self.max_depth or len(r) < 2 * self.min_samples_leaf:
            return node
        best_score = float(((r - r.mean()) ** 2).sum())
        best = None
        for feature in range(X.shape[1]):
            order = np.argsort(X[:, feature], kind="stable")
            xs, rs = X[order, feature], r[order]
            csum = np.cumsum(rs)
            csq = np.cumsum(rs**2)
            total_sum, total_sq = csum[-1], csq[-1]
            n = len(rs)
            for i in range(self.min_samples_leaf - 1, n - self.min_samples_leaf):
                if xs[i] == xs[i + 1]:
                    continue
                nl = i + 1
                nr = n - nl
                sl, ql = csum[i], csq[i]
                sr, qr = total_sum - sl, total_sq - ql
                score = (ql - sl**2 / nl) + (qr - sr**2 / nr)
                if score < best_score - 1e-12:
                    best_score = score
                    best = (feature, 0.5 * (xs[i] + xs[i + 1]))
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.update(
            feature=feature,
            threshold=threshold,
            left=self._build(X[mask], r[mask], depth + 1),
            right=self._build(X[~mask], r[~mask], depth + 1),
        )
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.root
            while node["feature"] != -1:
                node = node["left"] if row[node["feature"]] <= node["threshold"] else node["right"]
            out[i] = node["value"]
        return out


class GradientBoostingClassifier(ClassifierMixin):
    """Multinomial gradient boosting on shallow regression trees."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 2,
        min_samples_leaf: int = 1,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode(y)
        n = len(X)
        c = len(self.classes_)
        onehot = np.zeros((n, c))
        onehot[np.arange(n), encoded] = 1.0

        self._base_logit = np.log(np.maximum(onehot.mean(axis=0), 1e-12))
        logits = np.tile(self._base_logit, (n, 1))
        self._stages: list[list[_RegressionStump]] = []
        for _ in range(self.n_estimators):
            shifted = logits - logits.max(axis=1, keepdims=True)
            p = np.exp(shifted)
            p /= p.sum(axis=1, keepdims=True)
            residual = onehot - p  # negative gradient of multinomial CE
            stage: list[_RegressionStump] = []
            for k in range(c):
                stump = _RegressionStump(self.max_depth, self.min_samples_leaf).fit(
                    X, residual[:, k]
                )
                logits[:, k] += self.learning_rate * stump.predict(X)
                stage.append(stump)
            self._stages.append(stage)
        return self

    def _raw(self, X: np.ndarray) -> np.ndarray:
        logits = np.tile(self._base_logit, (len(X), 1))
        for stage in self._stages:
            for k, stump in enumerate(stage):
                logits[:, k] += self.learning_rate * stump.predict(X)
        return logits

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        logits = self._raw(X)
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self._decode(self.predict_proba(X).argmax(axis=1))

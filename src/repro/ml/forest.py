"""Random forest (paper §3.7, §4.3, Figure 5).

Bootstrap-aggregated CART trees with per-split feature subsampling.  The
paper's tuned configuration — max-depth 6, **14 estimators** — reaches a
94.7 % F1-score on the implementation-selection task; feature importances
(Figure 5) are the impurity-decrease importances averaged over trees.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_xy
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(ClassifierMixin):
    """Bagged CART ensemble with majority soft-voting."""

    def __init__(
        self,
        n_estimators: int = 14,
        max_depth: int | None = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode(y)
        rng = np.random.default_rng(self.random_state)
        n = len(X)
        self.estimators_: list[DecisionTreeClassifier] = []
        self._tree_class_maps: list[np.ndarray] = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n) if self.bootstrap else np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], encoded[idx])
            self.estimators_.append(tree)
            # a bootstrap draw may miss classes: map tree classes → global
            self._tree_class_maps.append(tree.classes_.astype(int))
            imp = np.zeros(X.shape[1])
            imp[: len(tree.feature_importances_)] = tree.feature_importances_
            importances += imp
        self.feature_importances_ = importances / self.n_estimators
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ = self.feature_importances_ / total
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        agg = np.zeros((len(X), len(self.classes_)))
        for tree, cmap in zip(self.estimators_, self._tree_class_maps):
            agg[:, cmap] += tree.predict_proba(X)
        return agg / self.n_estimators

    def predict(self, X) -> np.ndarray:
        return self._decode(self.predict_proba(X).argmax(axis=1))

"""CART decision tree (paper §3.7, §4.3, Figure 6).

A Gini-impurity binary decision tree supporting ``max_depth``,
``min_samples_split``, ``min_samples_leaf`` and per-split feature
subsampling (``max_features``, used by the random forest).  The paper's
tuned tree has max-depth 2 and reaches an 89.5 % F1-score on the
Node-vs-Edge labelling; :meth:`DecisionTreeClassifier.describe` renders
the structure the way Figure 6 draws it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import ClassifierMixin, check_xy

__all__ = ["DecisionTreeClassifier", "TreeNode"]


@dataclass
class TreeNode:
    """One tree node; leaves have ``feature == -1``."""

    feature: int
    threshold: float
    left: "TreeNode | None"
    right: "TreeNode | None"
    #: class-count distribution of the training samples that reached here
    counts: np.ndarray

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no split."""
        return self.feature == -1

    @property
    def prediction(self) -> int:
        """Majority class index of the training samples seen here."""
        return int(self.counts.argmax())

    @property
    def proba(self) -> np.ndarray:
        """Class distribution of the training samples seen here."""
        total = self.counts.sum()
        return self.counts / total if total > 0 else np.full_like(self.counts, 1.0 / len(self.counts))


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTreeClassifier(ClassifierMixin):
    """CART with Gini impurity.

    Parameters mirror scikit-learn's where the paper depends on them;
    ``max_features`` accepts ``None`` (all), ``"sqrt"`` or an int.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode(y)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._importance = np.zeros(self.n_features_)
        self.root_ = self._build(X, encoded, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance
        )
        del self._rng
        return self

    def _feature_candidates(self) -> np.ndarray:
        k = self.n_features_
        if self.max_features is None:
            return np.arange(k)
        if self.max_features == "sqrt":
            m = max(1, int(np.sqrt(k)))
        elif isinstance(self.max_features, int):
            m = max(1, min(self.max_features, k))
        else:
            raise ValueError(f"bad max_features {self.max_features!r}")
        return self._rng.choice(k, size=m, replace=False)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        n_classes = len(self.classes_)
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        node = TreeNode(feature=-1, threshold=0.0, left=None, right=None, counts=counts)
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or _gini(counts) == 0.0
        ):
            return node

        best_gain = 0.0
        best: tuple[int, float, np.ndarray] | None = None
        parent_impurity = _gini(counts)
        n = len(y)
        for feature in self._feature_candidates():
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            left_counts = np.zeros(n_classes)
            right_counts = counts.copy()
            # candidate thresholds between distinct consecutive values
            for i in range(n - 1):
                c = ys[i]
                left_counts[c] += 1
                right_counts[c] -= 1
                if xs[i] == xs[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                gain = parent_impurity - (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    threshold = 0.5 * (xs[i] + xs[i + 1])
                    best = (int(feature), float(threshold), X[:, feature] <= threshold)

        if best is None:
            return node
        feature, threshold, mask = best
        self._importance[feature] += best_gain * n
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def _leaf(self, row: np.ndarray) -> TreeNode:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        return self._decode(np.array([self._leaf(row).prediction for row in X]))

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        return np.array([self._leaf(row).proba for row in X])

    def depth(self) -> int:
        """Longest root-to-leaf path length."""
        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        self._check_fitted()
        return walk(self.root_)

    def describe(self, feature_names: list[str] | None = None) -> str:
        """Render the tree structure (the Figure 6 visualization)."""
        self._check_fitted()
        lines: list[str] = []

        def walk(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                label = self.classes_[node.prediction]
                lines.append(f"{indent}-> {label} {node.counts.astype(int).tolist()}")
                return
            name = (
                feature_names[node.feature]
                if feature_names
                else f"feature[{node.feature}]"
            )
            lines.append(f"{indent}{name} <= {node.threshold:.4g}?")
            assert node.left is not None and node.right is not None
            walk(node.left, indent + "  [yes] ")
            walk(node.right, indent + "  [no]  ")

        walk(self.root_, "")
        return "\n".join(lines)

"""Multi-layer perceptron (compared in paper §4.3).

A small one-hidden-layer network trained with full-batch Adam on the
softmax cross-entropy.  The paper judges MLPs "poorly suited for this use
case" because they want far more training data than the ~95-row Credo
dataset offers — Figure 10 shows it trailing the tree ensembles.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_xy

__all__ = ["MLPClassifier"]


class MLPClassifier(ClassifierMixin):
    def __init__(
        self,
        hidden_units: int = 32,
        learning_rate: float = 0.01,
        max_iter: int = 400,
        l2: float = 1e-4,
        random_state: int | None = 0,
    ):
        if hidden_units < 1:
            raise ValueError("hidden_units must be >= 1")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.random_state = random_state

    def fit(self, X, y) -> "MLPClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode(y)
        n, k = X.shape
        c = len(self.classes_)
        h = self.hidden_units
        rng = np.random.default_rng(self.random_state)

        w1 = rng.normal(0, np.sqrt(2.0 / k), size=(k, h))
        b1 = np.zeros(h)
        w2 = rng.normal(0, np.sqrt(2.0 / h), size=(h, c))
        b2 = np.zeros(c)
        onehot = np.zeros((n, c))
        onehot[np.arange(n), encoded] = 1.0

        # Adam state
        params = [w1, b1, w2, b2]
        m_state = [np.zeros_like(p) for p in params]
        v_state = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        for step in range(1, self.max_iter + 1):
            z1 = X @ w1 + b1
            a1 = np.maximum(z1, 0.0)  # ReLU
            logits = a1 @ w2 + b2
            logits -= logits.max(axis=1, keepdims=True)
            p = np.exp(logits)
            p /= p.sum(axis=1, keepdims=True)

            g_logits = (p - onehot) / n
            g_w2 = a1.T @ g_logits + self.l2 * w2
            g_b2 = g_logits.sum(axis=0)
            g_a1 = g_logits @ w2.T
            g_z1 = g_a1 * (z1 > 0)
            g_w1 = X.T @ g_z1 + self.l2 * w1
            g_b1 = g_z1.sum(axis=0)

            for p_, m_, v_, g_ in zip(params, m_state, v_state, [g_w1, g_b1, g_w2, g_b2]):
                m_ *= beta1
                m_ += (1 - beta1) * g_
                v_ *= beta2
                v_ += (1 - beta2) * g_**2
                m_hat = m_ / (1 - beta1**step)
                v_hat = v_ / (1 - beta2**step)
                p_ -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

        self._w1, self._b1, self._w2, self._b2 = w1, b1, w2, b2
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_xy(X)
        a1 = np.maximum(X @ self._w1 + self._b1, 0.0)
        logits = a1 @ self._w2 + self._b2
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self._decode(self.predict_proba(X).argmax(axis=1))

"""Train/test splitting and cross-validation (paper §4.3).

The paper trains "with a train-test split of 60-40", shuffles and draws
"well-balanced samples", and reports "the standard deviation of a
three-fold cross validation as the error bars" (Figure 10).
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

__all__ = ["train_test_split", "KFold", "cross_val_score", "balanced_subsample"]


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.4,
    random_state: int | None = None,
    stratify: bool = True,
):
    """Shuffle-split into train/test (the paper's 60-40 default).

    ``stratify`` keeps the label proportions in both halves — the paper's
    "well-balanced samples".
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have the same length")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    n = len(X)
    if stratify:
        test_idx: list[int] = []
        train_idx: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            cut = int(round(len(members) * test_size))
            cut = min(max(cut, 1 if len(members) > 1 else 0), len(members) - 1) if len(members) > 1 else 0
            test_idx.extend(members[:cut].tolist())
            train_idx.extend(members[cut:].tolist())
        train = np.array(sorted(train_idx))
        test = np.array(sorted(test_idx))
    else:
        order = rng.permutation(n)
        cut = int(round(n * test_size))
        test, train = np.sort(order[:cut]), np.sort(order[cut:])
    return X[train], X[test], y[train], y[test]


class KFold:
    """k-fold splitter with optional shuffling."""

    def __init__(self, n_splits: int = 3, shuffle: bool = True, random_state: int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(indices)
        sizes = np.full(self.n_splits, n // self.n_splits, dtype=np.int64)
        sizes[: n % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(test)
            start += size


def cross_val_score(
    make_model: Callable[[], object],
    X,
    y,
    *,
    cv: int = 3,
    scorer: Callable | None = None,
    random_state: int | None = 0,
) -> np.ndarray:
    """Fit a fresh model per fold and score it (default: binary F1).

    ``make_model`` is a zero-arg factory so every fold trains from
    scratch; returns the per-fold scores (mean/std feed Figure 10's
    error bars).
    """
    from repro.ml.metrics import f1_score

    X = np.asarray(X)
    y = np.asarray(y)
    if scorer is None:
        labels = np.unique(y)
        avg = "binary" if len(labels) <= 2 else "macro"

        def scorer(y_true, y_pred):  # noqa: F811 - intentional default
            return f1_score(y_true, y_pred, average=avg)

    scores = []
    for train, test in KFold(cv, shuffle=True, random_state=random_state).split(X):
        model = make_model()
        model.fit(X[train], y[train])
        scores.append(scorer(y[test], model.predict(X[test])))
    return np.asarray(scores)


def balanced_subsample(
    X, y, n_samples: int, *, random_state: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Draw a label-balanced subsample of ``n_samples`` rows (the Figure 10
    dataset-size sweep draws these)."""
    X = np.asarray(X)
    y = np.asarray(y)
    if n_samples > len(X):
        raise ValueError(f"requested {n_samples} of {len(X)} rows")
    rng = np.random.default_rng(random_state)
    labels = np.unique(y)
    per_label = n_samples // len(labels)
    chosen: list[int] = []
    for label in labels:
        members = np.flatnonzero(y == label)
        rng.shuffle(members)
        chosen.extend(members[: min(per_label, len(members))].tolist())
    # top up from the remainder to hit n_samples exactly
    remaining = np.setdiff1d(np.arange(len(X)), np.array(chosen, dtype=np.int64))
    rng.shuffle(remaining)
    chosen.extend(remaining[: n_samples - len(chosen)].tolist())
    idx = np.array(sorted(chosen[:n_samples]))
    return X[idx], y[idx]

"""Shared estimator plumbing for :mod:`repro.ml`."""

from __future__ import annotations

import numpy as np

__all__ = ["ClassifierMixin", "check_xy", "NotFittedError"]


class NotFittedError(RuntimeError):
    """Predict called before fit."""


def check_xy(X, y=None) -> tuple[np.ndarray, np.ndarray | None]:
    """Coerce inputs to 2-D float / 1-D label arrays and sanity-check."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError("X must be 2-D (n_samples, n_features)")
    if not np.isfinite(X).all():
        raise ValueError("X contains NaN or infinite entries")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError("y must be 1-D")
    if len(y) != len(X):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
    if len(y) == 0:
        raise ValueError("empty training set")
    return X, y


class ClassifierMixin:
    """fit/predict/score surface shared by every classifier here.

    The contract (identical across all implementations):

    * ``fit(X, y)`` trains on ``(n_samples, n_features)`` floats and 1-D
      labels of any hashable type, stores the sorted unique labels on
      ``classes_`` and returns ``self``;
    * ``predict(X)`` returns labels drawn from ``classes_``;
    * ``predict_proba(X)`` returns ``(n_samples, n_classes)`` rows
      summing to 1, columns aligned with ``classes_``;
    * calling predict before fit raises :class:`NotFittedError`.
    """

    classes_: np.ndarray

    def fit(self, X, y) -> "ClassifierMixin":
        """Train on (X, y) and return self (see class contract)."""
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        """Predicted label per row of ``X`` (see class contract)."""
        raise NotImplementedError

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability estimates aligned with ``classes_``."""
        raise NotImplementedError

    def score(self, X, y) -> float:
        """Mean accuracy on (X, y)."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")

    def _encode(self, y: np.ndarray) -> np.ndarray:
        """Store classes_ and return integer-encoded labels."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def _decode(self, idx: np.ndarray) -> np.ndarray:
        return self.classes_[idx]

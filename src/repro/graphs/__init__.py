"""Workload generators for the paper's benchmark suite (Table 1).

The paper evaluates on synthetic N×M random graphs plus real graphs from
the network repository (Kronecker kron-g500 instances, social networks,
web graphs).  The real downloads are unavailable offline, so each gets a
generator producing a graph of the same size and degree shape:

* :func:`synthetic_graph` — the paper's own ``N_nodes_M_edges`` family;
* :func:`kronecker_graph` — R-MAT/Kronecker, matching kron-g500-logn*;
* :func:`social_graph` — heavy-tailed preferential attachment for the
  social/web stand-ins;
* :func:`grid_graph` — 2-D lattice MRFs for the image-correction use case;
* :mod:`repro.graphs.suite` — the Table 1 catalogue with paper-scale and
  scaled-down profiles.
"""

from repro.graphs.synthetic import synthetic_graph, random_edges
from repro.graphs.kronecker import kronecker_graph, rmat_edges
from repro.graphs.social import social_graph, preferential_attachment_edges
from repro.graphs.grids import grid_graph, grid_edges
from repro.graphs.suite import (
    BenchmarkGraph,
    SUITE,
    FIGURE_SUBSET,
    suite_graphs,
    build_graph,
    get_benchmark,
)

__all__ = [
    "synthetic_graph",
    "random_edges",
    "kronecker_graph",
    "rmat_edges",
    "social_graph",
    "preferential_attachment_edges",
    "grid_graph",
    "grid_edges",
    "BenchmarkGraph",
    "SUITE",
    "FIGURE_SUBSET",
    "suite_graphs",
    "build_graph",
    "get_benchmark",
]

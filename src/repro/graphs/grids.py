"""2-D lattice MRFs (the image-correction substrate).

4-connected pixel grids, the classic BP topology for vision workloads
(the paper's third use case and its Grauer-Gray related work).
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential
from repro.graphs.synthetic import random_priors

__all__ = ["grid_edges", "grid_graph"]


def grid_edges(rows: int, cols: int) -> np.ndarray:
    """Undirected 4-neighbourhood edges of a ``rows × cols`` lattice,
    nodes numbered row-major."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.column_stack([ids[:, :-1].reshape(-1), ids[:, 1:].reshape(-1)])
    vertical = np.column_stack([ids[:-1, :].reshape(-1), ids[1:, :].reshape(-1)])
    return np.vstack([horizontal, vertical])


def grid_graph(
    rows: int,
    cols: int,
    *,
    n_states: int = 2,
    seed: int = 0,
    coupling: float = 0.8,
    layout: str = "aos",
) -> BeliefGraph:
    """A lattice belief graph with random priors and an attractive shared
    potential."""
    rng = np.random.default_rng(seed)
    priors = random_priors(rows * cols, n_states, rng)
    return BeliefGraph.from_undirected(
        priors, grid_edges(rows, cols), attractive_potential(n_states, coupling),
        layout=layout, dedupe=False,
    )

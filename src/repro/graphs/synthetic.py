"""Synthetic N-nodes / M-edges random graphs (paper Table 1).

The paper's ``10_nodes_40_edges`` … ``2000000_nodes_8000000_edges``
family: uniform random endpoint pairs with "randomly encode[d] generated
beliefs" (§4).  Self loops are dropped and duplicate undirected pairs
deduplicated, matching the effective edge counts a uniform generator
yields.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential, random_potential

__all__ = ["random_edges", "synthetic_graph", "random_priors"]


def random_edges(n_nodes: int, n_edges: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random endpoint pairs (self loops filtered, so slightly
    fewer than ``n_edges`` rows can come back for tiny graphs)."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    edges = rng.integers(0, n_nodes, size=(n_edges, 2), dtype=np.int64)
    mask = edges[:, 0] != edges[:, 1]
    # redraw loops once; residual loops (rare) are dropped by the graph
    redraw = np.flatnonzero(~mask)
    if len(redraw):
        edges[redraw] = rng.integers(0, n_nodes, size=(len(redraw), 2), dtype=np.int64)
    return edges


def random_priors(
    n_nodes: int, n_states: int, rng: np.random.Generator, *, concentration: float = 1.0
) -> np.ndarray:
    """Dirichlet-random prior beliefs (the paper's "randomly encode[d]
    generated beliefs")."""
    return rng.dirichlet(np.full(n_states, concentration), size=n_nodes).astype(np.float32)


def synthetic_graph(
    n_nodes: int,
    n_edges: int,
    *,
    n_states: int = 2,
    seed: int = 0,
    coupling: float | None = 0.75,
    layout: str = "aos",
) -> BeliefGraph:
    """Build one ``NxM`` synthetic benchmark graph.

    ``coupling`` sets the shared potential's diagonal preference (§2.2
    shared-matrix mode); pass ``None`` for a seeded random potential.
    """
    rng = np.random.default_rng(seed)
    edges = random_edges(n_nodes, n_edges, rng)
    priors = random_priors(n_nodes, n_states, rng)
    if coupling is None:
        potential = random_potential(n_states, rng)
    else:
        potential = attractive_potential(n_states, coupling)
    return BeliefGraph.from_undirected(priors, edges, potential, layout=layout)

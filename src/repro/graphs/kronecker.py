"""Kronecker / R-MAT graph generator (paper Table 1's kron-g500-logn*).

The kron-g500 instances are Graph500 Kronecker graphs: 2^logn nodes with
edges drawn recursively from the seed matrix [[A, B], [C, D]] =
[[0.57, 0.19], [0.19, 0.05]].  The vectorized R-MAT sampler below draws
all edge bits at once (one pass per level, per the vectorize-your-loops
guide), reproducing the heavy-tailed, core-periphery degree structure
that drives the paper's feature analysis (degree imbalance, skew).
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential
from repro.graphs.synthetic import random_priors

__all__ = ["rmat_edges", "kronecker_graph", "GRAPH500_SEED"]

#: Graph500 reference initiator probabilities.
GRAPH500_SEED = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    log2_nodes: int,
    n_edges: int,
    rng: np.random.Generator,
    *,
    seed_matrix: tuple[float, float, float, float] = GRAPH500_SEED,
) -> np.ndarray:
    """Sample ``n_edges`` R-MAT endpoint pairs over ``2**log2_nodes`` ids."""
    if log2_nodes < 1:
        raise ValueError("log2_nodes must be >= 1")
    a, b, c, d = seed_matrix
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError("seed matrix probabilities must sum to 1")
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    # per recursion level choose one quadrant for every edge at once
    p_right = b + d  # probability the dst bit is 1
    p_bottom_given_right = d / p_right if p_right > 0 else 0.0
    p_bottom_given_left = c / (a + c) if (a + c) > 0 else 0.0
    for _level in range(log2_nodes):
        right = rng.random(n_edges) < p_right
        p_bottom = np.where(right, p_bottom_given_right, p_bottom_given_left)
        bottom = rng.random(n_edges) < p_bottom
        src = (src << 1) | bottom.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    return np.column_stack([src, dst])


def kronecker_graph(
    log2_nodes: int,
    n_edges: int,
    *,
    n_states: int = 2,
    seed: int = 0,
    coupling: float = 0.75,
    layout: str = "aos",
) -> BeliefGraph:
    """A kron-g500-style belief graph (``2**log2_nodes`` ids; isolated ids
    remain as unconnected nodes with prior beliefs, as in the MTX files)."""
    rng = np.random.default_rng(seed)
    edges = rmat_edges(log2_nodes, n_edges, rng)
    edges = edges[edges[:, 0] != edges[:, 1]]
    n_nodes = 1 << log2_nodes
    priors = random_priors(n_nodes, n_states, rng)
    return BeliefGraph.from_undirected(
        priors, edges, attractive_potential(n_states, coupling), layout=layout
    )

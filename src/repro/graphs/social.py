"""Heavy-tailed social/web graph stand-ins (paper Table 1).

The paper's real graphs (Gowalla, Google+, Pokec, LiveJournal, Orkut,
Twitter, the web crawls …) come from the network repository and are not
available offline.  Their role in the evaluation is purely structural —
size plus a power-law degree distribution with a dense core — so a
preferential-attachment generator with a tunable mean degree produces
faithful stand-ins.  The generator is vectorized: targets for each batch
of new nodes are drawn from the current repeated-endpoint pool
(Barabási–Albert via the standard repeated-nodes trick).
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.potentials import attractive_potential
from repro.graphs.synthetic import random_priors

__all__ = ["preferential_attachment_edges", "social_graph"]


def preferential_attachment_edges(
    n_nodes: int, edges_per_node: int, rng: np.random.Generator
) -> np.ndarray:
    """Barabási–Albert edge list: each arriving node attaches to
    ``edges_per_node`` existing endpoints sampled ∝ degree."""
    m = max(1, edges_per_node)
    if n_nodes <= m:
        raise ValueError("n_nodes must exceed edges_per_node")
    # endpoint pool: each edge contributes both ends; sampling the pool
    # uniformly is sampling nodes proportionally to degree
    pool = np.zeros(2 * m * n_nodes, dtype=np.int64)
    pool_size = 0
    edges = np.empty((m * (n_nodes - m - 1) + m, 2), dtype=np.int64)
    e = 0
    # seed clique-ish star over the first m+1 nodes
    for v in range(1, m + 1):
        edges[e] = (v, 0)
        pool[pool_size : pool_size + 2] = (v, 0)
        pool_size += 2
        e += 1
    for v in range(m + 1, n_nodes):
        picks = pool[rng.integers(0, pool_size, size=3 * m)]
        targets = np.unique(picks)[:m]
        if len(targets) < m:  # rare on tiny pools: top up uniformly
            extra = rng.integers(0, v, size=m - len(targets))
            targets = np.concatenate([targets, extra])
        for t in targets[:m]:
            edges[e] = (v, t)
            pool[pool_size : pool_size + 2] = (v, t)
            pool_size += 2
            e += 1
    return edges[:e]


def social_graph(
    n_nodes: int,
    n_edges: int,
    *,
    n_states: int = 2,
    seed: int = 0,
    coupling: float = 0.75,
    layout: str = "aos",
) -> BeliefGraph:
    """A social-network stand-in of approximately ``n_edges`` edges."""
    rng = np.random.default_rng(seed)
    per_node = max(1, round(n_edges / max(n_nodes - 1, 1)))
    edges = preferential_attachment_edges(n_nodes, per_node, rng)
    priors = random_priors(n_nodes, n_states, rng)
    return BeliefGraph.from_undirected(
        priors, edges, attractive_potential(n_states, coupling), layout=layout
    )

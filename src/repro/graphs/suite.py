"""The Table 1 benchmark catalogue.

All 34 benchmark graphs of the paper, each tagged with its generator kind:
the synthetic ``NxM`` family is reproduced exactly; the network-repository
graphs (Kronecker, social, web) are generated stand-ins of the same size
and degree shape (see DESIGN.md's substitution table).

Because the full-size suite needs hours and tens of GB on one CPU core,
graphs build through a **profile** that caps sizes while preserving
density (nodes and edges scale together):

* ``paper`` — exact Table 1 sizes;
* ``ci`` — nodes ≤ 2 M, edges ≤ 8 M (default for the benchmark harness);
* ``quick`` — nodes ≤ 200 k, edges ≤ 800 k (default for tests).

Select with ``REPRO_PROFILE`` or the ``profile=`` argument.  Every scaled
build records its scale factor so the harness can annotate results.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.core.graph import BeliefGraph
from repro.graphs.kronecker import rmat_edges
from repro.graphs.social import preferential_attachment_edges
from repro.graphs.synthetic import random_edges

__all__ = [
    "BenchmarkGraph",
    "SUITE",
    "FIGURE_SUBSET",
    "PROFILES",
    "resolve_profile",
    "get_benchmark",
    "build_graph",
    "suite_graphs",
]


@dataclass(frozen=True)
class BenchmarkGraph:
    """One Table 1 row."""

    name: str
    abbrev: str
    kind: str  # "synthetic" | "kronecker" | "social"
    n_nodes: int
    n_edges: int
    description: str

    def scaled(self, max_nodes: int, max_edges: int) -> tuple[int, int, float]:
        """(nodes, edges, factor) after density-preserving capping."""
        factor = min(1.0, max_nodes / self.n_nodes, max_edges / self.n_edges)
        if factor >= 1.0:
            return self.n_nodes, self.n_edges, 1.0
        return (
            max(10, int(self.n_nodes * factor)),
            max(20, int(self.n_edges * factor)),
            factor,
        )


def _syn(n: int, m: int) -> BenchmarkGraph:
    return BenchmarkGraph(
        name=f"{n}_nodes_{m}_edges",
        abbrev=f"{_abbr(n)}x{_abbr(m)}",
        kind="synthetic",
        n_nodes=n,
        n_edges=m,
        description=f"Synthetic {n:,}x{m:,} graph",
    )


def _abbr(x: int) -> str:
    if x >= 1_000_000 and x % 1_000_000 == 0:
        return f"{x // 1_000_000}M"
    if x >= 1_000 and x % 1_000 == 0:
        return f"{x // 1_000}k"
    return str(x)


# Table 1, left + right columns (AVG is derived, not a graph).
SUITE: dict[str, BenchmarkGraph] = {
    g.abbrev: g
    for g in [
        _syn(10, 40),
        _syn(100, 400),
        _syn(1_000, 4_000),
        _syn(10_000, 40_000),
        _syn(100_000, 400_000),
        _syn(200_000, 800_000),
        _syn(400_000, 1_600_000),
        _syn(600_000, 1_200_000),
        _syn(800_000, 3_200_000),
        _syn(1_000_000, 4_000_000),
        _syn(2_000_000, 8_000_000),
        BenchmarkGraph("kron-g500-logn16", "K16", "kronecker", 55_321, 2_456_398, "Kronecker generator"),
        BenchmarkGraph("kron-g500-logn17", "K17", "kronecker", 131_071, 5_114_375, "Kronecker generator"),
        BenchmarkGraph("kron-g500-logn18", "K18", "kronecker", 262_144, 10_583_222, "Kronecker generator"),
        BenchmarkGraph("kron-g500-logn19", "K19", "kronecker", 409_175, 21_781_478, "Kronecker generator"),
        BenchmarkGraph("kron-g500-logn20", "K20", "kronecker", 795_241, 44_620_272, "Kronecker generator"),
        BenchmarkGraph("kron-g500-logn21", "K21", "kronecker", 1_544_087, 91_042_010, "Kronecker generator"),
        BenchmarkGraph("hollywood-2009", "HO", "social", 83_832, 549_038, "Hollywood actor network"),
        BenchmarkGraph("loc-gowalla", "GO", "social", 196_591, 1_900_654, "Gowalla location-based social network"),
        BenchmarkGraph("soc-google-plus", "GP", "social", 211_187, 1_506_896, "Google+ social network"),
        BenchmarkGraph("web-Stanford", "ST", "social", 281_903, 2_312_497, "Web graph of stanford.edu"),
        BenchmarkGraph("soc-twitter-follows-mun", "TF", "social", 465_017, 835_423, "Twitter followers graph"),
        BenchmarkGraph("web-it-2004", "IT", "social", 509_338, 7_178_413, "IT network graph"),
        BenchmarkGraph("soc-delicious", "DE", "social", 536_108, 1_365_961, "Delicious social network"),
        BenchmarkGraph("com-youtube", "YO", "social", 1_134_890, 2_987_624, "Friendship network on YouTube"),
        BenchmarkGraph("soc-pokec-relationships", "PO", "social", 1_632_803, 30_622_564, "Pokec social network graph"),
        BenchmarkGraph("web-wiki-ch-internal", "WW", "social", 1_930_275, 9_359_108, "Web graph of Chinese Wikipedia"),
        BenchmarkGraph("wiki-Talk", "WT", "social", 2_394_385, 5_021_410, "Communication network of English Wikipedia"),
        BenchmarkGraph("soc-orkut", "OR", "social", 2_997_166, 106_349_209, "Orkut social network"),
        BenchmarkGraph("wikipedia-link-en", "WL", "social", 3_371_716, 31_956_268, "Wikipedia English internal links"),
        BenchmarkGraph("soc-LiveJournal1", "LJ", "social", 4_846_609, 68_475_391, "LiveJournal social network"),
        BenchmarkGraph("tech-p2p", "TP", "social", 5_792_297, 8_105_822, "eDonkey p2p network"),
        BenchmarkGraph("friendster", "FR", "social", 8_658_744, 55_170_227, "Friendster social network"),
        BenchmarkGraph("soc-twitter-2010", "TW", "social", 21_297_772, 265_025_809, "Twitter social network"),
    ]
}

#: the bold Table 1 rows the paper renders figures for (binary use case);
#: the exact bolding is not recoverable from the text, so we take the
#: graphs the running text names plus a size-representative cross-section
FIGURE_SUBSET = (
    "10x40",
    "1kx4k",
    "100kx400k",
    "GO",
    "K17",
    "600kx1200k",
    "YO",
    "PO",
    "2Mx8M",
    "K21",
    "LJ",
)

PROFILES: dict[str, tuple[int, int]] = {
    "paper": (10**12, 10**12),
    "ci": (2_000_000, 8_000_000),
    "quick": (200_000, 800_000),
    "smoke": (20_000, 80_000),
    # tiny builds for convergence probes (repro.credo.analytic)
    "probe": (5_000, 20_000),
}


def resolve_profile(profile: str | None = None) -> tuple[str, int, int]:
    """(name, max_nodes, max_edges) from the argument or REPRO_PROFILE."""
    name = profile or os.environ.get("REPRO_PROFILE", "quick")
    try:
        max_nodes, max_edges = PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown profile {name!r}; known: {sorted(PROFILES)}") from None
    return name, max_nodes, max_edges


def get_benchmark(abbrev: str) -> BenchmarkGraph:
    """Look a Table 1 row up by abbreviation (e.g. \"K21\")."""
    try:
        return SUITE[abbrev]
    except KeyError:
        raise KeyError(f"unknown benchmark {abbrev!r}; known: {sorted(SUITE)}") from None


def build_graph(
    bench: BenchmarkGraph | str,
    use_case: str = "binary",
    *,
    profile: str | None = None,
    seed: int = 0,
    layout: str = "aos",
) -> tuple[BeliefGraph, float]:
    """Materialize one benchmark graph under a use case.

    Returns ``(graph, scale_factor)`` — the factor is 1.0 when the profile
    admitted the paper-scale sizes.
    """
    from repro.usecases import USE_CASES  # deferred: avoids a module cycle

    if isinstance(bench, str):
        bench = get_benchmark(bench)
    if use_case not in USE_CASES:
        raise KeyError(f"unknown use case {use_case!r}; known: {sorted(USE_CASES)}")
    _, max_nodes, max_edges = resolve_profile(profile)
    n, m, factor = bench.scaled(max_nodes, max_edges)
    rng = np.random.default_rng(seed)

    if bench.kind == "synthetic":
        edges = random_edges(n, m, rng)
    elif bench.kind == "kronecker":
        log2 = max(4, math.ceil(math.log2(max(n, 16))))
        edges = rmat_edges(log2, m, rng)
        edges = edges[edges[:, 0] != edges[:, 1]]
        n = 1 << log2
    elif bench.kind == "social":
        per_node = max(1, round(m / max(n - 1, 1)))
        edges = preferential_attachment_edges(n, per_node, rng)
    else:
        raise ValueError(f"unknown benchmark kind {bench.kind!r}")

    priors, potential = _use_case_overlay(use_case, rng, n)
    graph = BeliefGraph.from_undirected(priors, edges, potential, layout=layout)
    return graph, factor


def _use_case_overlay(use_case: str, rng: np.random.Generator, n: int):
    from repro.usecases.binary import binary_use_case
    from repro.usecases.image import image_use_case
    from repro.usecases.virus import virus_use_case

    if use_case == "binary":
        return binary_use_case(rng, n)
    if use_case == "virus":
        return virus_use_case(rng, n)
    return image_use_case(rng, n)


def suite_graphs(
    *,
    use_cases: tuple[str, ...] = ("binary", "virus", "image"),
    subset: tuple[str, ...] | None = None,
    profile: str | None = None,
    seed: int = 0,
):
    """Yield ``(bench, use_case, graph, scale_factor)`` over the catalogue —
    the full 34 × 3 = 102-variant sweep by default (the paper's "total of
    132 graphs" counts further belief-encoding permutations)."""
    names = subset if subset is not None else tuple(SUITE)
    for abbrev in names:
        bench = get_benchmark(abbrev)
        for use_case in use_cases:
            graph, factor = build_graph(bench, use_case, profile=profile, seed=seed)
            yield bench, use_case, graph, factor

"""Credo: the end-to-end system (paper §3.1, §3.7).

"Based on a given input graph and its metadata, Credo chooses the best
from these implementations before executing BP with that method."

* :mod:`repro.credo.features` — the five-feature metadata vector;
* :mod:`repro.credo.rules` — the size heuristic (< 1 k nodes → C Edge,
  ≥ 100 k → CUDA Node) that covers 80 % of the benchmarks;
* :mod:`repro.credo.selector` — rule + random-forest dispatch;
* :mod:`repro.credo.training` — builds the labelled dataset by
  benchmarking the suite on a device;
* :mod:`repro.credo.runner` — the :class:`~repro.credo.runner.Credo`
  facade (parse → featurize → select → run).
"""

from repro.credo.features import FEATURE_NAMES, extract_features, feature_matrix
from repro.credo.rules import rule_select, SMALL_GRAPH_NODES, LARGE_GRAPH_NODES
from repro.credo.selector import CredoSelector
from repro.credo.training import build_training_set, TrainingRow
from repro.credo.runner import Credo, ExecutionPlan

__all__ = [
    "ExecutionPlan",
    "FEATURE_NAMES",
    "extract_features",
    "feature_matrix",
    "rule_select",
    "SMALL_GRAPH_NODES",
    "LARGE_GRAPH_NODES",
    "CredoSelector",
    "build_training_set",
    "TrainingRow",
    "Credo",
]

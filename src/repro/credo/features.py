"""Metadata feature extraction (paper §3.7, Figure 4).

"Our feature vector consists of the *number of nodes*, the *nodes to
edges ratio*, the *number of beliefs*, the *degree imbalance* (the ratio
of the max in-degree to the max out-degree) and the *skew* (the ratio of
average in-degree to max in-degree)."

Degrees are computed over the graph's **canonical directed edges** (each
undirected MRF edge counted once, in its input orientation) — that is the
form the metadata is available in "during input parsing", before the
bidirectional expansion.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.telemetry import get_tracer

__all__ = [
    "FEATURE_NAMES",
    "PARTITION_FEATURE_NAMES",
    "SCHEDULE_FEATURE_NAMES",
    "extract_features",
    "extract_partition_features",
    "extract_schedule_features",
    "feature_matrix",
]

FEATURE_NAMES = (
    "n_nodes",
    "nodes_to_edges",
    "n_beliefs",
    "degree_imbalance",
    "skew",
)

#: extra features informing the *schedule* choice (backend×schedule
#: decision space); kept separate so the §3.7 five-feature classifier
#: contract is untouched
SCHEDULE_FEATURE_NAMES = FEATURE_NAMES + (
    "degree_cv",
    "hub_mass",
)

#: features informing the *sharding* decision (DESIGN.md §9): how much
#: boundary traffic and straggler imbalance a given split would cost
PARTITION_FEATURE_NAMES = (
    "cut_fraction",
    "shard_balance",
)


def _canonical_degrees(graph: BeliefGraph) -> tuple[np.ndarray, np.ndarray]:
    """In/out degrees over one orientation per undirected edge."""
    canonical = (graph.reverse_edge == -1) | (
        np.arange(graph.n_edges) < graph.reverse_edge
    )
    src = graph.src[canonical]
    dst = graph.dst[canonical]
    out_deg = np.bincount(src, minlength=graph.n_nodes)
    in_deg = np.bincount(dst, minlength=graph.n_nodes)
    return in_deg, out_deg


def _cache(graph: BeliefGraph) -> dict:
    """The graph's memoization dict (older pickles may lack the slot)."""
    cache = getattr(graph, "_feature_cache", None)
    if cache is None:
        cache = graph._feature_cache = {}
    return cache


def extract_features(graph: BeliefGraph) -> np.ndarray:
    """The five-feature vector of §3.7 for one graph.

    Features depend only on the graph *structure* (never on beliefs or
    evidence), so they are memoized on the graph object — and shared by
    :meth:`~repro.core.graph.BeliefGraph.copy` clones — making repeated
    selection (the serving hot path) O(1) after the first call.  A
    structural in-place mutation must call
    :meth:`~repro.core.graph.BeliefGraph.invalidate_metadata_cache`.
    """
    cache = _cache(graph)
    cached = cache.get("base")
    if cached is not None:
        return cached.copy()
    # spanned only on the cache-miss path: repeated selection is O(1)
    # and should not clutter the trace
    with get_tracer().span("credo.features", cat="credo") as sp:
        in_deg, out_deg = _canonical_degrees(graph)
        n = graph.n_nodes
        m = int(in_deg.sum())  # canonical (undirected) edge count
        max_in = float(in_deg.max(initial=0))
        max_out = float(out_deg.max(initial=0))
        avg_in = float(in_deg.mean()) if n else 0.0
        feats = np.array(
            [
                float(n),
                n / m if m else 0.0,
                float(graph.n_states),
                max_in / max_out if max_out > 0 else 0.0,
                avg_in / max_in if max_in > 0 else 0.0,
            ],
            dtype=np.float64,
        )
        if sp:
            sp.set(n_nodes=n, n_edges=graph.n_edges)
    cache["base"] = feats
    return feats.copy()


def extract_schedule_features(graph: BeliefGraph) -> np.ndarray:
    """The five §3.7 features plus scheduling-relevant skew measures.

    * ``degree_cv`` — coefficient of variation of the in-degrees; uniform
      grids sit near 0, power-law graphs well above 1.  High variance
      means residual propagation is unbalanced and priority scheduling
      can focus work on the slow hubs.
    * ``hub_mass`` — fraction of edges incident to the top-1 % highest
      degree nodes; measures how much of the convergence tail a priority
      schedule can target.
    """
    cache = _cache(graph)
    cached = cache.get("schedule")
    if cached is not None:
        return cached.copy()
    base = extract_features(graph)
    in_deg, out_deg = _canonical_degrees(graph)
    degree = in_deg + out_deg  # total degree: undirected incidences
    total = int(degree.sum())  # = 2 × canonical edge count
    avg = float(degree.mean()) if graph.n_nodes else 0.0
    std = float(degree.std()) if graph.n_nodes else 0.0
    cv = std / avg if avg > 0 else 0.0
    if total and graph.n_nodes:
        top = max(1, graph.n_nodes // 100)
        hub_mass = float(np.sort(degree)[-top:].sum()) / total
    else:
        hub_mass = 0.0
    feats = np.concatenate([base, [cv, hub_mass]])
    cache["schedule"] = feats
    return feats.copy()


def extract_partition_features(
    graph: BeliefGraph, n_shards: int, method: str = "bfs"
) -> np.ndarray:
    """``(cut_fraction, shard_balance)`` of splitting ``graph`` ``n_shards``
    ways with ``method`` — what a sharding decision trades off: boundary
    traffic per round vs the straggler factor at the barrier.

    Partitions are structural (never belief-dependent), so the measured
    pair is memoized on the graph alongside the §3.7 features and shared
    by :meth:`~repro.core.graph.BeliefGraph.copy` clones.
    """
    from repro.partition import make_partition, normalize_partitioner

    method = normalize_partitioner(method)
    cache = _cache(graph)
    key = f"partition:{method}:{int(n_shards)}"
    cached = cache.get(key)
    if cached is not None:
        return cached.copy()
    part = make_partition(graph, n_shards, method)
    feats = np.array([part.cut_fraction, part.balance], dtype=np.float64)
    cache[key] = feats
    return feats.copy()


def feature_matrix(graphs) -> np.ndarray:
    """Stack :func:`extract_features` over an iterable of graphs."""
    return np.array([extract_features(g) for g in graphs])

"""Persisting trained selectors.

A production deployment trains the selector once per device (minutes of
benchmarking, §4.3) and ships the fitted model; these helpers serialize
a :class:`~repro.credo.selector.CredoSelector`'s random forest to a
plain-JSON document — no pickle, so the artifact is portable, diffable
and safe to load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.credo.selector import CredoSelector
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, TreeNode

__all__ = ["save_selector", "load_selector"]

_FORMAT_VERSION = 1


def _node_to_dict(node: TreeNode) -> dict:
    out = {
        "feature": node.feature,
        "threshold": node.threshold,
        "counts": node.counts.tolist(),
    }
    if not node.is_leaf:
        assert node.left is not None and node.right is not None
        out["left"] = _node_to_dict(node.left)
        out["right"] = _node_to_dict(node.right)
    return out


def _node_from_dict(data: dict) -> TreeNode:
    node = TreeNode(
        feature=int(data["feature"]),
        threshold=float(data["threshold"]),
        left=None,
        right=None,
        counts=np.asarray(data["counts"], dtype=np.float64),
    )
    if "left" in data:
        node.left = _node_from_dict(data["left"])
        node.right = _node_from_dict(data["right"])
    return node


def _tree_to_dict(tree: DecisionTreeClassifier) -> dict:
    return {
        "classes": tree.classes_.tolist(),
        "n_features": tree.n_features_,
        "importances": tree.feature_importances_.tolist(),
        "root": _node_to_dict(tree.root_),
    }


def _tree_from_dict(data: dict) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier()
    tree.classes_ = np.asarray(data["classes"])
    tree.n_features_ = int(data["n_features"])
    tree.feature_importances_ = np.asarray(data["importances"], dtype=np.float64)
    tree.root_ = _node_from_dict(data["root"])
    return tree


def save_selector(selector: CredoSelector, path: str | Path) -> None:
    """Serialize a fitted selector (random-forest classifiers only)."""
    forest = selector.classifier
    if not isinstance(forest, RandomForestClassifier):
        raise TypeError("only RandomForestClassifier-backed selectors serialize")
    if not selector._fitted:
        raise ValueError("selector is not fitted")
    doc = {
        "format_version": _FORMAT_VERSION,
        "classes": forest.classes_.tolist(),
        "n_estimators": forest.n_estimators,
        "feature_importances": forest.feature_importances_.tolist(),
        "trees": [_tree_to_dict(t) for t in forest.estimators_],
        "tree_class_maps": [m.tolist() for m in forest._tree_class_maps],
    }
    Path(path).write_text(json.dumps(doc), encoding="utf-8")


def load_selector(path: str | Path) -> CredoSelector:
    """Reconstruct a fitted selector saved by :func:`save_selector`."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported selector format version {version!r}")
    forest = RandomForestClassifier(n_estimators=int(doc["n_estimators"]))
    forest.classes_ = np.asarray(doc["classes"])
    forest.estimators_ = [_tree_from_dict(t) for t in doc["trees"]]
    forest._tree_class_maps = [
        np.asarray(m, dtype=int) for m in doc["tree_class_maps"]
    ]
    forest.feature_importances_ = np.asarray(
        doc["feature_importances"], dtype=np.float64
    )
    selector = CredoSelector(classifier=forest)
    selector._fitted = True
    return selector

"""The Credo facade (paper §3.1).

``Credo`` wires the whole pipeline together: load the graph (any
supported format), extract metadata features, select the implementation
(rule + classifier) and execute BP with it.  "With all of the
optimizations discussed herein enabled, these implementations enable us
to run more efficiently and outperform previous efforts."
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.backends.base import Backend, RunResult
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.credo.selector import CredoSelector
from repro.credo.training import build_training_set
from repro.gpusim.arch import DeviceSpec, get_device
from repro.io.detect import load_graph
from repro.telemetry import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.config import ServerConfig

__all__ = ["Credo", "ExecutionPlan", "parse_qualified"]

#: the full qualified-spec grammar, mirroring the RPR302/RPR305 lint
#: validators: ``<backend>[:<schedule>][@<K>x<method>[+<policy>[~<k>]]]
#: [!<executor>][%<layout>]`` — exactly what ``ExecutionPlan.qualified``
#: renders, so plans round-trip through their string spelling
_QUALIFIED_RE = re.compile(
    r"^(?P<backend>[a-z][a-z0-9_-]*)"
    r"(?::(?P<schedule>[a-z][a-z0-9_-]*))?"
    r"(?:@(?P<shards>\d+)x(?P<partitioner>[a-z][a-z0-9_-]*)"
    r"(?:\+(?P<policy>[a-z][a-z0-9_-]*)(?:~(?P<staleness>\d+))?)?)?"
    r"(?:!(?P<executor>[a-z][a-z0-9_-]*))?"
    r"(?:%(?P<layout>[a-z][a-z0-9_-]*))?$"
)


def parse_qualified(name: str, *, strict: bool = False) -> dict:
    """Split a qualified backend spec into its plan fields.

    Returns a dict holding only the groups present in ``name``
    (``backend`` always; ``schedule``/``shards``/``partitioner``/
    ``policy``/``staleness``/``executor``/``layout`` when spelled).
    Specs outside the grammar fall back to the historical
    ``"<name>:<qualifier>"`` split so unknown names still surface their
    errors at the backend/schedule registries — unless ``strict`` is
    set, in which case they raise :class:`ValueError` instead (this is
    what the linter's config rules use to validate spellings without
    duplicating the grammar).
    """
    match = _QUALIFIED_RE.match(name)
    if match is None:
        if strict:
            raise ValueError(
                f"{name!r} does not match the qualified-spec grammar "
                "<backend>[:<sched>][@Kx<METHOD>[+<POLICY>[~<K>]]]"
                "[!<EXECUTOR>][%<LAYOUT>]"
            )
        base, _, qualifier = name.partition(":")
        return {"backend": base, **({"schedule": qualifier} if qualifier else {})}
    spec = {k: v for k, v in match.groupdict().items() if v is not None}
    if "shards" in spec:
        spec["shards"] = int(spec["shards"])
    if "staleness" in spec:
        spec["staleness"] = int(spec["staleness"])
    return spec


@dataclass(frozen=True)
class ExecutionPlan:
    """A selector decision frozen for reuse across requests.

    The serving layer amortizes Credo's backend + schedule choice per
    *registered graph* instead of per query: :meth:`Credo.plan` runs the
    selection once and every subsequent :meth:`Credo.run` with ``plan=``
    skips feature extraction and classification entirely.

    ``shards > 1`` freezes a sharded execution: the graph is split by
    ``partitioner`` and swept shard-parallel (DESIGN.md §9) on the
    platform the selected backend implies.  ``policy`` picks the shard
    execution policy (DESIGN.md §12): ``"sync"`` for bit-exact lockstep
    rounds, ``"async"`` for stale-synchronous ticks that consume halo
    snapshots up to ``staleness`` rounds old.

    ``executor`` freezes *how* sweeps run (DESIGN.md §13): interpreted
    per-call kernel dispatch or the compiled fused programs — bit-exact
    either way, so this axis is pure cost.  ``layout`` freezes the
    belief-store arrangement the plan's runs convert the graph to; the
    selector fills it from the plan-time layout autotuner.
    """

    backend: str
    schedule: str
    shards: int = 1
    partitioner: str | None = None
    policy: str = "sync"
    staleness: int = 0
    executor: str = "interpreted"
    layout: str = "aos"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.staleness < 0:
            raise ValueError("staleness must be non-negative")
        if self.policy == "sync" and self.staleness:
            raise ValueError(
                "the sync policy is staleness-free; use policy='async'"
            )
        from repro.kernels.executor import normalize_executor
        from repro.kernels.layout import normalize_layout

        object.__setattr__(self, "executor", normalize_executor(self.executor))
        object.__setattr__(self, "layout", normalize_layout(self.layout))

    @property
    def paradigm(self) -> str:
        """``"node"`` or ``"edge"``, from the backend name.  Backends
        whose names carry no paradigm suffix (``cuda-multi``,
        ``sharded``, ``reference``, …) sweep per node."""
        tail = self.backend.rsplit("-", 1)[-1]
        return tail if tail in ("node", "edge") else "node"

    @property
    def sharded(self) -> bool:
        return self.shards > 1

    @property
    def qualified(self) -> str:
        """The ``"<backend>:<schedule>"`` registry-style name; sharded
        plans carry an ``@<shards>x<partitioner>`` suffix, async ones a
        further ``+<policy>~<staleness>``.  Non-default executor and
        layout append ``!<executor>`` and ``%<layout>`` respectively, so
        default plans keep their historical spelling."""
        base = f"{self.backend}:{self.schedule}"
        if self.sharded:
            base = f"{base}@{self.shards}x{self.partitioner or 'bfs'}"
            if self.policy != "sync":
                base = f"{base}+{self.policy}~{self.staleness}"
        if self.executor != "interpreted":
            base = f"{base}!{self.executor}"
        if self.layout != "aos":
            base = f"{base}%{self.layout}"
        return base


class Credo:
    """Automatic-best-implementation belief propagation.

    >>> credo = Credo(device="gtx1070")
    >>> credo.train(profile="smoke")          # benchmark + fit selector
    >>> result = credo.run(graph)             # doctest: +SKIP
    >>> result.backend                        # doctest: +SKIP
    'cuda-node'
    """

    def __init__(
        self,
        device: DeviceSpec | str = "gtx1070",
        *,
        selector: CredoSelector | None = None,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
    ):
        """``schedule`` pins a scheduling policy for every run; ``None``
        lets the selector pick per graph.  ``work_queue`` is the
        deprecated boolean (True → ``"work_queue"``, False → ``"sync"``)
        and is forwarded to the backend, which warns through
        :class:`~repro.core.loopy.LoopyConfig`."""
        self.device = get_device(device)
        self.selector = selector or CredoSelector()
        self.criterion = criterion or ConvergenceCriterion()
        self.schedule = schedule
        self.work_queue = work_queue
        self._backends: dict[str, Backend] = {
            "c-node": CNodeBackend(),
            "c-edge": CEdgeBackend(),
            "cuda-node": CudaNodeBackend(self.device),
            "cuda-edge": CudaEdgeBackend(self.device),
        }
        # shard-parallel engines, built lazily per (backend, shards,
        # partitioner) the first time a sharded plan executes
        self._sharded: dict[tuple, Backend] = {}

    @classmethod
    def from_server_config(cls, config: "ServerConfig") -> "Credo":
        """Build a runner wired the way a :class:`repro.serve` server
        wants it: the config's device, convergence criterion and (when
        pinned) backend-independent schedule."""
        return cls(
            device=config.device,
            criterion=config.criterion(),
            schedule=config.schedule,
        )

    # ------------------------------------------------------------------
    def train(
        self,
        *,
        profile: str | None = None,
        subset: tuple[str, ...] | None = None,
        use_cases: tuple[str, ...] = ("binary", "virus", "image"),
        seed: int = 0,
        verbose: bool = False,
    ) -> "Credo":
        """Benchmark the suite on this device and fit the selector."""
        rows = build_training_set(
            self.device,
            use_cases=use_cases,
            subset=subset,
            profile=profile,
            seed=seed,
            verbose=verbose,
        )
        self.selector.fit(rows)
        return self

    def train_paper_scale(
        self,
        *,
        subset: tuple[str, ...] | None = None,
        use_cases: tuple[str, ...] = ("binary", "virus", "image"),
        seed: int = 0,
        verbose: bool = False,
    ) -> "Credo":
        """Fit the selector on the Table 1-scale analytic dataset.

        Cheaper per variant than :meth:`train` (one small probe run each)
        and labelled at the paper's real graph sizes — the configuration
        the §4.3 experiments use.
        """
        from repro.credo.training import build_training_set_paper_scale

        rows = build_training_set_paper_scale(
            self.device,
            use_cases=use_cases,
            subset=subset,
            seed=seed,
            verbose=verbose,
        )
        self.selector.fit(rows)
        return self

    # ------------------------------------------------------------------
    def select(self, graph: BeliefGraph) -> str:
        """The backend Credo would choose for ``graph``."""
        with get_tracer().span("credo.select", cat="credo") as sp:
            choice = self.selector.select(graph)
            if sp:
                sp.set(backend=choice, n_nodes=graph.n_nodes,
                       n_edges=graph.n_edges,
                       fitted=self.selector._fitted)
        return choice

    def select_schedule(self, graph: BeliefGraph, backend: str | None = None) -> str:
        """The scheduling policy Credo would choose for ``graph``."""
        if self.schedule is not None:
            return self.schedule
        return self.selector.select_schedule(graph, backend or self.select(graph))

    def plan(
        self,
        graph: BeliefGraph,
        *,
        backend: str | None = None,
        shards: int | None = None,
        partitioner: str | None = None,
        policy: str | None = None,
        staleness: int | None = None,
        executor: str | None = None,
        layout: str | None = None,
    ) -> ExecutionPlan:
        """Run selection once and freeze the decision for reuse.

        The returned :class:`ExecutionPlan` can be passed to :meth:`run`
        (any number of times, e.g. once per served query) to skip
        re-selection; ``backend=`` pins the backend and only the schedule
        is chosen.  It accepts the full qualified grammar
        (:attr:`ExecutionPlan.qualified`), so a plan's string spelling
        round-trips back into an equivalent plan.  ``shards=`` pins the shard count (1 disables);
        ``None`` asks the selector, which only shards very large graphs
        (:data:`~repro.credo.selector.SHARD_AUTO_MIN_EDGES`).
        ``policy=``/``staleness=`` pin the shard execution policy; left
        ``None``, the selector picks async staleness on heavy-tailed
        graphs and bit-exact sync everywhere else.  ``executor=`` pins
        the sweep executor; left ``None``, the selector sizes the
        compiled lowering cost against the graph.  ``layout=`` pins the
        belief layout, ``"auto"`` runs the plan-time layout autotuner,
        and ``None`` keeps the graph's current layout.
        """
        with get_tracer().span("credo.plan", cat="credo") as sp:
            spec = parse_qualified(backend or self.select(graph))
            base_name = spec["backend"]
            schedule = spec.get("schedule") or self.select_schedule(graph, base_name)
            # suffix-spelled fields fill in wherever no kwarg pinned them
            if shards is None:
                shards = spec.get("shards")
            if partitioner is None:
                partitioner = spec.get("partitioner")
            if policy is None:
                policy = spec.get("policy")
            if staleness is None:
                staleness = spec.get("staleness")
            if executor is None:
                executor = spec.get("executor")
            if layout is None:
                layout = spec.get("layout")
            if shards is None:
                shards = self.selector.select_sharding(graph)
            if shards > 1 and not graph.uniform:
                raise ValueError("sharded execution requires a uniform graph")
            if shards > 1:
                if policy is None and staleness is None:
                    policy, staleness = self.selector.select_shard_policy(
                        graph, shards
                    )
                elif policy is None:
                    policy = "async" if staleness else "sync"
                elif staleness is None:
                    staleness = 1 if policy == "async" else 0
            else:
                policy, staleness = "sync", 0
            if executor is None or executor == "auto":
                executor = self.selector.select_executor(graph, base_name)
            if layout is None:
                layout = graph.layout
            elif layout == "auto":
                layout = self.selector.select_layout(graph)
            if sp:
                sp.set(backend=base_name, schedule=schedule, shards=shards,
                       policy=policy, staleness=staleness,
                       executor=executor, layout=layout)
        return ExecutionPlan(
            backend=base_name,
            schedule=schedule,
            shards=shards,
            partitioner=(partitioner or "bfs") if shards > 1 else partitioner,
            policy=policy,
            staleness=staleness,
            executor=executor,
            layout=layout,
        )

    def _sharded_backend(self, plan: ExecutionPlan) -> Backend:
        """The shard-parallel engine a sharded plan executes on, cached.

        The platform follows the selected backend: CUDA selections run
        one simulated device per shard (:class:`MultiGpuBackend`), CPU
        selections a thread-pool :class:`ShardedCpuBackend`.
        """
        key = (plan.backend, plan.shards, plan.partitioner,
               plan.policy, plan.staleness)
        engine = self._sharded.get(key)
        if engine is None:
            from repro.backends.multigpu import MultiGpuBackend
            from repro.backends.sharded import ShardedCpuBackend

            partitioner = plan.partitioner or "bfs"
            if plan.backend.startswith("cuda"):
                engine = MultiGpuBackend(
                    self.device,
                    n_devices=plan.shards,
                    partitioner=partitioner,
                    paradigm=plan.paradigm,
                    policy=plan.policy,
                    staleness=plan.staleness,
                )
            else:
                engine = ShardedCpuBackend(
                    n_shards=plan.shards,
                    partitioner=partitioner,
                    paradigm=plan.paradigm,
                    policy=plan.policy,
                    staleness=plan.staleness,
                )
            self._sharded[key] = engine
        return engine

    def _layout_target(self, graph: BeliefGraph, layout: str | None) -> BeliefGraph:
        """The graph a run executes on: converted when the plan's layout
        differs, ``graph`` itself otherwise (zero cost)."""
        if layout is None or layout == graph.layout:
            return graph
        from repro.kernels.layout import with_layout

        return with_layout(graph, layout)

    @staticmethod
    def _writeback(graph: BeliefGraph, target: BeliefGraph, result: RunResult) -> None:
        """Mirror a converted run's posteriors into the caller's graph so
        the in-place-update contract holds across layout conversion."""
        if target is not graph:
            graph.beliefs.load_dense(result.beliefs)
            result.detail["layout"] = target.layout

    def run(
        self,
        graph: BeliefGraph,
        *,
        backend: str | None = None,
        schedule: str | None = None,
        plan: ExecutionPlan | None = None,
        shards: int | None = None,
        partitioner: str | None = None,
        policy: str | None = None,
        staleness: int | None = None,
        executor: str | None = None,
        layout: str | None = None,
    ) -> RunResult:
        """Select (or honour ``backend=``/``schedule=``/``plan=``) and
        execute BP.

        ``backend`` accepts the full qualified grammar a plan renders
        (``"c-node:residual"``, ``"c-edge:sync!compiled%soa"``,
        ``"sharded:sync@4xbfs+async~2"`` — see
        :attr:`ExecutionPlan.qualified`); suffix-spelled fields win
        unless the matching keyword argument is given explicitly.
        ``plan`` short-circuits selection entirely (amortized serving
        path); it is mutually exclusive with the other two.
        ``shards``/``partitioner``/``policy``/``staleness`` request
        shard-parallel execution (equivalent to planning with the same
        values).  ``executor=`` pins the sweep executor — ``"auto"``
        asks the selector, ``None`` keeps the interpreted default (plans
        carry their own recorded choice); ``layout=`` converts the
        graph's belief storage for the run (``"auto"`` invokes the
        plan-time autotuner), with posteriors written back to the
        caller's graph either way.
        """
        if plan is not None:
            if backend is not None or schedule is not None or shards is not None:
                raise ValueError(
                    "plan= is mutually exclusive with backend=/schedule=/shards="
                )
        else:
            if backend is not None:
                spec = parse_qualified(backend)
                backend = spec["backend"]
                if spec.get("schedule"):
                    backend = f"{backend}:{spec['schedule']}"
                if shards is None:
                    shards = spec.get("shards")
                if partitioner is None:
                    partitioner = spec.get("partitioner")
                if policy is None:
                    policy = spec.get("policy")
                if staleness is None:
                    staleness = spec.get("staleness")
                if executor is None:
                    executor = spec.get("executor")
                if layout is None:
                    layout = spec.get("layout")
            if shards is not None and shards > 1:
                plan = self.plan(graph, backend=backend, shards=shards,
                                 partitioner=partitioner, policy=policy,
                                 staleness=staleness, executor=executor,
                                 layout=layout)
        if plan is not None:
            target = self._layout_target(graph, plan.layout)
            if plan.sharded:
                engine = self._sharded_backend(plan)
                result = engine.run(
                    target, criterion=self.criterion, schedule=plan.schedule,
                    executor=plan.executor,
                )
                result.detail["selected"] = plan.backend
                self._writeback(graph, target, result)
                return result
            backend, schedule = plan.backend, plan.schedule
            executor = plan.executor
        else:
            if layout == "auto":
                layout = self.selector.select_layout(graph)
            target = self._layout_target(graph, layout)
        name = backend or self.select(target)
        base_name, _, qualifier = name.partition(":")
        try:
            engine = self._backends[base_name]
        except KeyError:
            raise KeyError(
                f"unknown backend {base_name!r}; Credo dispatches "
                f"{sorted(self._backends)}"
            ) from None
        if executor == "auto":
            executor = self.selector.select_executor(target, base_name)
        if self.work_queue is not None and schedule is None and not qualifier:
            # legacy boolean flows to the backend, which warns via LoopyConfig
            result = engine.run(
                target, criterion=self.criterion, work_queue=self.work_queue,
                executor=executor,
            )
        else:
            chosen = schedule or qualifier or self.select_schedule(target, base_name)
            result = engine.run(
                target, criterion=self.criterion, schedule=chosen,
                executor=executor,
            )
        result.detail["selected"] = base_name
        self._writeback(graph, target, result)
        return result

    def select_file(self, node_path: str | Path, edge_path: str | Path) -> str:
        """Pick the backend for an MTX dual-file graph from its metadata
        alone — one streaming pass, the graph is never materialized
        (the §3.7 "a priori ... based solely on its metadata" promise)."""
        from repro.io.scan import scan_mtx_stats

        stats = scan_mtx_stats(node_path, edge_path)
        return self.selector.select_from_features(
            stats.features() if self.selector._fitted else None,
            n_nodes=stats.n_nodes,
            n_beliefs=stats.n_beliefs,
        )

    def run_file(
        self,
        path: str | Path,
        edge_path: str | Path | None = None,
        *,
        backend: str | None = None,
        shards: int | None = None,
        partitioner: str | None = None,
        policy: str | None = None,
        staleness: int | None = None,
        executor: str | None = None,
        layout: str | None = None,
    ) -> RunResult:
        """Load a graph file (BIF / XML-BIF / MTX dual-file) and run it."""
        graph = load_graph(path, edge_path)
        return self.run(
            graph, backend=backend, shards=shards, partitioner=partitioner,
            policy=policy, staleness=staleness, executor=executor,
            layout=layout,
        )

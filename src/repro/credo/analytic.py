"""Analytic paper-scale time estimation.

The measured benchmarks execute scaled-down graphs (one CPU core cannot
run the 265-million-edge Twitter graph 132 times).  For the experiments
that need *paper-scale* relative performance — the classifier dataset
(§4.3), Figure 11's Credo-vs-C-Edge curves and the §4.4 portability study
— this module synthesizes each backend's modeled runtime analytically:

1. per-sweep operation counts from the same formulas the kernels emit
   (cross-checked against real runs in the test suite);
2. iteration counts and work-queue activity factors calibrated from the
   measured runs (the edge paradigm converges in fewer iterations; the
   queue shrinks the active set geometrically, §3.5/§4.2);
3. the identical CPU cost model and GPU device simulation used by the
   executing backends (context init, allocations, transfers, kernels).

Because every quantity is a deterministic function of (nodes, edges,
beliefs, mean degree), the estimator works directly on the Table 1 sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.cpu_cost import CpuSpec, I7_7700HQ, cpu_sweep_time
from repro.core.sweepstats import SweepStats
from repro.graphs.suite import BenchmarkGraph
from repro.gpusim.arch import DeviceSpec, get_device
from repro.gpusim.device import GpuDevice
from repro.gpusim.transfer import DEFAULT_CONVERGENCE_BATCH

__all__ = [
    "IterationModel",
    "probe_iteration_model",
    "full_sweep_stats",
    "estimate_backend_times",
    "estimate_cuda_breakdown",
]

_FSIZE = 4
_ISIZE = 8


@dataclass(frozen=True)
class IterationModel:
    """Convergence behaviour of one graph/use-case combination.

    ``iterations``: sweeps until the global criterion passes at the probe
    scale (§4.2: edge converges "in only a few iterations", node runs
    "for tens").  ``queue_activity``: with work queues on, the equivalent
    number of *full* sweeps actually processed.

    The global criterion **sums** per-node deltas (Alg. 1 line 12), so
    without the work queue the iteration count grows with the node count:
    per-node deltas decay geometrically at ``decay`` per iteration, and
    the sum crosses the fixed threshold ~``log(n/probe_n)/log(1/decay)``
    iterations later on an ``n``-node graph.  With the queue, elements
    drop out at a *per-element* threshold — scale-free — which is exactly
    why the paper's Fig. 9 queue gains reach ~87x on large graphs while
    small graphs barely notice.

    Defaults are calibration averages from the executed suite; per-graph
    values come from :func:`probe_iteration_model`.
    """

    node_iterations: int = 22
    edge_iterations: int = 12
    node_queue_activity: float = 7.0
    edge_queue_activity: float = 5.5
    #: per-iteration decay rate of the global delta sum (probe-fitted)
    node_decay: float = 0.7
    edge_decay: float = 0.55
    #: node count the probe ran at (anchors the scale extrapolation)
    probe_n: int = 5000

    def iterations_at_scale(
        self, n: int, paradigm: str, *, work_queue: bool, cap: int = 200
    ) -> float:
        """Iterations an ``n``-node graph needs under the sum criterion."""
        import math

        base = self.node_iterations if paradigm == "node" else self.edge_iterations
        if work_queue or n <= self.probe_n:
            return float(min(base, cap))
        decay = self.node_decay if paradigm == "node" else self.edge_decay
        decay = min(max(decay, 1e-6), 0.999)
        extra = math.log(n / self.probe_n) / math.log(1.0 / decay)
        return float(min(base + max(extra, 0.0), cap))


def probe_iteration_model(graph, criterion=None) -> IterationModel:
    """Measure a graph's convergence behaviour with a cheap probe run.

    Iteration counts and queue-activity factors are largely
    scale-invariant (they depend on coupling strength and degree shape,
    not raw size), so probing a scaled-down build of a Table 1 graph
    yields the constants for the paper-scale estimate.  The probe caps at
    50 iterations: a run still moving by then is cap-bound on every
    backend alike, so the relative ordering is already decided.
    """
    from repro.core.convergence import ConvergenceCriterion
    from repro.core.loopy import LoopyBP

    criterion = criterion or ConvergenceCriterion(max_iterations=50)
    node = LoopyBP(paradigm="node", criterion=criterion).run(graph.copy())
    edge = LoopyBP(paradigm="edge", criterion=criterion).run(graph.copy())
    n = max(graph.n_nodes, 1)
    m = max(graph.n_edges, 1)
    return IterationModel(
        node_iterations=max(node.iterations, 1),
        edge_iterations=max(edge.iterations, 1),
        node_queue_activity=max(node.run_stats.total.nodes_processed / n, 0.5),
        edge_queue_activity=max(edge.run_stats.total.edges_processed / m, 0.5),
        node_decay=_fit_decay(node.delta_history),
        edge_decay=_fit_decay(edge.delta_history),
        probe_n=n,
    )


def _fit_decay(history: list[float]) -> float:
    """Geometric decay rate of the global delta sum, fit on the early
    iterations (while the queue is still near-full the queued history
    matches the full-sweep history)."""
    window = [d for d in history[1:9] if d > 0]
    if len(window) < 2:
        return 0.7
    rate = (window[-1] / window[0]) ** (1.0 / (len(window) - 1))
    return float(min(max(rate, 0.05), 0.98))


def full_sweep_stats(n: int, m_directed: int, b: int, paradigm: str) -> SweepStats:
    """One full sweep's operation counts — the same accounting the
    kernels report (see node_kernel.py / edge_kernel.py)."""
    if paradigm == "node":
        return SweepStats(
            nodes_processed=n,
            edges_processed=m_directed,
            flops=m_directed * (2 * b * b + 2 * b) + n * 4 * b,
            sequential_bytes=n * 3 * b * _FSIZE + m_directed * b * _FSIZE,
            random_bytes=m_directed * 2 * b * _FSIZE,
            random_accesses=m_directed * 2,
            atomic_ops=0,
            reduction_elems=n,
            kernel_launches=1,
        )
    if paradigm == "edge":
        return SweepStats(
            nodes_processed=n,
            edges_processed=m_directed,
            flops=m_directed * (2 * b * b + 2 * b) + n * 4 * b,
            sequential_bytes=m_directed * (2 * b * _FSIZE + 2 * _ISIZE),
            random_bytes=m_directed * b * _FSIZE,
            random_accesses=m_directed,
            atomic_ops=m_directed,
            reduction_elems=n,
            kernel_launches=16,  # edge chunks launch message+combine pairs
        )
    raise ValueError(f"unknown paradigm {paradigm!r}")


#: device indices are int32 — a production CUDA BP for < 2^31 nodes packs
#: its adjacency that way, and it is what lets the paper run K21/LJ/PO on
#: an 8 GB card
_DIDX = 4


def _device_buffer_bytes(n: int, m_directed: int, b: int) -> dict[str, int]:
    """The lean device allocation inventory of a production CUDA BP."""
    return {
        "beliefs": n * b * _FSIZE,
        "beliefs_prev": n * b * _FSIZE,
        "priors": n * b * _FSIZE,
        "messages": m_directed * b * _FSIZE,
        "log_msg_sum": n * b * _FSIZE,
        "edge_src": m_directed * _DIDX,
        "edge_dst": m_directed * _DIDX,
        "edge_rev": m_directed * _DIDX,
        "csr_in": (n + 1) * _DIDX + m_directed * _DIDX,
        "delta_scratch": max(n, m_directed) * _FSIZE,
        "queue": max(n, m_directed) * _DIDX,
    }


#: equivalent-full-sweep multipliers vs the §3.5 queue, calibrated from
#: the scheduling ablation: residual ordering skips more near-converged
#: work than FIFO; relaxed sampling gives most of that back in exchange
#: for O(1) queue operations
_SCHEDULE_ACTIVITY_FACTOR = {
    "work_queue": 1.0,
    "residual": 0.8,
    "relaxed": 0.85,
}


def _resolve_schedule(schedule: str | None, work_queue: bool) -> str:
    if schedule is not None:
        from repro.core.scheduler import normalize_schedule

        return normalize_schedule(schedule)
    return "work_queue" if work_queue else "sync"


def _activity(
    model: IterationModel, n: int, paradigm: str, schedule: str
) -> tuple[float, int]:
    """(equivalent full sweeps, iteration count) at scale ``n``."""
    queued = schedule != "sync"
    iterations = model.iterations_at_scale(n, paradigm, work_queue=queued)
    if queued:
        activity = (
            model.node_queue_activity if paradigm == "node"
            else model.edge_queue_activity
        )
        activity *= _SCHEDULE_ACTIVITY_FACTOR.get(schedule, 1.0)
    else:
        activity = iterations
    return float(activity), int(round(iterations))


def _estimate_cpu(
    n: int, m_directed: int, b: int, paradigm: str,
    cpu: CpuSpec, model: IterationModel, schedule: str,
) -> float:
    sweep = full_sweep_stats(n, m_directed, b, paradigm)
    activity, _ = _activity(model, n, paradigm, schedule)
    # AoS layout: ~1 cache line per gather for narrow vectors
    lines = max(1.0, (b * 4 + 4) / 64.0)
    return activity * cpu_sweep_time(
        cpu, sweep, gather_bytes=4.0 * b, cache_lines_per_access=lines
    )


def _estimate_cuda(
    n: int, m_directed: int, b: int, paradigm: str,
    device: DeviceSpec, model: IterationModel, schedule: str,
) -> GpuDevice | None:
    """Simulated device after a full run, or None when over VRAM."""
    buffers = _device_buffer_bytes(n, m_directed, b)
    gpu = GpuDevice(device)
    if sum(buffers.values()) > device.vram_bytes:
        return None
    for name, nbytes in buffers.items():
        gpu.alloc(name, nbytes)
    pot_bytes = b * b * _FSIZE
    if pot_bytes <= device.constant_mem_bytes:
        gpu.alloc("potentials", pot_bytes, space="constant")
    else:
        gpu.alloc("potentials", pot_bytes)
    gpu.h2d(sum(buffers.values()) + pot_bytes, calls=len(buffers) + 1)

    activity, iterations = _activity(model, n, paradigm, schedule)
    sweep = full_sweep_stats(n, m_directed, b, paradigm)
    scale = activity / max(iterations, 1)
    n_elements = n if paradigm == "node" else m_directed
    # scheduler bookkeeping per iteration (mirrors Schedule.charge)
    pushes = int(n_elements * scale)
    if schedule == "sync":
        queue_ops = push_atomics = 0
    elif schedule == "residual":
        import math

        queue_ops = 2 * pushes
        push_atomics = pushes * max(1, math.ceil(math.log2(max(n_elements, 2))))
    else:  # work_queue / relaxed: O(1) per push
        queue_ops = 2 * pushes
        push_atomics = pushes
    for i in range(1, iterations + 1):
        scaled = SweepStats(
            nodes_processed=int(sweep.nodes_processed * scale),
            edges_processed=int(sweep.edges_processed * scale),
            flops=int(sweep.flops * scale),
            sequential_bytes=int(sweep.sequential_bytes * scale),
            random_bytes=int(sweep.random_bytes * scale),
            random_accesses=int(sweep.random_accesses * scale),
            atomic_ops=int(sweep.atomic_ops * scale) + push_atomics,
            queue_ops=queue_ops,
            reduction_elems=int(sweep.reduction_elems * scale),
            kernel_launches=sweep.kernel_launches,
        )
        gpu.launch(scaled, random_access_bytes=4.0 * b)
        if i % DEFAULT_CONVERGENCE_BATCH == 0:
            gpu.d2h(_FSIZE)
    gpu.d2h(n * b * _FSIZE)
    return gpu


def estimate_cuda_breakdown(
    bench: BenchmarkGraph,
    n_beliefs: int,
    device: DeviceSpec | str = "gtx1070",
    *,
    paradigm: str = "node",
    model: IterationModel | None = None,
    work_queue: bool = True,
    schedule: str | None = None,
):
    """Paper-scale (total seconds, management fraction) for one CUDA
    backend — the §4.1.1 decomposition at Table 1 sizes.  Returns None
    when the graph exceeds VRAM."""
    device = get_device(device)
    model = model or IterationModel()
    sched = _resolve_schedule(schedule, work_queue)
    gpu = _estimate_cuda(
        bench.n_nodes, 2 * bench.n_edges, n_beliefs, paradigm, device, model, sched
    )
    if gpu is None:
        return None
    return gpu.elapsed, gpu.breakdown.management_fraction


def estimate_backend_times(
    bench: BenchmarkGraph,
    n_beliefs: int,
    device: DeviceSpec | str = "gtx1070",
    *,
    cpu: CpuSpec = I7_7700HQ,
    model: IterationModel | None = None,
    work_queue: bool = True,
    schedule: str | None = None,
) -> dict[str, float]:
    """Paper-scale modeled seconds for the four core backends.

    ``schedule`` names a scheduling policy (overrides the legacy
    ``work_queue`` boolean).  CUDA entries are omitted when the graph
    does not fit the device VRAM (§4.2's exclusions fall out naturally).
    """
    device = get_device(device)
    model = model or IterationModel()
    sched = _resolve_schedule(schedule, work_queue)
    n, m_directed = bench.n_nodes, 2 * bench.n_edges
    times: dict[str, float] = {}
    for paradigm in ("node", "edge"):
        times[f"c-{paradigm}"] = _estimate_cpu(
            n, m_directed, n_beliefs, paradigm, cpu, model, sched
        )
        cuda = _estimate_cuda(
            n, m_directed, n_beliefs, paradigm, device, model, sched
        )
        if cuda is not None:
            times[f"cuda-{paradigm}"] = cuda.elapsed
    return times

"""The size heuristic (paper §3.7).

"We could quickly discern a rule to use the CUDA implementations for when
the graph has 100,000 nodes or more and the C versions for 1,000 nodes or
fewer.  Yet, this rule does not account for the middle ground."

The rule resolves the platform (C vs CUDA) at the extremes; the paradigm
(Node vs Edge) and the whole middle ground go to the classifier.
"""

from __future__ import annotations

from repro.core.graph import BeliefGraph

__all__ = ["SMALL_GRAPH_NODES", "LARGE_GRAPH_NODES", "rule_select"]

#: at or below this many nodes, the C implementations always win (§3.7)
SMALL_GRAPH_NODES = 1_000
#: at or above this many nodes, the CUDA implementations always win (§3.7)
LARGE_GRAPH_NODES = 100_000


def rule_select(graph: BeliefGraph) -> str | None:
    """Apply the extremes rule.

    Returns ``"c-edge"`` for small graphs, ``"cuda-node"`` for large ones
    and ``None`` for the middle ground (defer to the classifier).
    """
    n = graph.n_nodes
    if n <= SMALL_GRAPH_NODES:
        return "c-edge"
    if n >= LARGE_GRAPH_NODES:
        return "cuda-node"
    return None

"""Labelled-dataset construction for the selector (paper §3.7, §4.3).

The paper benchmarks every suite variant that fits the GPU's VRAM (95 of
the 132), labels each with whichever *paradigm* won — "a label of Node
for when a Node implementation is best for that benchmark and a label of
Edge otherwise" — and trains the classifiers on the metadata features.

:func:`build_training_set` replays that: it executes the four core
backends on each suite variant (under the active size profile) and labels
by the fastest modeled time.  VRAM feasibility is judged at **paper
scale** (the analytic buffer-size formula on the Table 1 sizes), so the
exclusions match the paper's even when the graphs themselves are built
scaled-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.base import BackendUnsupportedError
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.credo.features import extract_features
from repro.graphs.suite import SUITE, BenchmarkGraph, build_graph
from repro.gpusim.arch import DeviceSpec, get_device
from repro.usecases import USE_CASES

__all__ = [
    "TrainingRow",
    "build_training_set",
    "build_training_set_paper_scale",
    "relabel_with_jitter",
    "fits_vram_paper_scale",
]

_FSIZE = 4
_ISIZE = 8

#: (abbrev, use_case, profile, seed) -> (IterationModel, features, factor)
_PROBE_CACHE: dict[tuple, tuple] = {}


def fits_vram_paper_scale(
    bench: BenchmarkGraph, n_beliefs: int, device: DeviceSpec | str
) -> bool:
    """Would the paper-scale graph fit the device VRAM?

    Uses the same buffer inventory as the CUDA backends
    (:func:`repro.backends.cuda_backends._graph_device_bytes`) evaluated
    analytically on the Table 1 sizes.
    """
    device = get_device(device)
    n, m2 = bench.n_nodes, 2 * bench.n_edges  # directed-pair expansion
    b = n_beliefs
    total = (
        4 * n * b * _FSIZE  # beliefs, prev, priors, log_msg_sum
        + m2 * b * _FSIZE  # messages
        + 3 * m2 * _ISIZE  # src, dst, rev
        + 2 * ((n + 1) * _ISIZE + m2 * _ISIZE)  # csr in/out
        + max(n, m2) * _FSIZE  # delta scratch
        + 2 * max(n, m2) * _ISIZE  # queues
    )
    return total <= device.vram_bytes


@dataclass
class TrainingRow:
    """One labelled benchmark variant."""

    abbrev: str
    use_case: str
    n_beliefs: int
    features: np.ndarray
    #: "node" or "edge" — the winning paradigm (the classifier target)
    label: str
    #: backend name → modeled seconds
    times: dict[str, float] = field(default_factory=dict)
    #: best backend overall (paradigm + platform)
    best_backend: str = ""
    scale_factor: float = 1.0


def build_training_set_paper_scale(
    device: DeviceSpec | str = "gtx1070",
    *,
    use_cases: tuple[str, ...] = ("binary", "virus", "image"),
    subset: tuple[str, ...] | None = None,
    probe_profile: str = "probe",
    seed: int = 0,
    verbose: bool = False,
) -> list[TrainingRow]:
    """Labelled dataset at **Table 1 sizes** via the analytic estimator.

    Each variant gets a cheap probe run on a scaled-down build (measuring
    its convergence behaviour and degree-shape features), then the four
    backends' runtimes are modeled analytically at the paper-scale node
    and edge counts (:mod:`repro.credo.analytic`).  Variants that do not
    fit the device VRAM lose their CUDA columns — exactly the paper's
    §4.3 dataset construction, in minutes instead of days.
    """
    from repro.credo.analytic import estimate_backend_times, probe_iteration_model

    device = get_device(device)
    rows: list[TrainingRow] = []
    names = subset if subset is not None else tuple(SUITE)
    for abbrev in names:
        bench = SUITE[abbrev]
        for use_case in use_cases:
            n_beliefs = USE_CASES[use_case]
            # probes are device-independent; cache them so labelling a
            # second architecture (§4.4) reuses the convergence runs
            key = (abbrev, use_case, probe_profile, seed)
            cached = _PROBE_CACHE.get(key)
            if cached is None:
                graph, factor = build_graph(
                    bench, use_case, profile=probe_profile, seed=seed
                )
                model = probe_iteration_model(graph)
                features = extract_features(graph)
                _PROBE_CACHE[key] = (model, features, factor)
            else:
                model, features, factor = cached
            times = estimate_backend_times(bench, n_beliefs, device, model=model)
            if not times:
                continue
            best = min(times, key=times.__getitem__)
            label = "node" if best.endswith("-node") else "edge"
            # shape features (imbalance, skew) come from the probe build;
            # raw sizes are the paper-scale ones
            features = features.copy()
            features[0] = float(bench.n_nodes)
            features[1] = bench.n_nodes / bench.n_edges
            rows.append(
                TrainingRow(
                    abbrev=abbrev,
                    use_case=use_case,
                    n_beliefs=n_beliefs,
                    features=features,
                    label=label,
                    times=times,
                    best_backend=best,
                    scale_factor=factor,
                )
            )
            if verbose:
                print(
                    f"{abbrev:12s} {use_case:6s} -> {best:10s} "
                    f"({', '.join(f'{k}={v:.3g}s' for k, v in sorted(times.items()))})"
                )
    return rows


def relabel_with_jitter(
    rows: list[TrainingRow], scale: float, seed: int = 0
) -> list[TrainingRow]:
    """Re-derive labels under multiplicative lognormal runtime noise.

    Real benchmark labels come from *measured* runtimes; when two
    implementations land within measurement variance of each other the
    label is effectively a coin flip.  §4.4 reports exactly that regime
    on the V100 ("the difference between the two versions is seldom
    significant with the CUDA Node running on average 0.27 seconds and
    the CUDA Edge running in 0.30 seconds") — this helper models it by
    jittering each backend's modeled time by ``exp(N(0, scale))`` before
    taking the argmin.  Deterministic given ``seed``.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    rng = np.random.default_rng(seed)
    out: list[TrainingRow] = []
    for row in rows:
        noisy = {
            name: t * float(np.exp(rng.normal(0.0, scale)))
            for name, t in row.times.items()
        }
        best = min(noisy, key=noisy.__getitem__)
        out.append(
            TrainingRow(
                abbrev=row.abbrev,
                use_case=row.use_case,
                n_beliefs=row.n_beliefs,
                features=row.features,
                label="node" if best.endswith("-node") else "edge",
                times=noisy,
                best_backend=best,
                scale_factor=row.scale_factor,
            )
        )
    return out


def build_training_set(
    device: DeviceSpec | str = "gtx1070",
    *,
    use_cases: tuple[str, ...] = ("binary", "virus", "image"),
    subset: tuple[str, ...] | None = None,
    profile: str | None = None,
    seed: int = 0,
    verbose: bool = False,
) -> list[TrainingRow]:
    """Benchmark the suite on ``device`` and label each variant.

    Variants whose paper-scale footprint exceeds the device VRAM are
    skipped, mirroring §4.3's "graphs variations … that can fit into our
    GPU's VRAM and for which we consequently have a full dataset".
    """
    device = get_device(device)
    backends = {
        "c-node": CNodeBackend(),
        "c-edge": CEdgeBackend(),
        "cuda-node": CudaNodeBackend(device),
        "cuda-edge": CudaEdgeBackend(device),
    }
    rows: list[TrainingRow] = []
    names = subset if subset is not None else tuple(SUITE)
    for abbrev in names:
        bench = SUITE[abbrev]
        for use_case in use_cases:
            n_beliefs = USE_CASES[use_case]
            if not fits_vram_paper_scale(bench, n_beliefs, device):
                if verbose:
                    print(f"skip {abbrev}/{use_case}: exceeds {device.name} VRAM")
                continue
            graph, factor = build_graph(bench, use_case, profile=profile, seed=seed)
            times: dict[str, float] = {}
            for name, backend in backends.items():
                try:
                    result = backend.run(graph.copy())
                except BackendUnsupportedError:
                    continue
                times[name] = result.modeled_time
            if not times:
                continue
            best = min(times, key=times.__getitem__)
            label = "node" if best.endswith("-node") else "edge"
            rows.append(
                TrainingRow(
                    abbrev=abbrev,
                    use_case=use_case,
                    n_beliefs=n_beliefs,
                    features=extract_features(graph),
                    label=label,
                    times=times,
                    best_backend=best,
                    scale_factor=factor,
                )
            )
            if verbose:
                print(
                    f"{abbrev:12s} {use_case:6s} -> {best:10s} "
                    f"({', '.join(f'{k}={v:.3g}s' for k, v in sorted(times.items()))})"
                )
    return rows

"""Implementation selection: rule + classifier (paper §3.7).

Selection proceeds exactly as the paper lays out:

1. the extremes rule — ≤ 1 k nodes → C Edge, ≥ 100 k nodes → CUDA
   (it "accounts for 80 % of the benchmark graphs");
2. for everything else, the trained classifier predicts the winning
   *paradigm* (Node vs Edge) from the five metadata features;
3. the platform (C vs CUDA) comes from the belief-dependent transfer
   pivot of §3.6 — "100,000 for 2 beliefs and 1,000 for 32 beliefs" —
   interpolated log-linearly, which is the belief-count dependence
   Figure 11 points at.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.graph import BeliefGraph
from repro.credo.features import extract_features, extract_schedule_features
from repro.credo.rules import LARGE_GRAPH_NODES, SMALL_GRAPH_NODES
from repro.credo.training import TrainingRow
from repro.ml.forest import RandomForestClassifier

__all__ = [
    "CredoSelector",
    "COMPILED_AUTO_MIN_EDGES",
    "INCREMENTAL_DIRTY_MAX_FRACTION",
    "SHARD_AUTO_MIN_EDGES",
    "cuda_pivot_nodes",
]

#: below this many directed edges sharding is pure overhead: the per-round
#: exchange + barrier dwarfs what shard parallelism saves, so the
#: automatic path keeps small graphs on the single-engine fast path
SHARD_AUTO_MIN_EDGES = 500_000

#: above this dirty fraction an incremental re-convergence stops paying:
#: warm-started residual propagation re-touches most of the graph anyway,
#: so :meth:`CredoSelector.select_update_mode` falls back to a full run
INCREMENTAL_DIRTY_MAX_FRACTION = 0.25

#: below this many directed edges the compiled executor's one-off lowering
#: (reverse-pair masks, chunk programs, scratch buffers) costs more than
#: the per-sweep dispatch it eliminates, so small graphs stay interpreted
COMPILED_AUTO_MIN_EDGES = 2_000


def cuda_pivot_nodes(n_beliefs: int) -> float:
    """Node count above which CUDA beats C for ``n_beliefs`` (§3.6).

    Log-linear through the paper's anchors (2 beliefs → 100 k,
    32 beliefs → 1 k), clamped to the rule's extremes.
    """
    b = max(n_beliefs, 2)
    slope = math.log(100_000 / 1_000) / math.log(32 / 2)
    pivot = 100_000 * (b / 2.0) ** (-slope)
    return float(min(max(pivot, SMALL_GRAPH_NODES), LARGE_GRAPH_NODES))


class CredoSelector:
    """Rule + random-forest implementation chooser.

    ``fit`` takes the labelled rows from
    :func:`repro.credo.training.build_training_set`; an unfitted selector
    falls back to the rule plus the pivot with a size-based paradigm
    guess.
    """

    def __init__(self, classifier=None):
        # the paper's tuned configuration: max-depth 6, 14 estimators
        self.classifier = classifier or RandomForestClassifier(
            n_estimators=14, max_depth=6, random_state=0
        )
        self._fitted = False

    def fit(self, rows: list[TrainingRow]) -> "CredoSelector":
        """Train the paradigm classifier on labelled benchmark rows."""
        if not rows:
            raise ValueError("no training rows")
        X = np.array([row.features for row in rows])
        y = np.array([row.label for row in rows])
        self.classifier.fit(X, y)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_paradigm(self, graph: BeliefGraph) -> str:
        """"node" or "edge" for the middle ground."""
        if self._fitted:
            return str(self.classifier.predict(extract_features(graph).reshape(1, -1))[0])
        # unfitted fallback: small graphs edge, large graphs node
        return "edge" if graph.n_nodes < 10_000 else "node"

    def select(self, graph: BeliefGraph) -> str:
        """Backend name for ``graph`` (one of the four core backends)."""
        return self.select_from_features(
            extract_features(graph) if self._fitted else None,
            n_nodes=graph.n_nodes,
            n_beliefs=graph.n_states,
        )

    def select_from_features(
        self,
        features: np.ndarray | None,
        *,
        n_nodes: int,
        n_beliefs: int,
    ) -> str:
        """Selection from metadata alone — the §3.7 promise: no graph
        needs to be materialized (see :func:`repro.io.scan.scan_mtx_stats`)."""
        if n_nodes <= SMALL_GRAPH_NODES:
            return "c-edge"
        if self._fitted and features is not None:
            paradigm = str(self.classifier.predict(features.reshape(1, -1))[0])
        else:
            paradigm = "edge" if n_nodes < 10_000 else "node"
        if n_nodes >= LARGE_GRAPH_NODES:
            # huge graphs: CUDA for sure; the paradigm may still be Edge
            # on architectures with cheap atomics (§4.4)
            return f"cuda-{paradigm}"
        platform = "cuda" if n_nodes >= cuda_pivot_nodes(n_beliefs) else "c"
        return f"{platform}-{paradigm}"

    # ------------------------------------------------------------------
    def select_schedule(self, graph: BeliefGraph, backend: str) -> str:
        """Scheduling policy for ``graph`` on ``backend`` (extension).

        Heuristic over the schedule features: graphs with a heavy degree
        tail (high coefficient of variation or concentrated hub mass)
        converge unevenly, so priority scheduling focuses work where the
        residual lives — exact residual order on CPU, where heap
        maintenance is serialized anyway, and relaxed priority on GPU,
        where an exact heap would serialize thousands of threads (Aksenov
        et al.).  Balanced graphs keep the paper's §3.5 work queue.
        """
        feats = extract_schedule_features(graph)
        degree_cv, hub_mass = float(feats[-2]), float(feats[-1])
        heavy_tail = degree_cv > 1.0 or hub_mass > 0.25
        if not heavy_tail:
            return "work_queue"
        return "relaxed" if backend.startswith("cuda") else "residual"

    def select_shard_policy(self, graph: BeliefGraph, shards: int) -> tuple[str, int]:
        """``(policy, staleness)`` for a ``shards``-way execution.

        Lockstep rounds only hurt when shards finish unevenly, so the
        async policy is chosen on the same heavy-tail signal as priority
        scheduling: hub-concentrated graphs produce skewed shard loads
        whose stragglers the bounded-staleness ticks and work stealing
        absorb.  Balanced graphs keep the bit-exact sync policy.
        """
        if shards <= 1:
            return ("sync", 0)
        feats = extract_schedule_features(graph)
        degree_cv, hub_mass = float(feats[-2]), float(feats[-1])
        if degree_cv > 1.0 or hub_mass > 0.25:
            return ("async", 1)
        return ("sync", 0)

    def select_sharding(self, graph: BeliefGraph, *, max_shards: int = 8) -> int:
        """How many shards to split ``graph`` into (1 = don't shard).

        Deliberately conservative: sharding only pays once a graph is
        large enough that per-shard sweeps dominate the boundary exchange
        and barrier, so anything under :data:`SHARD_AUTO_MIN_EDGES`
        directed edges (and every heterogeneous network) stays on the
        existing single-engine path unchanged.  Beyond that, one extra
        shard per ~:data:`SHARD_AUTO_MIN_EDGES` edges, capped.
        """
        if not graph.uniform or graph.n_edges < SHARD_AUTO_MIN_EDGES:
            return 1
        return int(min(max_shards, max(2, graph.n_edges // SHARD_AUTO_MIN_EDGES)))

    # ------------------------------------------------------------------
    def select_update_mode(
        self, dirty_fraction: float, *, structural: bool = True
    ) -> str:
        """``"incremental"`` or ``"full"`` for a graph delta (DESIGN.md §15).

        A delta dirtying more than :data:`INCREMENTAL_DIRTY_MAX_FRACTION`
        of the nodes re-touches most of the graph during warm-started
        propagation anyway — state migration plus seeding then costs more
        than it saves, so the engine runs a plain full convergence.
        ``structural`` is accepted for symmetry with the call sites
        (evidence-only deltas share the same ceiling today).
        """
        if dirty_fraction > INCREMENTAL_DIRTY_MAX_FRACTION:
            return "full"
        return "incremental"

    # ------------------------------------------------------------------
    def select_executor(self, graph: BeliefGraph, backend: str) -> str:
        """Sweep executor for ``graph`` on ``backend`` (DESIGN.md §13).

        The compiled executor is bit-exact with the interpreted one, so
        this is purely a cost call: lowering pays once and each full
        sweep then skips the CSR permutation gathers and index rebuilds.
        It only wins when sweeps are big enough to amortize the build —
        uniform graphs above :data:`COMPILED_AUTO_MIN_EDGES` edges.  The
        pure-Python reference backend has nothing to lower.
        """
        if backend == "reference" or not graph.uniform:
            return "interpreted"
        if graph.n_edges < COMPILED_AUTO_MIN_EDGES:
            return "interpreted"
        return "compiled"

    def select_layout(self, graph: BeliefGraph, *, seed: int = 0) -> str:
        """Belief-store layout for ``graph``, by measured plan-time probe.

        Delegates to :func:`repro.kernels.autotune.autotune_layout` — a
        deterministic decision under the fixed measurement seed, recorded
        on the :class:`~repro.credo.runner.ExecutionPlan` for audit.
        """
        from repro.kernels.autotune import autotune_layout

        return autotune_layout(graph, seed=seed).layout

    def select_full(self, graph: BeliefGraph) -> str:
        """Schedule-qualified selection, ``"<backend>:<schedule>"``."""
        backend = self.select(graph)
        return f"{backend}:{self.select_schedule(graph, backend)}"

"""Command-line entry point: ``credo run graph.nodes [graph.edges]``.

A thin operational wrapper over :class:`repro.credo.runner.Credo` so the
system is usable the way the paper's artifact would be: point it at an
input file, get posteriors and the chosen implementation.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="credo",
        description="Belief propagation with automatic implementation selection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run BP on a graph file")
    run.add_argument("path", help="BIF / XML-BIF file, or MTX node file")
    run.add_argument("edge_path", nargs="?", default=None, help="MTX edge file")
    run.add_argument(
        "--backend", default=None,
        help="force a backend (skip selection); may be schedule-qualified, "
             "e.g. c-node:residual",
    )
    run.add_argument("--device", default="gtx1070", help="simulated GPU (gtx1070/v100/a100)")
    run.add_argument("--threshold", type=float, default=1e-3)
    run.add_argument("--max-iterations", type=int, default=200)
    run.add_argument(
        "--schedule", default=None,
        choices=("sync", "work_queue", "residual", "relaxed"),
        help="scheduling policy (default: selector's choice)",
    )
    run.add_argument(
        "--no-work-queue", action="store_true",
        help="deprecated: same as --schedule sync",
    )
    run.add_argument("--top", type=int, default=10, help="print the first N posteriors")
    run.add_argument(
        "--train", action="store_true",
        help="fit the selector on the smoke-profile suite before selecting",
    )

    feats = sub.add_parser("features", help="print a graph's metadata features")
    feats.add_argument("path")
    feats.add_argument("edge_path", nargs="?", default=None)

    conv = sub.add_parser(
        "convert", help="convert BIF / XML-BIF to the MTX dual-file format (§3.2)"
    )
    conv.add_argument("path", help="input BIF or XML-BIF file")
    conv.add_argument("out_prefix", help="output prefix: writes <prefix>.nodes/.edges")

    sub.add_parser("backends", help="list available backends")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "backends":
        from repro.backends.registry import available_backends

        for name in available_backends():
            print(name)
        return 0

    if args.command == "features":
        from repro.credo.features import FEATURE_NAMES, extract_features
        from repro.io.detect import load_graph

        graph = load_graph(args.path, args.edge_path)
        for name, value in zip(FEATURE_NAMES, extract_features(graph)):
            print(f"{name:18s} {value:.6g}")
        return 0

    if args.command == "convert":
        from repro.io.detect import load_graph
        from repro.io.mtx import write_mtx_graph

        graph = load_graph(args.path)
        if not graph.uniform:
            print(
                "error: the MTX dual-file format needs constant-width "
                "beliefs (see §2.2); this network is heterogeneous",
                file=sys.stderr,
            )
            return 1
        nodes = f"{args.out_prefix}.nodes"
        edges = f"{args.out_prefix}.edges"
        write_mtx_graph(graph, nodes, edges)
        print(f"wrote {nodes} and {edges} "
              f"({graph.n_nodes} nodes, {graph.n_edges // 2} undirected edges)")
        return 0

    # run
    from repro.core.convergence import ConvergenceCriterion
    from repro.credo.runner import Credo

    schedule = args.schedule
    if args.no_work_queue and schedule is None:
        schedule = "sync"
    credo = Credo(
        device=args.device,
        criterion=ConvergenceCriterion(
            threshold=args.threshold, max_iterations=args.max_iterations
        ),
        schedule=schedule,
    )
    if args.train:
        credo.train(profile="smoke", use_cases=("binary",))
    result = credo.run_file(args.path, args.edge_path, backend=args.backend)
    print(f"backend       {result.backend}")
    print(f"schedule      {result.detail.get('schedule', '-')}")
    print(f"iterations    {result.iterations}")
    print(f"converged     {result.converged}")
    print(f"wall time     {result.wall_time:.4f}s")
    print(f"modeled time  {result.modeled_time:.4f}s")
    with np.printoptions(precision=4, suppress=True):
        for i in range(min(args.top, len(result.beliefs))):
            print(f"node {i}: {result.beliefs[i]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

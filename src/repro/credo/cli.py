"""Command-line entry point: ``credo run graph.nodes [graph.edges]``.

A thin operational wrapper over :class:`repro.credo.runner.Credo` so the
system is usable the way the paper's artifact would be: point it at an
input file, get posteriors and the chosen implementation.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="credo",
        description="Belief propagation with automatic implementation selection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run BP on a graph file")
    run.add_argument("path", help="BIF / XML-BIF file, or MTX node file")
    run.add_argument("edge_path", nargs="?", default=None, help="MTX edge file")
    run.add_argument(
        "--backend", default=None,
        help="force a backend (skip selection); may be schedule-qualified, "
             "e.g. c-node:residual",
    )
    run.add_argument("--device", default="gtx1070", help="simulated GPU (gtx1070/v100/a100)")
    run.add_argument("--threshold", type=float, default=1e-3)
    run.add_argument("--max-iterations", type=int, default=200)
    run.add_argument(
        "--schedule", default=None,
        choices=("sync", "work_queue", "residual", "relaxed"),
        help="scheduling policy (default: selector's choice)",
    )
    run.add_argument(
        "--no-work-queue", action="store_true",
        help="deprecated: same as --schedule sync",
    )
    run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard-parallel execution over N graph partitions "
             "(default: selector's choice — only very large graphs shard)",
    )
    run.add_argument(
        "--partitioner", default=None,
        choices=("hash", "range", "bfs", "greedy"),
        help="partitioning strategy for --shards (default bfs)",
    )
    run.add_argument(
        "--shard-policy", default=None, choices=("sync", "async"),
        help="shard execution policy: lockstep rounds (sync, bit-exact) or "
             "stale-synchronous ticks (async; see --staleness)",
    )
    run.add_argument(
        "--staleness", type=int, default=None, metavar="K",
        help="async halo staleness bound in rounds (0 degenerates to "
             "lockstep; implies --shard-policy async when positive)",
    )
    run.add_argument(
        "--executor", default=None,
        choices=("interpreted", "compiled", "auto"),
        help="sweep executor: interpreted kernels, fused compiled "
             "programs (bit-exact), or the selector's cost call "
             "(default: interpreted)",
    )
    run.add_argument(
        "--layout", default=None,
        choices=("aos", "soa", "blocked", "auto"),
        help="belief-store layout; 'auto' runs the plan-time layout "
             "autotuner (default: keep the graph's layout)",
    )
    run.add_argument(
        "--verify-kernels", action="store_true",
        help="pre-flight the compiled executor's buffer-op IR on both "
             "paradigms (static program check + runtime buffer cross-check) "
             "before running; exits 1 on verification failure",
    )
    run.add_argument("--top", type=int, default=10, help="print the first N posteriors")
    run.add_argument(
        "--train", action="store_true",
        help="fit the selector on the smoke-profile suite before selecting",
    )
    run.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="record a Chrome trace of the run (open in Perfetto / "
             "chrome://tracing)",
    )

    prof = sub.add_parser(
        "profile",
        help="run BP once with tracing on and export a Chrome trace + summary",
    )
    prof.add_argument("path", help="BIF / XML-BIF file, or MTX node file")
    prof.add_argument("edge_path", nargs="?", default=None, help="MTX edge file")
    prof.add_argument("--backend", default=None,
                      help="force a backend; may be schedule-qualified")
    prof.add_argument("--device", default="gtx1070",
                      help="simulated GPU (gtx1070/v100/a100)")
    prof.add_argument("--schedule", default=None,
                      choices=("sync", "work_queue", "residual", "relaxed"))
    prof.add_argument("--shards", type=int, default=None, metavar="N")
    prof.add_argument("--partitioner", default=None,
                      choices=("hash", "range", "bfs", "greedy"))
    prof.add_argument("--shard-policy", default=None, choices=("sync", "async"))
    prof.add_argument("--staleness", type=int, default=None, metavar="K")
    prof.add_argument("--executor", default=None,
                      choices=("interpreted", "compiled", "auto"),
                      help="sweep executor (default: interpreted)")
    prof.add_argument("--layout", default=None,
                      choices=("aos", "soa", "blocked", "auto"),
                      help="belief-store layout; 'auto' autotunes")
    prof.add_argument("--threshold", type=float, default=1e-3)
    prof.add_argument("--max-iterations", type=int, default=200)
    prof.add_argument("--trace", default="trace.json", metavar="OUT.json",
                      help="Chrome trace output path (default trace.json)")
    prof.add_argument("--no-summary", action="store_true",
                      help="skip the per-span aggregate table")
    prof.add_argument("--verify-parity", action="store_true",
                      help="also run untraced and fail unless posteriors "
                           "are identical")
    prof.add_argument("--verify-kernels", action="store_true",
                      help="pre-flight the compiled executor's buffer-op IR "
                           "on both paradigms before profiling")

    feats = sub.add_parser("features", help="print a graph's metadata features")
    feats.add_argument("path")
    feats.add_argument("edge_path", nargs="?", default=None)

    conv = sub.add_parser(
        "convert", help="convert BIF / XML-BIF to the MTX dual-file format (§3.2)"
    )
    conv.add_argument("path", help="input BIF or XML-BIF file")
    conv.add_argument("out_prefix", help="output prefix: writes <prefix>.nodes/.edges")

    sub.add_parser("backends", help="list available backends")

    # "lint" is intercepted in main() before parsing (its options are
    # owned by repro.analysis); registered here only for --help listing
    sub.add_parser(
        "lint",
        help="run the project-aware static checker (python -m repro.analysis)",
        add_help=False,
    )

    serve = sub.add_parser(
        "serve", help="serve posterior queries over JSON-lines (stdin or TCP)"
    )
    serve.add_argument(
        "models", nargs="*", metavar="NAME=PATH",
        help="graphs to pre-register, e.g. alarm=models/alarm.bif "
             "(bare PATH registers under its stem)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="HOST:PORT",
        help="listen on TCP instead of stdin (PORT 0 picks a free port; "
             "the bound address is printed as 'listening on HOST:PORT')",
    )
    serve.add_argument("--device", default="gtx1070")
    serve.add_argument("--backend", default=None,
                       help="pin every model to one backend (skip selection)")
    serve.add_argument("--schedule", default=None,
                       choices=("sync", "work_queue", "residual", "relaxed"))
    serve.add_argument("--threshold", type=float, default=1e-3)
    serve.add_argument("--max-iterations", type=int, default=200)
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=16,
                       help="micro-batch width (1 disables batching)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="linger window for coalescing concurrent queries")
    serve.add_argument("--cache-capacity", type=int, default=256,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--deadline-s", type=float, default=None,
                       help="default per-request deadline")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="partition every registered model N ways and sweep "
                            "shard-parallel (1 disables)")
    serve.add_argument("--partitioner", default=None,
                       choices=("hash", "range", "bfs", "greedy"),
                       help="partitioning strategy for --shards (default bfs)")
    serve.add_argument("--shard-policy", default="sync",
                       choices=("sync", "async"),
                       help="shard execution policy for --shards")
    serve.add_argument("--staleness", type=int, default=0, metavar="K",
                       help="async halo staleness bound in rounds")
    serve.add_argument("--shard-threads", type=int, default=None,
                       help="shard-sweep worker threads (default: --shards)")
    serve.add_argument("--stats", action="store_true",
                       help="print a metrics snapshot on exit")
    serve.add_argument("--trace", default=None, metavar="OUT.json",
                       help="record a Chrome trace of the serving session")

    query = sub.add_parser("query", help="query a running 'credo serve' instance")
    query.add_argument("model", help="registered model name")
    query.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="address printed by 'credo serve --socket'")
    query.add_argument("--evidence", default="",
                       help="comma-separated node=state clamps, e.g. 'alarm=1,smoke=0'")
    query.add_argument("--nodes", default=None,
                       help="comma-separated node names to return (default all)")
    query.add_argument("--no-cache", action="store_true")
    query.add_argument("--op", default="query",
                       choices=("query", "stats", "models", "shutdown"),
                       help="non-query ops need only --connect")
    query.add_argument("--expect-posterior", action="store_true",
                       help="exit non-zero unless the response carries "
                            "well-formed, normalized posteriors")
    query.add_argument("--timeout", type=float, default=30.0)

    update = sub.add_parser(
        "update", help="apply a structural graph delta to a served model"
    )
    update.add_argument("model", help="registered model name")
    update.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="address printed by 'credo serve --socket'")
    update.add_argument("--add-node", action="append", default=[],
                        metavar="NAME[=p0,p1,...]",
                        help="add a node, optionally with an explicit prior "
                             "(default uniform); repeatable")
    update.add_argument("--add-edge", action="append", default=[],
                        metavar="U,V",
                        help="add an undirected edge between two nodes "
                             "(shared potential); repeatable")
    update.add_argument("--remove-edge", action="append", default=[],
                        metavar="U,V",
                        help="remove an undirected edge; repeatable")
    update.add_argument("--detach-node", action="append", default=[],
                        metavar="NAME",
                        help="drop every edge incident to a node and reset "
                             "its prior (ids are never reused); repeatable")
    update.add_argument("--journal", default=None, metavar="FILE.jsonl",
                        help="apply a saved DeltaJournal (one delta payload "
                             "per line) instead of building one from flags")
    update.add_argument("--timeout", type=float, default=30.0)
    return parser


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    return host or "127.0.0.1", int(port)


def _write_trace(tracer, path: str) -> None:
    import json

    from repro.telemetry import chrome_trace, trace_lanes

    trace = chrome_trace(tracer.events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    lanes = trace_lanes(trace)
    n_lanes = sum(len(ts) for ts in lanes.values())
    print(
        f"trace: {path} ({len(tracer.events)} events, "
        f"{len(lanes)} processes, {n_lanes} lanes)",
        file=sys.stderr,
    )


def _verify_kernels_preflight(graph) -> bool:
    """Lower the compiled executor for both paradigms, verify the emitted
    buffer-op IR statically and against the live buffers, and print each
    program's op summary.  Returns False on any verification failure."""
    from repro.core.state import LoopyState
    from repro.kernels.compiled import CompiledExecutor
    from repro.kernels.ir import KernelVerificationError

    ok = True
    for paradigm in ("node", "edge"):
        state = LoopyState(graph)
        try:
            executor = CompiledExecutor(state, paradigm=paradigm)
            executor.verify_buffers(state)
        except KernelVerificationError as exc:
            print(f"kernel verification FAILED [{paradigm}]: {exc}",
                  file=sys.stderr)
            ok = False
            continue
        for program in executor.programs.values():
            print(program.describe(), file=sys.stderr)
        print(f"kernel verification OK [{paradigm}]", file=sys.stderr)
    return ok


def _cmd_profile(args) -> int:
    from repro.core.convergence import ConvergenceCriterion
    from repro.credo.runner import Credo
    from repro.io.detect import load_graph
    from repro.telemetry import Tracer, get_metrics, summary_table, use_tracer

    credo = Credo(
        device=args.device,
        criterion=ConvergenceCriterion(
            threshold=args.threshold, max_iterations=args.max_iterations
        ),
        schedule=args.schedule,
    )
    graph = load_graph(args.path, args.edge_path)
    if args.verify_kernels and not _verify_kernels_preflight(graph):
        return 1

    baseline = None
    if args.verify_parity:
        # the baseline deliberately stays on the interpreted executor so
        # --executor compiled is checked against the reference semantics,
        # not against itself
        baseline = credo.run(
            graph.copy(), backend=args.backend,
            shards=args.shards, partitioner=args.partitioner,
            policy=args.shard_policy, staleness=args.staleness,
            layout=args.layout,
        )

    tracer = Tracer()
    with use_tracer(tracer):
        result = credo.run(
            graph.copy(), backend=args.backend,
            shards=args.shards, partitioner=args.partitioner,
            policy=args.shard_policy, staleness=args.staleness,
            executor=args.executor, layout=args.layout,
        )

    print(f"backend       {result.backend}")
    print(f"schedule      {result.detail.get('schedule', '-')}")
    print(f"executor      {result.detail.get('executor', 'interpreted')}")
    print(f"layout        {result.detail.get('layout', graph.layout)}")
    if "policy" in result.detail:
        print(f"shard policy  {result.detail['policy']} "
              f"(staleness {result.detail.get('staleness', 0)})")
        print(f"barrier idle  {result.detail.get('barrier_idle_s', 0.0):.6f}s")
    print(f"iterations    {result.iterations}")
    print(f"converged     {result.converged}")
    print(f"wall time     {result.wall_time:.4f}s")
    print(f"modeled time  {result.modeled_time:.4f}s")
    build = get_metrics().histogram("kernel.build_s").snapshot()
    if build.get("count"):
        build_s = build["mean_s"] * build["count"]
        print(f"kernel build  {build_s:.6f}s across {int(build['count'])} "
              f"lowering(s); sweeps {max(result.wall_time - build_s, 0.0):.4f}s")
    idle = get_metrics().histogram("sharded.barrier_idle_s").snapshot()
    if idle.get("count"):
        print(f"barrier idle  count {int(idle['count'])}, "
              f"mean {idle['mean_s']:.6f}s, p95 {idle['p95_s']:.6f}s, "
              f"max {idle['max_s']:.6f}s")
    if not args.no_summary:
        print()
        print(summary_table(tracer.events))
    _write_trace(tracer, args.trace)

    if baseline is not None:
        drift = float(
            np.max(np.abs(np.asarray(result.beliefs) - np.asarray(baseline.beliefs)))
        )
        if drift > 1e-12 or result.iterations != baseline.iterations:
            print(
                f"error: traced run diverged from untraced baseline "
                f"(max |Δbelief| {drift:.3e}, iterations "
                f"{result.iterations} vs {baseline.iterations})",
                file=sys.stderr,
            )
            return 1
        print("parity: traced == untraced", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import json

    from repro.serve import InferenceServer, ServerConfig
    from repro.serve.transport import serve_socket, serve_stdin

    config = ServerConfig(
        device=args.device,
        backend=args.backend,
        schedule=args.schedule,
        threshold=args.threshold,
        max_iterations=args.max_iterations,
        queue_capacity=args.queue_capacity,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000.0,
        cache_capacity=args.cache_capacity,
        default_deadline_s=args.deadline_s,
        shards=args.shards,
        partitioner=args.partitioner,
        shard_threads=args.shard_threads,
        shard_policy=args.shard_policy,
        staleness=args.staleness,
    )
    tracer = None
    if args.trace is not None:
        from repro.telemetry import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
    server = InferenceServer(config)
    try:
        for spec in args.models:
            name, _, path = spec.rpartition("=")
            if not name:
                from pathlib import Path

                path = spec
                name = Path(spec).stem
            model = server.load_model(name, path)
            print(
                f"registered {name}: {model.graph.n_nodes} nodes, "
                f"plan {model.plan.qualified}",
                file=sys.stderr,
            )
        if args.socket is not None:
            host, port = _parse_hostport(args.socket)
            serve_socket(server, host, port)
        else:
            serve_stdin(server)
        if args.stats:
            print(json.dumps(server.stats(), indent=2, sort_keys=True))
    finally:
        server.stop()
        if tracer is not None:
            from repro.telemetry import set_tracer

            set_tracer(None)
            _write_trace(tracer, args.trace)
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.serve.transport import request_over_socket

    host, port = _parse_hostport(args.connect)
    if args.op != "query":
        payload = {"op": args.op}
    else:
        evidence = {}
        for clamp in filter(None, args.evidence.split(",")):
            node, _, state = clamp.partition("=")
            if not _ or not node:
                print(f"error: bad --evidence clamp {clamp!r} "
                      "(expected node=state)", file=sys.stderr)
                return 2
            evidence[node.strip()] = int(state)
        payload = {"op": "query", "model": args.model, "evidence": evidence,
                   "use_cache": not args.no_cache}
        if args.nodes:
            payload["nodes"] = [n.strip() for n in args.nodes.split(",")]
    try:
        response = request_over_socket(host, port, payload, timeout=args.timeout)
    except (ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    response.pop("op", None)  # parse_line defaults it in; not part of the answer
    print(json.dumps(response, indent=2, sort_keys=True))
    if not response.get("ok"):
        return 1
    if args.expect_posterior:
        posteriors = response.get("posteriors")
        if not isinstance(posteriors, dict) or not posteriors:
            print("error: response carries no posteriors", file=sys.stderr)
            return 1
        for name, probs in posteriors.items():
            if (
                not isinstance(probs, list)
                or not probs
                or any((not isinstance(p, (int, float)) or p < -1e-9) for p in probs)
                or abs(sum(probs) - 1.0) > 1e-4
            ):
                print(f"error: malformed posterior for {name!r}: {probs}",
                      file=sys.stderr)
                return 1
        print(f"posteriors OK ({len(posteriors)} nodes)", file=sys.stderr)
    return 0


def _cmd_update(args) -> int:
    import json

    from repro.serve.transport import request_over_socket

    host, port = _parse_hostport(args.connect)
    payloads: list[dict] = []
    if args.journal is not None:
        if args.add_node or args.add_edge or args.remove_edge or args.detach_node:
            print("error: --journal replaces the delta flags; use one or the other",
                  file=sys.stderr)
            return 2
        from repro.stream.delta import DeltaJournal

        journal = DeltaJournal.load(args.journal)
        if not len(journal):
            print(f"error: journal {args.journal!r} is empty", file=sys.stderr)
            return 2
        payloads = [delta.to_payload() for delta in journal]
    else:
        delta: dict = {}
        add_nodes = []
        for spec in args.add_node:
            name, eq, prior = spec.partition("=")
            if not name:
                print(f"error: bad --add-node {spec!r} (expected NAME[=p0,p1,...])",
                      file=sys.stderr)
                return 2
            entry: dict = {"name": name.strip()}
            if eq:
                try:
                    entry["prior"] = [float(p) for p in prior.split(",")]
                except ValueError:
                    print(f"error: bad prior in --add-node {spec!r}", file=sys.stderr)
                    return 2
            add_nodes.append(entry)
        if add_nodes:
            delta["add_nodes"] = add_nodes
        for flag, key in (("add_edge", "add_edges"), ("remove_edge", "remove_edges")):
            pairs = []
            for spec in getattr(args, flag):
                u, sep, v = spec.partition(",")
                if not sep or not u.strip() or not v.strip():
                    print(f"error: bad --{flag.replace('_', '-')} {spec!r} "
                          "(expected U,V)", file=sys.stderr)
                    return 2
                pairs.append([u.strip(), v.strip()])
            if pairs:
                delta[key] = pairs
        if args.detach_node:
            delta["detach_nodes"] = [n.strip() for n in args.detach_node]
        if not delta:
            print("error: nothing to apply; pass delta flags or --journal",
                  file=sys.stderr)
            return 2
        payloads = [delta]

    for delta in payloads:
        payload = {"op": "update", "model": args.model, **delta}
        try:
            response = request_over_socket(host, port, payload, timeout=args.timeout)
        except (ConnectionError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        response.pop("op", None)  # parse_line defaults it in; not part of the answer
        print(json.dumps(response, indent=2, sort_keys=True))
        if not response.get("ok"):
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        from repro.analysis.__main__ import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "profile":
        return _cmd_profile(args)

    if args.command == "query":
        return _cmd_query(args)

    if args.command == "update":
        return _cmd_update(args)

    if args.command == "backends":
        from repro.backends.registry import available_backends

        for name in available_backends():
            print(name)
        return 0


    if args.command == "features":
        from repro.credo.features import FEATURE_NAMES, extract_features
        from repro.io.detect import load_graph

        graph = load_graph(args.path, args.edge_path)
        for name, value in zip(FEATURE_NAMES, extract_features(graph)):
            print(f"{name:18s} {value:.6g}")
        return 0

    if args.command == "convert":
        from repro.io.detect import load_graph
        from repro.io.mtx import write_mtx_graph

        graph = load_graph(args.path)
        if not graph.uniform:
            print(
                "error: the MTX dual-file format needs constant-width "
                "beliefs (see §2.2); this network is heterogeneous",
                file=sys.stderr,
            )
            return 1
        nodes = f"{args.out_prefix}.nodes"
        edges = f"{args.out_prefix}.edges"
        write_mtx_graph(graph, nodes, edges)
        print(f"wrote {nodes} and {edges} "
              f"({graph.n_nodes} nodes, {graph.n_edges // 2} undirected edges)")
        return 0

    # run
    from repro.core.convergence import ConvergenceCriterion
    from repro.credo.runner import Credo

    schedule = args.schedule
    if args.no_work_queue and schedule is None:
        schedule = "sync"
    credo = Credo(
        device=args.device,
        criterion=ConvergenceCriterion(
            threshold=args.threshold, max_iterations=args.max_iterations
        ),
        schedule=schedule,
    )
    if args.train:
        credo.train(profile="smoke", use_cases=("binary",))
    if args.verify_kernels:
        from repro.io.detect import load_graph

        if not _verify_kernels_preflight(load_graph(args.path, args.edge_path)):
            return 1
    if args.trace is not None:
        from repro.telemetry import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            result = credo.run_file(
                args.path, args.edge_path, backend=args.backend,
                shards=args.shards, partitioner=args.partitioner,
                policy=args.shard_policy, staleness=args.staleness,
                executor=args.executor, layout=args.layout,
            )
        _write_trace(tracer, args.trace)
    else:
        result = credo.run_file(
            args.path, args.edge_path, backend=args.backend,
            shards=args.shards, partitioner=args.partitioner,
            policy=args.shard_policy, staleness=args.staleness,
            executor=args.executor, layout=args.layout,
        )
    print(f"backend       {result.backend}")
    print(f"schedule      {result.detail.get('schedule', '-')}")
    if args.executor or args.layout or "executor" in result.detail:
        print(f"executor      {result.detail.get('executor', 'interpreted')}")
    if "n_shards" in result.detail or "n_devices" in result.detail:
        shards = result.detail.get("n_shards", result.detail.get("n_devices"))
        print(f"shards        {shards} ({result.detail.get('partitioner', '-')}, "
              f"cut {result.detail.get('cut_fraction', 0.0):.3f})")
    if result.detail.get("policy"):
        print(f"shard policy  {result.detail['policy']} "
              f"(staleness {result.detail.get('staleness', 0)}, "
              f"barrier idle {result.detail.get('barrier_idle_s', 0.0):.6f}s)")
    print(f"iterations    {result.iterations}")
    print(f"converged     {result.converged}")
    print(f"wall time     {result.wall_time:.4f}s")
    print(f"modeled time  {result.modeled_time:.4f}s")
    with np.printoptions(precision=4, suppress=True):
        for i in range(min(args.top, len(result.beliefs))):
            print(f"node {i}: {result.beliefs[i]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The paper's three evaluation use cases (§4).

"The first use case represents a simple binary true/false belief network.
The second one models virus propagation with three states wherein people
can be uninfected, infected or recovered.  The final one mimics image
correction with the beliefs in each bit's value in a 32-bit image's
pixels."

Each module supplies the state semantics (priors and the shared joint
probability matrix) to overlay on any benchmark topology, plus a
domain-level API used by the examples.
"""

from repro.usecases.binary import binary_use_case, BINARY_STATES
from repro.usecases.virus import virus_use_case, VirusModel, VIRUS_STATES
from repro.usecases.image import image_use_case, noisy_image_graph, decode_image

__all__ = [
    "binary_use_case",
    "BINARY_STATES",
    "virus_use_case",
    "VirusModel",
    "VIRUS_STATES",
    "image_use_case",
    "noisy_image_graph",
    "decode_image",
    "USE_CASES",
]

#: use-case name → number of beliefs (§4's three configurations)
USE_CASES = {"binary": 2, "virus": 3, "image": 32}

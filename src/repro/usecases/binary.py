"""Binary true/false belief use case (paper §4, first configuration).

Rumor-style diffusion: every node holds a belief over {false, true}; the
shared potential couples neighbours toward agreement.  This is the
configuration the paper's figure subset (the bold Table 1 rows) uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.potentials import attractive_potential

__all__ = ["BINARY_STATES", "binary_use_case"]

BINARY_STATES = ("false", "true")


def binary_use_case(
    rng: np.random.Generator,
    n_nodes: int,
    *,
    coupling: float = 0.75,
    believer_fraction: float = 0.1,
    believer_confidence: float = 0.9,
) -> tuple[np.ndarray, np.ndarray]:
    """Priors and shared potential for the binary use case.

    A ``believer_fraction`` of nodes start confident the rumor is true;
    the rest lean mildly false with Dirichlet jitter (the paper's
    "randomly encode[d] generated beliefs").
    """
    if not 0.0 <= believer_fraction <= 1.0:
        raise ValueError("believer_fraction must lie in [0, 1]")
    priors = rng.dirichlet((3.0, 1.0), size=n_nodes).astype(np.float32)
    believers = rng.random(n_nodes) < believer_fraction
    priors[believers] = (1.0 - believer_confidence, believer_confidence)
    potential = attractive_potential(2, coupling)
    return priors, potential

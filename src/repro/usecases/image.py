"""Image-correction use case (paper §4, third configuration).

The paper "mimics image correction with the beliefs in each bit's value
in a 32-bit image's pixels": 32 beliefs per node.  We realize it as MRF
denoising over a lattice: each pixel holds a distribution over 32
intensity levels, priors come from the observed noisy pixel through a
Gaussian noise likelihood, and a smoothness potential couples
neighbouring pixels (closer levels are more compatible) — the "same
error rate for any pixel applies to all others" assumption of §2.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.graphs.grids import grid_edges

__all__ = ["image_use_case", "smoothness_potential", "noisy_image_graph", "decode_image"]

N_LEVELS = 32


def smoothness_potential(
    n_levels: int = N_LEVELS, *, sigma: float = 1.2, truncation: float = 2.0
) -> np.ndarray:
    """Truncated-quadratic compatibility:
    ψ(a, b) ∝ exp(−min(|a−b|, truncation)² / 2σ²).

    The truncation is the standard edge-preserving robustness trick
    (Boykov/Felzenszwalb stereo potentials): neighbouring pixels prefer
    close levels, but a genuine step edge costs no more than the
    truncation, so BP smooths noise without blurring boundaries.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if truncation <= 0:
        raise ValueError("truncation must be positive")
    levels = np.arange(n_levels)
    diff = np.minimum(np.abs(levels[:, None] - levels[None, :]), truncation)
    mat = np.exp(-(diff.astype(np.float64) ** 2) / (2.0 * sigma**2))
    return (mat / mat.sum(axis=1, keepdims=True)).astype(np.float32)


def _noise_likelihood(observed: np.ndarray, n_levels: int, noise_sigma: float) -> np.ndarray:
    levels = np.arange(n_levels, dtype=np.float64)
    diff = observed.reshape(-1, 1) - levels[None, :]
    logp = -(diff**2) / (2.0 * noise_sigma**2)
    logp -= logp.max(axis=1, keepdims=True)
    p = np.exp(logp)
    return (p / p.sum(axis=1, keepdims=True)).astype(np.float32)


def image_use_case(
    rng: np.random.Generator,
    n_nodes: int,
    *,
    n_levels: int = N_LEVELS,
    noise_sigma: float = 3.0,
    smooth_sigma: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Priors and shared potential for an arbitrary topology: random
    "observed" levels pushed through the noise likelihood (used when the
    benchmark overlays 32 beliefs on a non-grid graph)."""
    observed = rng.integers(0, n_levels, size=n_nodes).astype(np.float64)
    priors = _noise_likelihood(observed, n_levels, noise_sigma)
    return priors, smoothness_potential(n_levels, sigma=smooth_sigma)


def noisy_image_graph(
    clean: np.ndarray,
    *,
    noise_sigma: float = 3.0,
    smooth_sigma: float = 1.0,
    truncation: float = 2.0,
    n_levels: int = N_LEVELS,
    seed: int = 0,
    layout: str = "aos",
) -> tuple[BeliefGraph, np.ndarray]:
    """Build the denoising MRF for a 2-D integer image.

    Gaussian noise (σ = ``noise_sigma``) corrupts ``clean``; pixel priors
    are the per-level likelihoods of the noisy observation.  Returns
    ``(graph, noisy_image)``; decode the posterior with
    :func:`decode_image`.
    """
    clean = np.asarray(clean)
    if clean.ndim != 2:
        raise ValueError("clean image must be 2-D")
    if clean.min() < 0 or clean.max() >= n_levels:
        raise ValueError(f"pixel levels must lie in [0, {n_levels})")
    rng = np.random.default_rng(seed)
    noisy = clean + rng.normal(0.0, noise_sigma, size=clean.shape)
    noisy = np.clip(np.rint(noisy), 0, n_levels - 1)
    priors = _noise_likelihood(noisy.reshape(-1), n_levels, noise_sigma)
    edges = grid_edges(*clean.shape)
    graph = BeliefGraph.from_undirected(
        priors,
        edges,
        smoothness_potential(n_levels, sigma=smooth_sigma, truncation=truncation),
        layout=layout,
        dedupe=False,
    )
    return graph, noisy.astype(np.int64)


def decode_image(beliefs: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """MAP decode: most probable level per pixel, reshaped to the image."""
    return beliefs.argmax(axis=1).reshape(shape)

"""Virus-propagation use case (paper §4, second configuration).

Three states per person — uninfected / infected / recovered — with a
shared pairwise potential encoding that "a virus affects all people
identically" (§2.2): contact with an infected neighbour pulls a node
toward infection, recovered neighbours are mildly protective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VIRUS_STATES", "VirusModel", "virus_use_case"]

VIRUS_STATES = ("uninfected", "infected", "recovered")


@dataclass(frozen=True)
class VirusModel:
    """Epidemic coupling parameters.

    ``transmission`` is the compatibility weight between an infected node
    and an infected neighbour; ``recovery_shield`` down-weights infection
    next to recovered individuals.
    """

    transmission: float = 0.35
    recovery_shield: float = 0.15
    homophily: float = 0.5

    def potential(self) -> np.ndarray:
        """The shared 3x3 compatibility matrix these parameters induce."""
        t, r, h = self.transmission, self.recovery_shield, self.homophily
        if not (0 < t < 1 and 0 < r < 1 and 0 < h < 1):
            raise ValueError("virus parameters must lie in (0, 1)")
        # rows: my state; cols: neighbour state; higher = more compatible
        mat = np.array(
            [
                # uninfected, infected, recovered neighbour
                [h, t, (1 - h - t) + r],  # I am uninfected
                [t, h, 1 - h - t],        # I am infected
                [(1 - h - t) + r, 1 - h - t, h],  # I am recovered
            ],
            dtype=np.float32,
        )
        mat = np.maximum(mat, 1e-3)
        return mat / mat.sum(axis=1, keepdims=True)


def virus_use_case(
    rng: np.random.Generator,
    n_nodes: int,
    *,
    model: VirusModel | None = None,
    infected_fraction: float = 0.05,
    recovered_fraction: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Priors and shared potential for the 3-state epidemic use case."""
    if infected_fraction + recovered_fraction > 1.0:
        raise ValueError("initial fractions exceed 1")
    model = model or VirusModel()
    priors = rng.dirichlet((6.0, 1.0, 1.0), size=n_nodes).astype(np.float32)
    roll = rng.random(n_nodes)
    infected = roll < infected_fraction
    recovered = (roll >= infected_fraction) & (
        roll < infected_fraction + recovered_fraction
    )
    priors[infected] = (0.05, 0.9, 0.05)
    priors[recovered] = (0.05, 0.05, 0.9)
    return priors, model.potential()

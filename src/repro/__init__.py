"""Credo: optimized belief propagation for parallel processing.

A full reproduction of *"Rumor Has It: Optimizing the Belief Propagation
Algorithm for Parallel Processing"* (Trotter, Wood & Huang, ICPP Workshops
2020).  The package provides:

``repro.core``
    The belief-propagation algorithms themselves: the classic three-phase
    tree algorithm, loopy BP with per-node and per-edge processing
    paradigms, work queues, convergence checks and the shared
    joint-probability-matrix refinement.

``repro.io``
    Input processing: a full BIF parser, an XML-BIF parser and the paper's
    streaming MTX-derived dual-file format.

``repro.gpusim``
    A SIMT GPU cost-model simulator (Pascal / Volta / Ampere device specs)
    standing in for the CUDA hardware used by the paper.

``repro.backends``
    Execution engines: reference Python, optimized single-threaded
    ("C Node" / "C Edge"), simulated OpenMP and OpenACC, and the CUDA
    Node / Edge implementations running on :mod:`repro.gpusim`.

``repro.ml``
    A from-scratch classifier library (decision tree, random forest, kNN,
    naive Bayes, linear SVM, MLP, gradient boosting) standing in for
    scikit-learn.

``repro.credo``
    The end-to-end system: metadata feature extraction, the rule + random
    forest backend selector and the ``Credo`` facade.

``repro.graphs`` / ``repro.usecases``
    Workload generators for Table 1 of the paper and the three evaluation
    use cases (binary beliefs, virus propagation, image correction).

Quickstart::

    >>> from repro import BeliefGraph, LoopyBP
    >>> from repro.graphs import synthetic_graph
    >>> g = synthetic_graph(100, 400, n_states=2, seed=0)
    >>> result = LoopyBP().run(g)
    >>> result.converged
    True
"""

__version__ = "1.0.0"

# Lazy attribute loading (PEP 562) keeps `import repro` cheap and lets the
# subpackages be imported independently.
_EXPORTS = {
    "BeliefGraph": ("repro.core.graph", "BeliefGraph"),
    "PotentialStore": ("repro.core.potentials", "PotentialStore"),
    "SharedPotentialStore": ("repro.core.potentials", "SharedPotentialStore"),
    "LoopyBP": ("repro.core.loopy", "LoopyBP"),
    "LoopyConfig": ("repro.core.loopy", "LoopyConfig"),
    "TreeBP": ("repro.core.tree_bp", "TreeBP"),
    "RunResult": ("repro.backends.base", "RunResult"),
    "Credo": ("repro.credo.runner", "Credo"),
    "from_networkx": ("repro.interop", "from_networkx"),
    "to_networkx": ("repro.interop", "to_networkx"),
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(__all__)

"""Dense runtime state for the loopy-BP kernels.

The :class:`BeliefGraph` is the user-facing container; before running BP we
"compile" it into flat, contiguous arrays (the paper's compressed adjacency
lists plus dense belief/message matrices, §3.4) that the vectorized kernels
operate on.  All kernels share this state object, so the per-node and
per-edge paradigms differ only in traversal and accumulation order — exactly
the distinction the paper draws in §3.3.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.numeric import TINY32, safe_log

__all__ = ["LoopyState", "TINY", "normalize_rows"]

_FLOAT = np.float32

#: Floor applied before logarithms; preserves one-hot evidence to within
#: float32 resolution while keeping log-space arithmetic finite.
#: (Re-exported from :mod:`repro.core.numeric`, the single home of the
#: numerical-safety floors.)
TINY = TINY32


def normalize_rows(matrix: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Row-normalize in place-ish; all-zero rows become uniform."""
    total = matrix.sum(axis=1, keepdims=True)
    width = matrix.shape[1]
    zero = total.reshape(-1) <= 0
    if zero.any():
        matrix = matrix.copy() if out is None else matrix
        matrix[zero] = 1.0
        total = matrix.sum(axis=1, keepdims=True)
    if out is None:
        return matrix / total
    np.divide(matrix, total, out=out)
    return out


class LoopyState:
    """Flat arrays for one BP run over a uniform-width graph.

    Attributes
    ----------
    beliefs : (n, b) float32
        Current node beliefs (normalized rows).
    log_priors : (n, b) float32
        log of the clamp-adjusted priors (observed nodes are one-hot).
    messages : (m, b) float32
        Current message along each directed edge (normalized rows).
    src, dst, rev : (m,) int64
        Directed edge endpoints and reverse-edge ids (−1 when unpaired).
    in_offsets, in_edge_ids : CSR by destination
        ``in_edge_ids[in_offsets[v]:in_offsets[v+1]]`` are the edges into v.
    potentials : (b, b) or (m, b, b) float32
        Shared matrix or per-edge stack.
    free_mask : (n,) bool
        Nodes whose beliefs BP may update (i.e. not observed).
    """

    def __init__(self, graph: BeliefGraph):
        if not graph.uniform:
            raise ValueError(
                "the vectorized kernels require constant-width beliefs; "
                "run heterogeneous graphs through the reference backend "
                "(see paper §2.2 on the shared-matrix refinement)"
            )
        self.graph = graph
        self.n = graph.n_nodes
        self.m = graph.n_edges
        self.b = graph.n_states

        self.beliefs = np.ascontiguousarray(graph.beliefs.dense(), dtype=_FLOAT)

        priors = np.ascontiguousarray(graph.priors.dense(), dtype=_FLOAT)
        observed = graph.observed
        if observed.any():
            priors = priors.copy()
            priors[observed] = TINY
            priors[observed, graph.observed_state[observed]] = 1.0
        self.log_priors = safe_log(priors, TINY)

        self.src = graph.src
        self.dst = graph.dst
        self.rev = graph.reverse_edge
        self.in_offsets = graph.in_offsets
        self.in_edge_ids = graph.in_edge_ids
        self.out_offsets = graph.out_offsets
        self.out_edge_ids = graph.out_edge_ids
        self.free_mask = ~observed

        if self.m == 0:
            self.potentials = np.eye(self.b, dtype=_FLOAT)
            self.shared_potential = True
        elif graph.potentials.shared:
            self.potentials = np.ascontiguousarray(graph.potentials.matrix(0))
            self.shared_potential = True
        else:
            self.potentials = np.ascontiguousarray(graph.potentials.stacked())
            self.shared_potential = False

        # Uniform starting messages: every edge initially says "no opinion".
        self.messages = np.full((self.m, self.b), 1.0 / self.b, dtype=_FLOAT)
        # Σ_in log m, maintained incrementally by the edge kernel (this is
        # the accumulator the CUDA edge implementation updates atomically).
        self.log_msg_sum = np.zeros((self.n, self.b), dtype=_FLOAT)
        self._rebuild_log_msg_sum()

    # ------------------------------------------------------------------
    def _rebuild_log_msg_sum(self) -> None:
        self.log_messages = safe_log(self.messages, TINY)
        self.log_msg_sum[:] = 0.0
        if self.m:
            for s in range(self.b):
                self.log_msg_sum[:, s] = np.bincount(
                    self.dst, weights=self.log_messages[:, s], minlength=self.n
                ).astype(_FLOAT)

    def _apply_potential(
        self, source: np.ndarray, edge_ids: np.ndarray, semiring: str
    ) -> np.ndarray:
        """raw_e[c] = ⊕_b source_e[b] · J_e[b, c] for ⊕ ∈ {sum, max}."""
        if semiring == "sum":
            if self.shared_potential:
                return source @ self.potentials
            return np.einsum("eb,ebc->ec", source, self.potentials[edge_ids])
        if semiring != "max":
            raise ValueError(f"unknown semiring {semiring!r}")
        # Max-product (MAP) variant: chunked to bound the (chunk, b, b)
        # temporary for large edge sets.
        out = np.empty((len(source), self.b), dtype=_FLOAT)
        step = max(1, 1 << 16)
        for lo in range(0, len(source), step):
            hi = min(lo + step, len(source))
            mats = (
                self.potentials
                if self.shared_potential
                else self.potentials[edge_ids[lo:hi]]
            )
            out[lo:hi] = (source[lo:hi, :, None] * mats).max(axis=1)
        return out

    def propagate_messages(
        self, edge_ids: np.ndarray | None = None, semiring: str = "sum"
    ) -> np.ndarray:
        """m_e = src-belief · J_e for the given edges (broadcast rule).

        Returns normalized ``(len(edge_ids), b)`` messages; does not store.
        """
        ids = np.arange(self.m, dtype=np.int64) if edge_ids is None else edge_ids
        source = self.beliefs[self.src[ids]]
        raw = self._apply_potential(source, ids, semiring)
        return normalize_rows(raw)

    def cavity_messages(
        self, edge_ids: np.ndarray | None = None, semiring: str = "sum"
    ) -> np.ndarray:
        """Sum-product messages: exclude the reverse message from the
        source belief before applying the potential."""
        ids = np.arange(self.m, dtype=np.int64) if edge_ids is None else edge_ids
        source = self.beliefs[self.src[ids]].astype(_FLOAT)
        rev = self.rev[ids]
        paired = rev >= 0
        if paired.any():
            back = np.maximum(self.messages[rev[paired]], TINY)
            cavity = source.copy()
            cavity[paired] = source[paired] / back
            source = normalize_rows(cavity)
        raw = self._apply_potential(source, ids, semiring)
        return normalize_rows(raw)

    def combine_full(self) -> np.ndarray:
        """Beliefs of *all* nodes from priors and log-message sums
        (Algorithm 1 lines 10–11: combine_updates + marginalize)."""
        logits = self.log_priors + self.log_msg_sum
        logits -= logits.max(axis=1, keepdims=True)
        out = np.exp(logits, dtype=_FLOAT)
        return normalize_rows(out, out=out)

    def combine_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """Beliefs of the given nodes only."""
        logits = self.log_priors[nodes] + self.log_msg_sum[nodes]
        logits -= logits.max(axis=1, keepdims=True)
        out = np.exp(logits, dtype=_FLOAT)
        return normalize_rows(out, out=out)

    def store_messages(self, edge_ids: np.ndarray, new_msgs: np.ndarray) -> np.ndarray:
        """Write messages and incrementally update the per-node log-sums.

        The scatter-add mirrors the atomic accumulation of the CUDA edge
        kernel: each edge adds ``log m_new − log m_old`` into its
        destination row.  Returns the per-edge L1 message change (the
        quantity the edge-paradigm work queue filters on).
        """
        old = self.messages[edge_ids]
        deltas = np.abs(new_msgs - old).sum(axis=1)
        new_logs = safe_log(new_msgs, TINY)
        log_delta = new_logs - self.log_messages[edge_ids]
        dsts = self.dst[edge_ids]
        for s in range(self.b):
            self.log_msg_sum[:, s] += np.bincount(
                dsts, weights=log_delta[:, s], minlength=self.n
            ).astype(_FLOAT)
        self.messages[edge_ids] = new_msgs
        self.log_messages[edge_ids] = new_logs
        return deltas

    def gather_in_edges(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Edge ids entering each node of ``nodes``, concatenated, plus the
        local segment offsets (len(nodes)+1) into that concatenation."""
        starts = self.in_offsets[nodes]
        ends = self.in_offsets[nodes + 1]
        sizes = ends - starts
        local_offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=local_offsets[1:])
        total = int(local_offsets[-1])
        if total == 0:
            return np.empty(0, dtype=np.int64), local_offsets
        # Vectorized ragged gather: positions = start[seg] + rank-in-segment.
        seg = np.repeat(np.arange(len(nodes)), sizes)
        rank = np.arange(total) - np.repeat(local_offsets[:-1], sizes)
        return self.in_edge_ids[starts[seg] + rank], local_offsets

    def gather_out_edges(self, nodes: np.ndarray) -> np.ndarray:
        """All edge ids originating at any node of ``nodes`` (concatenated)."""
        starts = self.out_offsets[nodes]
        sizes = self.out_offsets[nodes + 1] - starts
        total = int(sizes.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        seg_starts = np.repeat(starts, sizes)
        offsets = np.zeros(len(nodes), dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        rank = np.arange(total) - np.repeat(offsets, sizes)
        return self.out_edge_ids[seg_starts + rank]

    def export_beliefs(self) -> None:
        """Copy the dense beliefs back into the graph's belief store."""
        self.graph.beliefs.load_dense(self.beliefs)

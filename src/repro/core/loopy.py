"""Loopy belief propagation driver (paper Algorithm 1, §3.3, §3.5).

:class:`LoopyBP` orchestrates the iteration loop: it compiles the graph
into a :class:`~repro.core.state.LoopyState`, sweeps it with the per-node
or per-edge kernel, evaluates the convergence criterion (sum of L1 belief
changes, Algorithm 1 line 12) and drives a pluggable
:class:`~repro.core.scheduler.Schedule` that decides which elements each
sweep processes — full synchronous sweeps, the paper's §3.5 work queue,
max-residual priority, or relaxed priority sampling.

There is exactly **one** driver loop; the two processing paradigms (§3.3)
differ only in the element space the schedule ranges over (nodes vs
directed edges) and the sweep kernel, both captured by a small paradigm
plan.

Two update rules are available:

``"sum_product"`` (default)
    Standard loopy BP messages with cavity exclusion — exact on trees,
    the semantics the paper's references (Pearl; Gonzalez et al.) define.

``"broadcast"``
    The literal Algorithm 1 of the paper: every node broadcasts its full
    current belief along each out-edge without excluding the recipient's
    own contribution.  Cheaper per edge, approximate on trees.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.scheduler import SCHEDULES, make_schedule, normalize_schedule
from repro.core.state import LoopyState
from repro.core.sweepstats import RunStats, SweepStats
from repro.kernels.executor import cached_executor, normalize_executor
from repro.telemetry import get_tracer

__all__ = ["LoopyConfig", "LoopyResult", "LoopyBP"]


@dataclass(frozen=True)
class LoopyConfig:
    """Knobs of a loopy-BP run.

    ``paradigm`` selects per-node or per-edge processing (§3.3);
    ``schedule`` selects the update-scheduling policy (one of
    :data:`~repro.core.scheduler.SCHEDULES` — ``"sync"``,
    ``"work_queue"`` (the §3.5 optimization, default), ``"residual"`` or
    ``"relaxed"``); ``edge_chunks`` controls how much freshness the edge
    paradigm sees within one iteration; ``damping`` mixes in the previous
    message (an extension, 0 disables); ``semiring`` switches to
    max-product for MAP queries (extension).

    ``executor`` selects how each sweep is carried out (DESIGN.md §13):
    ``"interpreted"`` (default) dispatches the historical kernel
    functions per call; ``"compiled"`` lowers the state once into fused
    gather–scatter programs (:mod:`repro.kernels`) and runs full sweeps
    on a natural-order fast path — bit-exact with the interpreted
    executor, validated in the parity grid.

    ``batch_fraction``, ``relaxation`` and ``schedule_seed`` parameterize
    the priority schedules; the others ignore them.

    ``verify_kernels`` additionally runs the buffer-op IR runtime check
    (:func:`repro.kernels.ir.check_buffers`) against the compiled
    executor's live buffers when the plan is built — shape, dtype and
    alias structure must match the program the lowering declared.  The
    static program verification always runs at lowering time; this flag
    only adds the runtime cross-check (a no-op for the interpreted
    executor, which lowers nothing).

    ``work_queue`` is a **deprecated** boolean shim: ``True`` maps to
    ``schedule="work_queue"``, ``False`` to ``schedule="sync"`` (with a
    :class:`DeprecationWarning`).  After normalization it is reset to
    ``None``; read ``schedule`` instead.
    """

    paradigm: str = "node"
    update_rule: str = "sum_product"
    semiring: str = "sum"
    executor: str = "interpreted"
    verify_kernels: bool = False
    criterion: ConvergenceCriterion = field(default_factory=ConvergenceCriterion)
    schedule: str = "work_queue"
    work_queue: bool | None = None
    requeue_downstream: bool = True
    damping: float = 0.0
    edge_chunks: int = 8
    batch_fraction: float = 0.5
    relaxation: int = 2
    schedule_seed: int = 0

    def __post_init__(self) -> None:
        if self.paradigm not in ("node", "edge"):
            raise ValueError(f"paradigm must be 'node' or 'edge', got {self.paradigm!r}")
        if self.update_rule not in ("sum_product", "broadcast"):
            raise ValueError(f"unknown update_rule {self.update_rule!r}")
        if self.semiring not in ("sum", "max"):
            raise ValueError(f"unknown semiring {self.semiring!r}")
        if not 0.0 <= self.damping < 1.0:
            raise ValueError("damping must lie in [0, 1)")
        if self.edge_chunks < 1:
            raise ValueError("edge_chunks must be at least 1")
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError("batch_fraction must lie in (0, 1]")
        if self.relaxation < 1:
            raise ValueError("relaxation must be at least 1")
        if self.work_queue is not None:
            warnings.warn(
                "LoopyConfig(work_queue=...) is deprecated; use "
                "schedule='work_queue' / schedule='sync'",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(
                self, "schedule", "work_queue" if self.work_queue else "sync"
            )
            object.__setattr__(self, "work_queue", None)
        object.__setattr__(self, "schedule", normalize_schedule(self.schedule))
        object.__setattr__(self, "executor", normalize_executor(self.executor))


@dataclass
class LoopyResult:
    """Outcome of a loopy-BP run (any paradigm, any schedule)."""

    beliefs: np.ndarray
    iterations: int
    converged: bool
    delta_history: list[float]
    run_stats: RunStats
    config: LoopyConfig

    @property
    def final_delta(self) -> float:
        """The last iteration's global L1 belief change."""
        return self.delta_history[-1] if self.delta_history else 0.0

    @property
    def updates(self) -> int:
        """Total element updates across the run: message recomputations
        for the edge paradigm, node recomputations for the node paradigm
        — the hardware-independent measure of scheduling quality."""
        total = self.run_stats.total
        if self.config.paradigm == "edge":
            return total.edges_processed
        return total.nodes_processed

    def belief(self, node: int) -> np.ndarray:
        """Posterior belief vector of one node."""
        return self.beliefs[node]

    def map_states(self) -> np.ndarray:
        """Most probable state per node under the final beliefs."""
        return self.beliefs.argmax(axis=1)


def _element_threshold_floor(n_states: int) -> float:
    """Smallest per-element delta distinguishable from float32 noise.

    Messages and beliefs are float32; a one-ulp limit cycle produces a
    persistent L1 delta of up to ~``n_states`` ulps, so draining against
    a threshold below that never terminates.  The *global* criterion is
    not floored — only the schedules' per-element convergence check.
    """
    return float(np.finfo(np.float32).eps) * max(n_states, 2)


def _verify_executor_buffers(executor, state: LoopyState) -> None:
    """Runtime kernel-IR check for executors that lower (duck-typed: the
    interpreted executor declares no programs and is skipped)."""
    verify = getattr(executor, "verify_buffers", None)
    if verify is not None:
        verify(state)


@dataclass
class _Step:
    """One sweep's outcome, as the driver and schedule see it."""

    deltas: np.ndarray
    global_delta: float
    downstream: np.ndarray | None
    downstream_priority: np.ndarray | None
    stats: SweepStats


class _NodePlan:
    """Per-node paradigm: elements are nodes, deltas are belief deltas."""

    def __init__(self, state: LoopyState, cfg: LoopyConfig, executor_cache=None):
        self.state = state
        self.cfg = cfg
        self.n_elements = state.n
        self.executor = cached_executor(
            executor_cache, cfg.executor, state, paradigm="node"
        )
        if cfg.verify_kernels:
            _verify_executor_buffers(self.executor, state)
        # Per-element convergence threshold (§3.5): an element whose own
        # delta is below the global threshold drops out of the schedule.
        # This is the paper's semantics — "most nodes converge quickly
        # after a few iterations" — and the source of the Fig. 9 wins;
        # downstream re-enqueueing keeps the fixed point sound.
        self.element_threshold = max(
            cfg.criterion.effective_threshold(), _element_threshold_floor(state.b)
        )

    def sweep(self, active: np.ndarray, want_downstream: bool) -> _Step:
        state, cfg = self.state, self.cfg
        deltas, stats = self.executor.node_sweep(
            state,
            active,
            update_rule=cfg.update_rule,
            semiring=cfg.semiring,
            damping=cfg.damping,
        )
        downstream = downstream_priority = None
        if want_downstream and len(active):
            dirty_mask = deltas >= self.element_threshold
            dirty = active[dirty_mask]
            if len(dirty):
                sizes = state.out_offsets[dirty + 1] - state.out_offsets[dirty]
                downstream = state.dst[state.gather_out_edges(dirty)]
                downstream_priority = np.repeat(deltas[dirty_mask], sizes)
        return _Step(deltas, float(deltas.sum()), downstream, downstream_priority, stats)


class _EdgePlan:
    """Per-edge paradigm: elements are directed edges, deltas are message
    deltas; the global criterion still reduces over node beliefs."""

    def __init__(self, state: LoopyState, cfg: LoopyConfig, executor_cache=None):
        self.state = state
        self.cfg = cfg
        self.n_elements = state.m
        self.executor = cached_executor(
            executor_cache, cfg.executor, state, paradigm="edge", chunks=cfg.edge_chunks
        )
        if cfg.verify_kernels:
            _verify_executor_buffers(self.executor, state)
        # An edge is converged when its message moves less than the node
        # threshold split across the destination's in-edges: the combined
        # per-node perturbation of fully-pruned edges then stays within
        # the criterion.  (Belief deltas use the plain threshold; message
        # deltas accumulate degree-fold into a belief.)
        mean_in_degree = max(state.m / max(state.n, 1), 1.0)
        self.node_threshold = cfg.criterion.effective_threshold()
        self.element_threshold = max(
            self.node_threshold / mean_in_degree, _element_threshold_floor(state.b)
        )

    def sweep(self, active: np.ndarray, want_downstream: bool) -> _Step:
        state, cfg = self.state, self.cfg
        # Snapshot the beliefs this sweep can change, for the global
        # convergence reduction (Alg. 1 line 12).
        if len(active):
            cand_mask = np.zeros(state.n, dtype=bool)
            cand_mask[state.dst[active]] = True
            candidates = np.flatnonzero(cand_mask)
        else:
            candidates = np.empty(0, np.int64)
        before = state.beliefs[candidates].copy()
        edge_deltas, _touched, stats = self.executor.edge_sweep(
            state,
            active,
            update_rule=cfg.update_rule,
            semiring=cfg.semiring,
            damping=cfg.damping,
            chunks=cfg.edge_chunks,
        )
        node_deltas = np.abs(state.beliefs[candidates] - before).sum(axis=1)
        downstream = downstream_priority = None
        if want_downstream and len(candidates):
            changed_mask = node_deltas >= self.node_threshold
            changed = candidates[changed_mask]
            if len(changed):
                sizes = state.out_offsets[changed + 1] - state.out_offsets[changed]
                downstream = state.gather_out_edges(changed)
                downstream_priority = np.repeat(node_deltas[changed_mask], sizes)
        return _Step(
            edge_deltas,
            float(node_deltas.sum()),
            downstream,
            downstream_priority,
            stats,
        )


class LoopyBP:
    """Loopy belief propagation runner.

    >>> LoopyBP(paradigm="edge", schedule="residual").run(graph)  # doctest: +SKIP
    """

    def __init__(self, config: LoopyConfig | None = None, **overrides):
        base = config or LoopyConfig()
        self.config = replace(base, **overrides) if overrides else base

    # ------------------------------------------------------------------
    def run(
        self,
        graph: BeliefGraph,
        state: LoopyState | None = None,
        *,
        active_seed: np.ndarray | None = None,
        executor_cache: dict | None = None,
    ) -> LoopyResult:
        """Run BP to convergence (or the iteration cap) on ``graph``.

        The graph's belief store is updated in place with the final
        posteriors; the result additionally carries a dense copy.
        ``active_seed`` warm-starts the schedule on just those elements
        (see :meth:`Schedule.restrict`); ``executor_cache`` memoizes
        executor lowerings across runs over the same state buffers —
        both are the incremental re-convergence hooks (DESIGN.md §15).
        """
        state = state or LoopyState(graph)
        result = self._run(state, active_seed=active_seed, executor_cache=executor_cache)
        state.export_beliefs()
        return result

    # ------------------------------------------------------------------
    def _run(
        self,
        state: LoopyState,
        *,
        active_seed: np.ndarray | None = None,
        executor_cache: dict | None = None,
    ) -> LoopyResult:
        """The single driver loop, parameterized by (paradigm, schedule)."""
        cfg = self.config
        crit = cfg.criterion
        plan = (
            _NodePlan(state, cfg, executor_cache)
            if cfg.paradigm == "node"
            else _EdgePlan(state, cfg, executor_cache)
        )
        schedule = make_schedule(
            cfg.schedule,
            plan.n_elements,
            plan.element_threshold,
            batch_fraction=cfg.batch_fraction,
            relaxation=cfg.relaxation,
            seed=cfg.schedule_seed,
        )
        if active_seed is not None:
            schedule.restrict(np.asarray(active_seed, dtype=np.int64))
        want_downstream = cfg.requeue_downstream and schedule.wants_downstream

        tracer = get_tracer()
        run_stats = RunStats()
        history: list[float] = []
        converged = False
        iteration = 0
        with tracer.span("bp.run", cat="bp") as run_span:
            while iteration < crit.max_iterations:
                iteration += 1
                active = schedule.active
                with tracer.span("bp.sweep", cat="bp") as sweep_span:
                    step = plan.sweep(active, want_downstream)
                    history.append(step.global_delta)
                    with tracer.span("schedule.update", cat="schedule") as sched_span:
                        schedule.update(
                            active, step.deltas, step.downstream,
                            step.downstream_priority,
                        )
                        schedule.charge(step.stats)
                        if sched_span:
                            sched_span.set(
                                schedule=cfg.schedule,
                                queue_ops=step.stats.queue_ops,
                                atomic_ops=step.stats.atomic_ops,
                            )
                    run_stats.append(step.stats)
                    if sweep_span:
                        sweep_span.set(
                            iteration=iteration,
                            active=int(len(active)),
                            global_delta=step.global_delta,
                            executor=cfg.executor,
                            layout=state.graph.layout,
                            **step.stats.as_dict(),
                        )
                # A drained schedule means every element individually passed
                # its per-element convergence check (§3.5); exhaustive
                # schedules may also stop on the global sum criterion (their
                # sweep covers every unconverged element, so the partial sum
                # *is* the global delta).
                if (
                    schedule.exhaustive and crit.is_converged(step.global_delta)
                ) or schedule.drained:
                    converged = True
                    break
            if run_span:
                run_span.set(
                    paradigm=cfg.paradigm,
                    schedule=cfg.schedule,
                    executor=cfg.executor,
                    layout=state.graph.layout,
                    kernel_build_s=plan.executor.build_seconds,
                    n_elements=plan.n_elements,
                    iterations=iteration,
                    converged=converged,
                )

        return LoopyResult(
            beliefs=state.beliefs.copy(),
            iterations=iteration,
            converged=converged,
            delta_history=history,
            run_stats=run_stats,
            config=cfg,
        )

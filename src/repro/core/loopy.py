"""Loopy belief propagation driver (paper Algorithm 1, §3.3, §3.5).

:class:`LoopyBP` orchestrates the iteration loop: it compiles the graph
into a :class:`~repro.core.state.LoopyState`, sweeps it with the per-node
or per-edge kernel, evaluates the convergence criterion (sum of L1 belief
changes, Algorithm 1 line 12) and maintains the optional work queue of
unconverged elements (§3.5).

Two update rules are available:

``"sum_product"`` (default)
    Standard loopy BP messages with cavity exclusion — exact on trees,
    the semantics the paper's references (Pearl; Gonzalez et al.) define.

``"broadcast"``
    The literal Algorithm 1 of the paper: every node broadcasts its full
    current belief along each out-edge without excluding the recipient's
    own contribution.  Cheaper per edge, approximate on trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.edge_kernel import edge_sweep
from repro.core.graph import BeliefGraph
from repro.core.node_kernel import node_sweep
from repro.core.state import LoopyState
from repro.core.sweepstats import RunStats, SweepStats
from repro.core.workqueue import WorkQueue

__all__ = ["LoopyConfig", "LoopyResult", "LoopyBP"]


@dataclass(frozen=True)
class LoopyConfig:
    """Knobs of a loopy-BP run.

    ``paradigm`` selects per-node or per-edge processing (§3.3);
    ``work_queue`` toggles the §3.5 optimization; ``edge_chunks`` controls
    how much freshness the edge paradigm sees within one iteration;
    ``damping`` mixes in the previous message (an extension, 0 disables);
    ``semiring`` switches to max-product for MAP queries (extension).
    """

    paradigm: str = "node"
    update_rule: str = "sum_product"
    semiring: str = "sum"
    criterion: ConvergenceCriterion = field(default_factory=ConvergenceCriterion)
    work_queue: bool = True
    requeue_downstream: bool = True
    damping: float = 0.0
    edge_chunks: int = 8

    def __post_init__(self) -> None:
        if self.paradigm not in ("node", "edge"):
            raise ValueError(f"paradigm must be 'node' or 'edge', got {self.paradigm!r}")
        if self.update_rule not in ("sum_product", "broadcast"):
            raise ValueError(f"unknown update_rule {self.update_rule!r}")
        if self.semiring not in ("sum", "max"):
            raise ValueError(f"unknown semiring {self.semiring!r}")
        if not 0.0 <= self.damping < 1.0:
            raise ValueError("damping must lie in [0, 1)")
        if self.edge_chunks < 1:
            raise ValueError("edge_chunks must be at least 1")


@dataclass
class LoopyResult:
    """Outcome of a loopy-BP run."""

    beliefs: np.ndarray
    iterations: int
    converged: bool
    delta_history: list[float]
    run_stats: RunStats
    config: LoopyConfig

    @property
    def final_delta(self) -> float:
        """The last iteration's global L1 belief change."""
        return self.delta_history[-1] if self.delta_history else 0.0

    def belief(self, node: int) -> np.ndarray:
        """Posterior belief vector of one node."""
        return self.beliefs[node]

    def map_states(self) -> np.ndarray:
        """Most probable state per node under the final beliefs."""
        return self.beliefs.argmax(axis=1)


class LoopyBP:
    """Loopy belief propagation runner.

    >>> LoopyBP(paradigm="edge", work_queue=False).run(graph)   # doctest: +SKIP
    """

    def __init__(self, config: LoopyConfig | None = None, **overrides):
        base = config or LoopyConfig()
        self.config = replace(base, **overrides) if overrides else base

    # ------------------------------------------------------------------
    def run(self, graph: BeliefGraph, state: LoopyState | None = None) -> LoopyResult:
        """Run BP to convergence (or the iteration cap) on ``graph``.

        The graph's belief store is updated in place with the final
        posteriors; the result additionally carries a dense copy.
        """
        cfg = self.config
        state = state or LoopyState(graph)
        if cfg.paradigm == "node":
            result = self._run_node(state)
        else:
            result = self._run_edge(state)
        state.export_beliefs()
        return result

    # ------------------------------------------------------------------
    def _run_node(self, state: LoopyState) -> LoopyResult:
        cfg = self.config
        crit = cfg.criterion
        n = state.n
        run_stats = RunStats()
        history: list[float] = []
        converged = False
        # Per-element convergence threshold (§3.5): an element whose own
        # delta is below the global threshold drops out of the queue.
        # This is the paper's semantics — "most nodes converge quickly
        # after a few iterations" — and the source of the Fig. 9 wins;
        # downstream re-enqueueing keeps the fixed point sound.
        queue = (
            WorkQueue(n, crit.effective_threshold()) if cfg.work_queue else None
        )
        all_nodes = np.arange(n, dtype=np.int64)

        iteration = 0
        while iteration < crit.max_iterations:
            iteration += 1
            active = queue.active if queue is not None else all_nodes
            deltas, stats = node_sweep(
                state,
                active,
                update_rule=cfg.update_rule,
                semiring=cfg.semiring,
                damping=cfg.damping,
            )
            global_delta = float(deltas.sum())
            history.append(global_delta)
            if queue is not None:
                dirty = active[deltas >= queue.element_threshold]
                downstream = None
                if cfg.requeue_downstream and len(dirty):
                    downstream = state.dst[state.gather_out_edges(dirty)]
                queue.repopulate(deltas, downstream)
                stats.queue_ops = len(active) + len(queue)
                stats.atomic_ops += len(queue)  # atomic queue pushes (§3.5)
            run_stats.append(stats)
            if crit.is_converged(global_delta) or (queue is not None and queue.empty):
                # an empty queue means every element individually passed
                # its convergence check (§3.5) — the queue-driven runs
                # terminate converged even when the raw global sum of the
                # final sweep sat above the threshold
                converged = crit.is_converged(global_delta) or (
                    queue is not None and queue.empty
                )
                break

        return LoopyResult(
            beliefs=state.beliefs.copy(),
            iterations=iteration,
            converged=converged,
            delta_history=history,
            run_stats=run_stats,
            config=cfg,
        )

    # ------------------------------------------------------------------
    def _run_edge(self, state: LoopyState) -> LoopyResult:
        cfg = self.config
        crit = cfg.criterion
        m = state.m
        run_stats = RunStats()
        history: list[float] = []
        converged = False
        # An edge is converged when its message moves less than the node
        # threshold split across the destination's in-edges: the combined
        # per-node perturbation of fully-pruned edges then stays within
        # the criterion.  (Belief deltas use the plain threshold; message
        # deltas accumulate degree-fold into a belief.)
        mean_in_degree = max(m / max(state.n, 1), 1.0)
        queue = (
            WorkQueue(m, crit.effective_threshold() / mean_in_degree)
            if cfg.work_queue
            else None
        )
        all_edges = np.arange(m, dtype=np.int64)
        node_threshold = crit.effective_threshold()

        iteration = 0
        while iteration < crit.max_iterations:
            iteration += 1
            active = queue.active if queue is not None else all_edges
            # Snapshot the beliefs this sweep can change, for the global
            # convergence reduction (Alg. 1 line 12).
            if len(active):
                cand_mask = np.zeros(state.n, dtype=bool)
                cand_mask[state.dst[active]] = True
                candidates = np.flatnonzero(cand_mask)
            else:
                candidates = np.empty(0, np.int64)
            before = state.beliefs[candidates].copy()
            edge_deltas, touched, stats = edge_sweep(
                state,
                active,
                update_rule=cfg.update_rule,
                semiring=cfg.semiring,
                damping=cfg.damping,
                chunks=cfg.edge_chunks,
            )
            node_deltas = np.abs(state.beliefs[candidates] - before).sum(axis=1)
            global_delta = float(node_deltas.sum())
            history.append(global_delta)
            if queue is not None:
                downstream = None
                if cfg.requeue_downstream:
                    changed = candidates[node_deltas >= node_threshold]
                    if len(changed):
                        downstream = state.gather_out_edges(changed)
                queue.repopulate(edge_deltas, downstream)
                stats.queue_ops = len(active) + len(queue)
                stats.atomic_ops += len(queue)
            run_stats.append(stats)
            if crit.is_converged(global_delta) or (queue is not None and queue.empty):
                # an empty queue means every element individually passed
                # its convergence check (§3.5) — the queue-driven runs
                # terminate converged even when the raw global sum of the
                # final sweep sat above the threshold
                converged = crit.is_converged(global_delta) or (
                    queue is not None and queue.empty
                )
                break

        return LoopyResult(
            beliefs=state.beliefs.copy(),
            iterations=iteration,
            converged=converged,
            delta_history=history,
            run_stats=run_stats,
            config=cfg,
        )

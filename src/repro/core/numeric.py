"""Shared numerical-safety floors for probability arithmetic.

Every log / division on belief, message or potential arrays must be
guarded against structural zeros (hard evidence, deterministic CPTs)
— an unguarded ``np.log(0)`` poisons a whole posterior with ``-inf``
and an unguarded ``x / m`` with a zeroed message row turns a cavity
division into ``inf``.  Historically each module carried its own
ad-hoc literal (``1e-30`` here, ``1e-300`` there); this module is the
single place those floors are defined, and ``repro.analysis`` rule
RPR101/RPR102 enforces that new code goes through them.

Two floors exist because two precisions exist:

``TINY`` / ``TINY32``
    The float32 kernel floor (``1e-30``).  Small enough that a clamped
    one-hot evidence row still rounds to exactly ``[0, 1]`` after
    normalization, large enough that ``log`` stays finite in float32.

``EPS``
    The float64 floor (``1e-300``) for the exact/junction/Bethe paths,
    where posteriors are compared against enumeration at much tighter
    tolerances.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EPS", "TINY", "TINY32", "safe_log", "safe_divide"]

#: float64 log/division floor (junction tree, reference backend, Bethe energy)
EPS = 1e-300

#: float32-compatible floor; preserves one-hot evidence to within float32
#: resolution while keeping log-space arithmetic finite
TINY = 1e-30

#: ``TINY`` as a float32 scalar — use in float32 kernels so ``np.maximum``
#: does not upcast the operand
TINY32 = np.float32(TINY)


def safe_log(x, floor=TINY32):
    """``log(max(x, floor))`` — the canonical guarded logarithm.

    Preserves the input dtype for float32 arrays (``floor`` defaults to
    a float32 scalar); pass ``EPS`` explicitly on float64 paths.
    """
    return np.log(np.maximum(x, floor))


def safe_divide(num, den, floor=TINY32):
    """``num / max(den, floor)`` — division guarded against zero rows."""
    return num / np.maximum(den, floor)

"""Exact inference by brute-force enumeration.

Not part of the paper's system — this is the *test oracle*: on graphs small
enough to enumerate (≲ 20 binary nodes) it computes the true marginals of
the pairwise MRF

    p(x) ∝ Π_i φ_i(x_i) · Π_{(u,v) ∈ undirected E} ψ_uv(x_u, x_v)

so the property-based tests can assert that tree BP is exact and that loopy
BP converges to the exact marginals on acyclic graphs.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.numeric import EPS, safe_log

__all__ = ["exact_marginals", "exact_log_partition"]

_MAX_CONFIGS = 2_000_000


def _undirected_factors(graph: BeliefGraph) -> list[tuple[int, int, np.ndarray]]:
    """One (u, v, ψ) triple per undirected edge.

    A directed pair (e, rev) carries J and Jᵀ — the same factor — so only
    the lower-id member contributes; an unpaired directed edge contributes
    on its own.
    """
    factors = []
    for e in range(graph.n_edges):
        rev = int(graph.reverse_edge[e])
        if rev == -1 or e < rev:
            factors.append((int(graph.src[e]), int(graph.dst[e]), np.asarray(graph.potentials.matrix(e), dtype=np.float64)))
    return factors


def _state_ranges(graph: BeliefGraph) -> list[range]:
    ranges = []
    for i in range(graph.n_nodes):
        if graph.observed[i]:
            s = int(graph.observed_state[i])
            ranges.append(range(s, s + 1))
        else:
            ranges.append(range(int(graph.dims[i])))
    return ranges


def _enumerate(graph: BeliefGraph):
    ranges = _state_ranges(graph)
    n_configs = 1
    for r in ranges:
        n_configs *= len(r)
        if n_configs > _MAX_CONFIGS:
            raise ValueError(
                f"graph too large for exact enumeration (> {_MAX_CONFIGS} configurations)"
            )
    priors = [np.asarray(graph.priors.get(i), dtype=np.float64) for i in range(graph.n_nodes)]
    factors = _undirected_factors(graph)
    for assignment in itertools.product(*ranges):
        weight = 1.0
        for i, s in enumerate(assignment):
            weight *= priors[i][s]
        for u, v, psi in factors:
            weight *= psi[assignment[u], assignment[v]]
        yield assignment, weight


def exact_marginals(graph: BeliefGraph) -> np.ndarray:
    """True posterior marginals, ``(n, width)`` (padded for ragged dims).

    Observed nodes come back as their one-hot clamp.  Raises
    ``ValueError`` when the joint has zero total mass (contradictory
    evidence) or the state space is too large.
    """
    marg = np.zeros((graph.n_nodes, graph.beliefs.width), dtype=np.float64)
    total = 0.0
    for assignment, weight in _enumerate(graph):
        total += weight
        for i, s in enumerate(assignment):
            marg[i, s] += weight
    if total <= 0.0:
        raise ValueError("joint distribution has zero mass (contradictory evidence?)")
    return (marg / total).astype(np.float64)


def exact_log_partition(graph: BeliefGraph) -> float:
    """log Z of the (evidence-restricted) joint — used by Bethe-energy tests."""
    total = sum(weight for _, weight in _enumerate(graph))
    if total <= 0.0:
        raise ValueError("joint distribution has zero mass")
    return float(safe_log(total, EPS))

"""Convergence checking (paper Algorithm 1, §4).

The paper runs "each of the benchmarks until they achieve a convergence
within 0.001 before cutting off at a maximum of 200 iterations": the check
is the sum over all nodes of the L1 difference between the previous and
current belief vectors (Algorithm 1, line 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_MAX_ITERATIONS",
    "belief_delta",
    "per_node_delta",
    "ConvergenceCriterion",
]

#: The paper's convergence threshold (§4).
DEFAULT_THRESHOLD = 1e-3
#: The paper's iteration cap (§4).
DEFAULT_MAX_ITERATIONS = 200


def belief_delta(previous: np.ndarray, current: np.ndarray) -> float:
    """Σ_v Σ_s |b_v[s] − b′_v[s]| over dense ``(n, b)`` belief matrices."""
    return float(np.abs(current - previous).sum())


def per_node_delta(previous: np.ndarray, current: np.ndarray) -> np.ndarray:
    """Per-node L1 deltas, the quantity the work queues filter on (§3.5)."""
    return np.abs(current - previous).sum(axis=1)


@dataclass(frozen=True)
class ConvergenceCriterion:
    """Threshold-and-cap stopping rule.

    ``exact`` mirrors the C/CUDA implementations' precise reduction; setting
    ``slack`` > 0 models the OpenACC backend's imprecise convergence check
    (§2.4: "OpenACC's API failing to precisely compute the convergence
    check" makes runs terminate "much closer to the cap on iterations").
    """

    threshold: float = DEFAULT_THRESHOLD
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    slack: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.slack < 0:
            raise ValueError("slack must be non-negative")

    def effective_threshold(self) -> float:
        """The threshold actually compared against (slack shrinks it,
        making convergence *harder* to detect, as with OpenACC)."""
        return self.threshold / (1.0 + self.slack)

    def is_converged(self, delta: float) -> bool:
        return delta < self.effective_threshold()

    def should_stop(self, delta: float, iteration: int) -> bool:
        return self.is_converged(delta) or iteration >= self.max_iterations

"""Bethe free energy (extension; the paper's reference [18]).

Yedidia, Freeman & Weiss — the paper's citation for BP's semantics —
showed that loopy BP fixed points are stationary points of the **Bethe
free energy**

    F = Σ_edges Σ_{x_u,x_v} b_uv ln (b_uv / ψ_uv φ_u φ_v)
        − Σ_nodes (d_v − 1) Σ_{x_v} b_v ln (b_v / φ_v)

and that −F approximates ln Z (exactly on trees).  This module computes
F from a converged run's beliefs and pairwise pseudo-marginals, giving
the library a principled convergence diagnostic and a partition-function
estimate — both verified against exact enumeration in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.numeric import EPS, safe_log
from repro.core.state import LoopyState, TINY

__all__ = ["pairwise_pseudo_marginals", "bethe_free_energy", "bethe_log_partition"]


def pairwise_pseudo_marginals(state: LoopyState) -> dict[int, np.ndarray]:
    """Edge beliefs b_uv for each canonical directed edge.

    At a BP fixed point, ``b_uv(x_u, x_v) ∝ ψ(x_u, x_v) ·
    cavity_u(x_u) · cavity_v(x_v)`` where each cavity excludes the
    message that crossed this very edge.
    """
    out: dict[int, np.ndarray] = {}
    beliefs = np.asarray(state.beliefs, dtype=np.float64)
    messages = np.maximum(np.asarray(state.messages, dtype=np.float64), float(TINY))
    for e in range(state.m):
        rev = int(state.rev[e])
        if rev != -1 and e > rev:
            continue
        u, v = int(state.src[e]), int(state.dst[e])
        psi = np.asarray(
            state.potentials if state.shared_potential else state.potentials[e],
            dtype=np.float64,
        )
        # cavity_u excludes m_{v->u} (the reverse message); cavity_v
        # excludes m_{u->v} (this edge's message)
        cav_u = beliefs[u] / (messages[rev] if rev != -1 else 1.0)
        cav_v = beliefs[v] / messages[e]
        joint = psi * np.maximum(cav_u, 0.0)[:, None] * np.maximum(cav_v, 0.0)[None, :]
        total = joint.sum()
        out[e] = joint / total if total > 0 else np.full_like(joint, 1.0 / joint.size)
    return out


def bethe_free_energy(graph: BeliefGraph, state: LoopyState | None = None) -> float:
    """Bethe free energy of the current beliefs (lower is better fit)."""
    state = state or LoopyState(graph)
    node_beliefs = np.maximum(np.asarray(state.beliefs, dtype=np.float64), EPS)
    log_priors = np.asarray(state.log_priors, dtype=np.float64)
    degrees = np.zeros(state.n)
    energy = 0.0

    for e, b_uv in pairwise_pseudo_marginals(state).items():
        u, v = int(state.src[e]), int(state.dst[e])
        degrees[u] += 1
        degrees[v] += 1
        psi = np.asarray(
            state.potentials if state.shared_potential else state.potentials[e],
            dtype=np.float64,
        )
        log_factor = (
            safe_log(psi, EPS)
            + log_priors[u][:, None]
            + log_priors[v][None, :]
        )
        b_safe = np.maximum(b_uv, EPS)
        energy += float((b_uv * (np.log(b_safe) - log_factor)).sum())

    node_term = (node_beliefs * (np.log(node_beliefs) - log_priors)).sum(axis=1)
    energy -= float(((degrees - 1.0) * node_term).sum())
    return energy


def bethe_log_partition(graph: BeliefGraph, state: LoopyState | None = None) -> float:
    """The Bethe estimate of ln Z (exact on trees at a BP fixed point)."""
    return -bethe_free_energy(graph, state)

"""Joint-probability (pairwise potential) storage (paper §2.2, §3.4).

Loopy BP defines a joint probability matrix per edge.  The paper observes
that per-edge matrices are "by far the largest amount of memory consumption
for the graph" and untenable at scale, and replaces them with a **single
shared matrix** used by every edge — the same estimation for all node pairs
(e.g. one error rate for all pixels, one transmission rate for all
contacts).  Both designs are implemented here:

* :class:`PerEdgePotentialStore` — one ``(b_src, b_dst)`` matrix per
  directed edge (the original semantics; required for heterogeneous
  networks such as those loaded from BIF files).
* :class:`SharedPotentialStore` — a single matrix for all edges (the §2.2
  refinement; requires constant-width beliefs).

The convention: for a directed edge ``(u, v)`` with matrix ``J``, entry
``J[i, j]`` is the compatibility of ``x_u = i`` with ``x_v = j``; the
message u sends v is ``m = b_u @ J`` (then normalized).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PotentialStore",
    "SharedPotentialStore",
    "PerEdgePotentialStore",
    "random_potential",
    "attractive_potential",
]

_FLOAT = np.float32


class PotentialStore:
    """Abstract store of pairwise potential matrices, one per directed edge."""

    shared: bool = False

    def matrix(self, e: int) -> np.ndarray:
        """Potential matrix for directed edge ``e``."""
        raise NotImplementedError

    def stacked(self, edge_ids: np.ndarray | None = None) -> np.ndarray:
        """Return a ``(E, b, b)`` stack of matrices for the given edges.

        Only valid when all requested matrices share one shape.  The shared
        store returns a broadcast view (no copy).
        """
        raise NotImplementedError

    def transpose_for_reverse(self) -> "PotentialStore":
        """Store holding ``Jᵀ`` per edge, used when emitting along the
        reverse direction of an undirected MRF edge."""
        raise NotImplementedError

    def nbytes(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class SharedPotentialStore(PotentialStore):
    """One matrix shared by every edge (the §2.2 memory refinement)."""

    shared = True

    def __init__(self, matrix: np.ndarray, n_edges: int):
        matrix = np.asarray(matrix, dtype=_FLOAT)
        if matrix.ndim != 2:
            raise ValueError("shared potential must be a 2-D matrix")
        if (matrix < 0).any():
            raise ValueError("potential entries must be non-negative")
        self._matrix = matrix
        self.n_edges = int(n_edges)

    def matrix(self, e: int) -> np.ndarray:
        if not 0 <= e < self.n_edges:
            raise IndexError(f"edge {e} out of range [0, {self.n_edges})")
        return self._matrix

    def stacked(self, edge_ids: np.ndarray | None = None) -> np.ndarray:
        count = self.n_edges if edge_ids is None else len(edge_ids)
        return np.broadcast_to(self._matrix, (count, *self._matrix.shape))

    def transpose_for_reverse(self) -> "SharedPotentialStore":
        return SharedPotentialStore(self._matrix.T.copy(), self.n_edges)

    def nbytes(self) -> int:
        return int(self._matrix.nbytes)

    def __len__(self) -> int:
        return self.n_edges


class PerEdgePotentialStore(PotentialStore):
    """One matrix per directed edge (the original, memory-hungry design)."""

    shared = False

    def __init__(self, matrices: np.ndarray | list[np.ndarray]):
        if isinstance(matrices, np.ndarray) and matrices.ndim == 3:
            self._stack: np.ndarray | None = np.asarray(matrices, dtype=_FLOAT)
            self._ragged: list[np.ndarray] | None = None
            if (self._stack < 0).any():
                raise ValueError("potential entries must be non-negative")
        else:
            mats = [np.asarray(m, dtype=_FLOAT) for m in matrices]
            for m in mats:
                if m.ndim != 2:
                    raise ValueError("each potential must be a 2-D matrix")
                if (m < 0).any():
                    raise ValueError("potential entries must be non-negative")
            shapes = {m.shape for m in mats}
            if len(shapes) == 1 and mats:
                self._stack = np.stack(mats)
                self._ragged = None
            else:
                self._stack = None
                self._ragged = mats

    @property
    def is_ragged(self) -> bool:
        return self._stack is None

    def matrix(self, e: int) -> np.ndarray:
        if self._stack is not None:
            return self._stack[e]
        assert self._ragged is not None
        return self._ragged[e]

    def stacked(self, edge_ids: np.ndarray | None = None) -> np.ndarray:
        if self._stack is None:
            raise ValueError("ragged potential store cannot be stacked")
        return self._stack if edge_ids is None else self._stack[edge_ids]

    def transpose_for_reverse(self) -> "PerEdgePotentialStore":
        if self._stack is not None:
            return PerEdgePotentialStore(np.ascontiguousarray(self._stack.transpose(0, 2, 1)))
        assert self._ragged is not None
        return PerEdgePotentialStore([m.T.copy() for m in self._ragged])

    def nbytes(self) -> int:
        if self._stack is not None:
            return int(self._stack.nbytes)
        assert self._ragged is not None
        return int(sum(m.nbytes for m in self._ragged))

    def __len__(self) -> int:
        if self._stack is not None:
            return int(self._stack.shape[0])
        assert self._ragged is not None
        return len(self._ragged)


def random_potential(n_states: int, rng: np.random.Generator, *, concentration: float = 1.0) -> np.ndarray:
    """Draw a random strictly-positive potential matrix.

    Rows are Dirichlet-distributed so each source state induces a proper
    conditional distribution over destination states, matching how the
    paper "randomly encode[s] generated beliefs into the input files".
    """
    mat = rng.dirichlet(np.full(n_states, concentration), size=n_states)
    return np.asarray(mat, dtype=_FLOAT)


def attractive_potential(n_states: int, strength: float = 0.9) -> np.ndarray:
    """Smoothing potential favouring equal states — the classic image-
    correction coupling (probability ``strength`` of agreeing, remainder
    spread over disagreeing states)."""
    if not 0.0 < strength < 1.0:
        raise ValueError("strength must be in (0, 1)")
    if n_states < 2:
        raise ValueError("attractive potential needs at least 2 states")
    off = (1.0 - strength) / (n_states - 1)
    mat = np.full((n_states, n_states), off, dtype=_FLOAT)
    np.fill_diagonal(mat, strength)
    return mat

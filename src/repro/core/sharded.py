"""Sharded BP execution over a measured graph partition (DESIGN.md §9).

:class:`ShardedGraph` splits a :class:`~repro.core.graph.BeliefGraph`
into per-shard subgraphs along a :class:`~repro.partition.Partition`.
Ownership follows *destinations*: shard ``s`` owns the nodes assigned to
it and every directed edge terminating at an owned node.  Each subgraph
additionally carries:

halo nodes
    Sources of boundary in-edges that live on another shard.  Their
    beliefs are read by the local cavity computation but never written
    locally — the owner ships fresh values each exchange round.

ghost edges
    The *reverses* of boundary in-edges (owned elsewhere).  Their
    message rows feed the local cavity division ``belief / m_rev``; the
    owner ships fresh messages each exchange round.

With this closure every locally-computed quantity — cavity messages,
per-node log-message sums, combined beliefs — depends only on local
rows, so a per-shard synchronous (Jacobi) sweep followed by a boundary
exchange reproduces the *global* synchronous sweep bit-for-bit: each
directed edge is recomputed by exactly one shard from the same snapshot
the unsharded kernel would read, and per-node accumulation order is
preserved.  That is the posterior-equivalence argument behind the
1e-6 parity suite (``tests/test_partition.py``).

:class:`ShardedLoopyBP` drives any PR-1 schedule per shard through a
pluggable **shard execution policy**
(:mod:`repro.core.shard_policies`): the default ``"sync"`` policy runs
lockstep rounds with a full exchange and barrier (bit-exact with the
unsharded kernels), while ``"async"`` runs bounded-staleness SSP ticks
with pressure-ranked shard selection and region work stealing.  Either
way the exchange copies halo beliefs and ghost messages along
precomputed routes and *reactivates* the owned elements they feed via
:meth:`~repro.core.scheduler.Schedule.reactivate`, so drained shards
wake up while neighbours still move.  Shard sweeps are independent and
can run on a thread pool — the BLAS matmuls inside the kernels release
the GIL, which is where the serving layer's wall-clock speedup comes
from.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.loopy import (
    LoopyConfig,
    LoopyResult,
    _EdgePlan,
    _NodePlan,
    _verify_executor_buffers,
)
from repro.core.observation import observe as _observe
from repro.core.potentials import PerEdgePotentialStore, SharedPotentialStore
from repro.core.scheduler import make_schedule
from repro.core.shard_policies import ShardRun, exchange_routes, make_shard_policy
from repro.core.state import LoopyState
from repro.core.sweepstats import SweepStats
from repro.partition import Partition, make_partition
from repro.telemetry import get_metrics, get_tracer

__all__ = ["Shard", "ShardedGraph", "ShardedLoopyBP", "ShardedResult"]

_FLOAT = np.float32


@dataclass(eq=False)
class Shard:
    """One shard's subgraph plus its local ↔ global index maps."""

    index: int
    graph: BeliefGraph
    #: global ids of owned nodes; local node ids 0..n_owned-1, ascending
    owned_nodes: np.ndarray
    #: global ids of halo nodes; local ids n_owned.., ascending
    halo_nodes: np.ndarray
    #: global ids of owned edges; local edge ids 0..n_owned_edges-1
    owned_edges: np.ndarray
    #: global ids of ghost edges; local ids n_owned_edges..
    ghost_edges: np.ndarray

    @property
    def n_owned(self) -> int:
        return len(self.owned_nodes)

    @property
    def n_owned_edges(self) -> int:
        return len(self.owned_edges)

    def copy(self) -> "Shard":
        """Fresh belief/observation state, shared structure (index maps)."""
        return replace(self, graph=self.graph.copy())


@dataclass(eq=False)
class _Route:
    """One producer → consumer exchange lane (local index spaces)."""

    src: int
    dst: int
    #: producer-local owned node ids → consumer-local halo node ids
    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    #: producer-local owned edge ids → consumer-local ghost edge ids
    src_edges: np.ndarray
    dst_edges: np.ndarray

    @property
    def rows(self) -> int:
        return len(self.src_nodes) + len(self.src_edges)


class ShardedGraph:
    """A :class:`BeliefGraph` split into halo-closed per-shard subgraphs.

    Build once per (graph, partition) with :meth:`build`; take cheap
    per-query copies with :meth:`instance` (structure and routes are
    shared, belief/observation state is fresh) — the serving hot path.
    """

    def __init__(
        self,
        partition: Partition,
        shards: list[Shard],
        routes: list[_Route],
        *,
        source: BeliefGraph | None,
        n_nodes: int,
        n_states: int,
        resolve,
        halo_locations: dict[int, list[tuple[int, int]]],
        owned_pos: np.ndarray,
        owned_local: np.ndarray,
    ):
        self.partition = partition
        self.shards = shards
        self.routes = routes
        #: the master graph this was built from (None on instances — they
        #: must not write posteriors back into the registered master)
        self.source = source
        self.n_nodes = n_nodes
        self.n_states = n_states
        self._resolve = resolve
        self._halo_locations = halo_locations
        self._owned_pos = owned_pos
        self._owned_local = owned_local

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: BeliefGraph,
        partition: Partition | None = None,
        *,
        n_shards: int | None = None,
        method: str = "bfs",
        seed: int = 0,
    ) -> "ShardedGraph":
        """Split ``graph`` along ``partition`` (or partition it here).

        Empty shards (more shards than populated regions) are dropped;
        the remaining shards jointly own every node and edge exactly
        once.  Requires a uniform-width graph (the vectorized kernels'
        precondition, §2.2).
        """
        if partition is None:
            if n_shards is None:
                raise ValueError("provide a partition or n_shards")
            partition = make_partition(graph, n_shards, method, seed=seed)
        if len(partition.assignment) != graph.n_nodes:
            raise ValueError("partition does not match the graph")
        if not graph.uniform:
            raise ValueError(
                "sharded execution requires constant-width beliefs; "
                "run heterogeneous graphs through the reference backend"
            )

        n, m = graph.n_nodes, graph.n_edges
        a = partition.assignment
        beliefs_dense = graph.beliefs.dense()
        priors_dense = graph.priors.dense()

        owned_pos = np.full(n, -1, dtype=np.int64)
        owned_local = np.full(n, -1, dtype=np.int64)
        edge_owner_local = np.full(m, -1, dtype=np.int64)
        shards: list[Shard] = []
        per_shard_g2l: list[np.ndarray] = []

        for s in range(partition.n_shards):
            owned = np.flatnonzero(a == s).astype(np.int64)
            if not len(owned):
                continue
            pos = len(shards)
            owned_edges = (
                np.flatnonzero(a[graph.dst] == s).astype(np.int64)
                if m
                else np.empty(0, dtype=np.int64)
            )
            boundary = owned_edges[a[graph.src[owned_edges]] != s]
            halo = np.unique(graph.src[boundary]).astype(np.int64)
            ghost = graph.reverse_edge[boundary]
            ghost = np.unique(ghost[ghost >= 0]).astype(np.int64)

            local_nodes = np.concatenate((owned, halo))
            g2l = np.full(n, -1, dtype=np.int64)
            g2l[local_nodes] = np.arange(len(local_nodes), dtype=np.int64)
            local_edges = np.concatenate((owned_edges, ghost))
            e_g2l = np.full(m, -1, dtype=np.int64)
            e_g2l[local_edges] = np.arange(len(local_edges), dtype=np.int64)

            lsrc = g2l[graph.src[local_edges]]
            ldst = g2l[graph.dst[local_edges]]
            grev = graph.reverse_edge[local_edges]
            lrev = np.full(len(local_edges), -1, dtype=np.int64)
            paired = grev >= 0
            lrev[paired] = e_g2l[grev[paired]]

            if graph.potentials.shared:
                pots = SharedPotentialStore(
                    graph.potentials.matrix(0), len(local_edges)
                )
            else:
                pots = PerEdgePotentialStore(graph.potentials.stacked(local_edges))

            sub = BeliefGraph(
                priors_dense[local_nodes],
                lsrc,
                ldst,
                pots,
                reverse_edge=lrev,
                node_names=[graph.node_names[int(g)] for g in local_nodes],
                layout=graph.layout,
            )
            # bypass the constructor's re-normalization: a float32 row that
            # sums to 1±ulp would drift by a division, breaking the
            # bit-exact sync parity with the unsharded kernels
            sub.priors.load_dense(priors_dense[local_nodes])
            sub.beliefs.load_dense(beliefs_dense[local_nodes])
            sub.observed[:] = graph.observed[local_nodes]
            sub.observed_state[:] = graph.observed_state[local_nodes]

            owned_pos[owned] = pos
            owned_local[owned] = np.arange(len(owned), dtype=np.int64)
            edge_owner_local[owned_edges] = np.arange(len(owned_edges), dtype=np.int64)
            per_shard_g2l.append(g2l)
            shards.append(
                Shard(
                    index=pos,
                    graph=sub,
                    owned_nodes=owned,
                    halo_nodes=halo,
                    owned_edges=owned_edges,
                    ghost_edges=ghost,
                )
            )

        routes, halo_locations = cls._build_routes(
            shards, a, graph.dst, owned_pos, owned_local, edge_owner_local
        )
        return cls(
            partition,
            shards,
            routes,
            source=graph,
            n_nodes=n,
            n_states=graph.n_states,
            resolve=graph.node_id,
            halo_locations=halo_locations,
            owned_pos=owned_pos,
            owned_local=owned_local,
        )

    @staticmethod
    def _build_routes(shards, assignment, dst, owned_pos, owned_local, edge_owner_local):
        routes: dict[tuple[int, int], dict[str, list]] = {}
        halo_locations: dict[int, list[tuple[int, int]]] = {}

        def lane(src: int, dst_: int) -> dict[str, list]:
            return routes.setdefault(
                (src, dst_),
                {"sn": [], "dn": [], "se": [], "de": []},
            )

        for sh in shards:
            for li, g in enumerate(sh.halo_nodes):
                g = int(g)
                producer = int(owned_pos[g])
                entry = lane(producer, sh.index)
                entry["sn"].append(int(owned_local[g]))
                entry["dn"].append(sh.n_owned + li)
                halo_locations.setdefault(g, []).append((sh.index, sh.n_owned + li))
            for li, e in enumerate(sh.ghost_edges):
                e = int(e)
                producer = int(owned_pos[int(dst[e])])
                entry = lane(producer, sh.index)
                entry["se"].append(int(edge_owner_local[e]))
                entry["de"].append(sh.n_owned_edges + li)

        built = [
            _Route(
                src=src,
                dst=dst_,
                src_nodes=np.asarray(entry["sn"], dtype=np.int64),
                dst_nodes=np.asarray(entry["dn"], dtype=np.int64),
                src_edges=np.asarray(entry["se"], dtype=np.int64),
                dst_edges=np.asarray(entry["de"], dtype=np.int64),
            )
            for (src, dst_), entry in sorted(routes.items())
        ]
        return built, halo_locations

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Populated shards (empty ones were dropped at build time)."""
        return len(self.shards)

    def instance(self) -> "ShardedGraph":
        """A cheap evidence-isolated copy for one query: fresh beliefs and
        observation flags per shard, shared structure and routes."""
        return ShardedGraph(
            self.partition,
            [sh.copy() for sh in self.shards],
            self.routes,
            source=None,
            n_nodes=self.n_nodes,
            n_states=self.n_states,
            resolve=self._resolve,
            halo_locations=self._halo_locations,
            owned_pos=self._owned_pos,
            owned_local=self._owned_local,
        )

    def observe(self, node: int | str, state: int) -> None:
        """Clamp ``node`` to ``state`` in every shard that sees it — the
        owner plus each shard holding it as a halo node."""
        g = int(self._resolve(node))
        pos = int(self._owned_pos[g])
        if pos < 0:
            raise KeyError(f"node {node!r} is not owned by any shard")
        _observe(self.shards[pos].graph, int(self._owned_local[g]), state)
        for shard_pos, local in self._halo_locations.get(g, ()):
            _observe(self.shards[shard_pos].graph, local, state)

    def gather_beliefs(self) -> np.ndarray:
        """Assemble the global ``(n, b)`` belief matrix from shard-owned rows."""
        out = np.empty((self.n_nodes, self.n_states), dtype=_FLOAT)
        for sh in self.shards:
            out[sh.owned_nodes] = sh.graph.beliefs.dense()[: sh.n_owned]
        return out

    def exchange_profile(self) -> dict[str, float]:
        """Static per-round exchange traffic (the routes never change).

        ``bytes_per_round`` is the total boundary payload; ``max_device``
        the heaviest single shard's in+out bytes — what a per-link
        interconnect model charges per bulk-synchronous round.
        """
        row_bytes = 4 * self.n_states
        k = self.n_shards
        inbound = np.zeros(k)
        outbound = np.zeros(k)
        total = 0
        for r in self.routes:
            nbytes = r.rows * row_bytes
            outbound[r.src] += nbytes
            inbound[r.dst] += nbytes
            total += nbytes
        max_device = float((inbound + outbound).max()) if k else 0.0
        return {
            "bytes_per_round": float(total),
            "max_device_bytes": max_device,
            "boundary_rows": float(sum(r.rows for r in self.routes)),
            "n_routes": float(len(self.routes)),
        }

    def __repr__(self) -> str:
        return (
            f"ShardedGraph(n_shards={self.n_shards}, n_nodes={self.n_nodes}, "
            f"partition={self.partition!r})"
        )


@dataclass
class ShardedResult(LoopyResult):
    """A :class:`LoopyResult` plus the sharded run's exchange accounting."""

    partition: Partition | None = None
    #: boundary payload actually copied across shards, whole run
    exchange_bytes: int = 0
    #: per-iteration list of per-shard SweepStats (straggler analysis)
    per_shard_stats: list[list[SweepStats]] = field(default_factory=list)
    #: shard execution policy that drove the run
    policy: str = "sync"
    #: SSP staleness bound the run allowed (0 under sync)
    staleness: int = 0
    #: async only: per-tick replay records for the cost models
    ticks: list = field(default_factory=list)
    #: max halo-snapshot age each shard consumed, in rounds
    shard_staleness: list = field(default_factory=list)
    #: work items executed on state clones by stealing workers
    stolen_items: int = 0

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards if self.partition is not None else 1


class ShardedLoopyBP:
    """Loopy BP over a :class:`ShardedGraph`: any schedule per shard,
    driven by a pluggable shard execution policy.

    ``policy`` selects the execution model
    (:data:`~repro.core.shard_policies.SHARD_POLICIES`): ``"sync"``
    (default) is the bit-exact lockstep behaviour, ``"async"`` runs
    bounded-staleness ticks — ``staleness`` rounds of halo-snapshot
    age are tolerated (0 degenerates to lockstep) and each shard's
    active set is over-partitioned into ``steal_factor`` regions that
    idle workers steal.

    ``pool`` (an external ``ThreadPoolExecutor``) or ``max_workers``
    (own pool per run) enable parallel shard sweeps; the default is
    serial — numerics are identical either way, because every sweep
    touches only its own shard (or a private clone) and the exchange
    runs on the caller.

    ``instrument`` accepts any object with the
    :class:`~repro.analysis.races.RaceDetector` hook protocol —
    ``on_states(states)`` is called once after the per-shard states are
    built (before any sweep), ``on_phase(label)`` at every global
    fork-join barrier, and ``on_shard_phase(shard, label)`` (when
    present) at per-shard epoch boundaries in async runs.
    """

    def __init__(
        self,
        config: LoopyConfig | None = None,
        *,
        pool: ThreadPoolExecutor | None = None,
        max_workers: int | None = None,
        instrument=None,
        policy: str = "sync",
        staleness: int = 0,
        steal_factor: int = 8,
        **overrides,
    ):
        base = config or LoopyConfig()
        self.config = replace(base, **overrides) if overrides else base
        self._pool = pool
        self._max_workers = max_workers
        self._instrument = instrument
        # validate eagerly so bad specs fail at construction, not run time
        self.policy = make_shard_policy(
            policy, staleness=staleness, steal_factor=steal_factor
        )
        self.staleness = int(staleness)
        self.steal_factor = int(steal_factor)

    # ------------------------------------------------------------------
    def run(self, sharded: ShardedGraph) -> ShardedResult:
        if self._pool is not None or self._max_workers is None:
            return self._run(sharded, self._pool)
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            return self._run(sharded, pool)

    def run_graph(
        self,
        graph: BeliefGraph,
        *,
        n_shards: int,
        method: str = "bfs",
        seed: int = 0,
    ) -> ShardedResult:
        """Convenience: partition + build + run in one call; posteriors
        are written back into ``graph``'s belief store."""
        return self.run(ShardedGraph.build(graph, n_shards=n_shards, method=method, seed=seed))

    # ------------------------------------------------------------------
    def _run(self, sharded: ShardedGraph, pool: ThreadPoolExecutor | None) -> ShardedResult:
        cfg = self.config
        crit = cfg.criterion
        shards = sharded.shards
        k = len(shards)

        states = [LoopyState(sh.graph) for sh in shards]
        for sh, st in zip(shards, states):
            # halo rows are owned elsewhere: never update them locally
            st.free_mask[sh.n_owned:] = False
        instrument = self._instrument
        if instrument is not None:
            # before plan construction, so plans capture the tracked views
            instrument.on_states(states)

        plans = []
        schedules = []
        for pos, (sh, st) in enumerate(zip(shards, states)):
            plan = _NodePlan(st, cfg) if cfg.paradigm == "node" else _EdgePlan(st, cfg)
            if instrument is not None:
                # instrumented runs cross-check the lowered kernel IR
                # against each shard's live buffers, alongside the race
                # detector (no-op for the interpreted executor)
                _verify_executor_buffers(plan.executor, st)
            n_elem = sh.n_owned if cfg.paradigm == "node" else sh.n_owned_edges
            plans.append(plan)
            schedules.append(
                make_schedule(
                    cfg.schedule,
                    n_elem,
                    plan.element_threshold,
                    batch_fraction=cfg.batch_fraction,
                    relaxation=cfg.relaxation,
                    seed=cfg.schedule_seed + pos,
                )
            )
        want_downstream = [
            cfg.requeue_downstream and s.wants_downstream for s in schedules
        ]
        exhaustive = all(s.exhaustive for s in schedules)

        run = ShardRun(
            sharded=sharded,
            states=states,
            plans=plans,
            schedules=schedules,
            want_downstream=want_downstream,
            exhaustive=exhaustive,
            cfg=cfg,
            pool=pool,
            instrument=instrument,
            workers=(getattr(pool, "_max_workers", 0) or 1)
            if pool is not None else 1,
        )

        tracer = get_tracer()
        with tracer.span("bp.sharded_run", cat="bp") as run_span:
            outcome = self.policy.execute(run)
            if run_span:
                run_span.set(n_shards=k, schedule=cfg.schedule,
                             paradigm=cfg.paradigm,
                             policy=self.policy.name,
                             staleness=self.staleness,
                             iterations=outcome.iterations,
                             converged=outcome.converged,
                             exchange_bytes=outcome.exchange_bytes)

        metrics = get_metrics()
        for i, age in enumerate(outcome.shard_staleness):
            metrics.gauge(f"sharded.staleness.shard{i}").set(age)

        beliefs = np.empty((sharded.n_nodes, sharded.n_states), dtype=_FLOAT)
        for sh, st in zip(shards, states):
            st.export_beliefs()
            beliefs[sh.owned_nodes] = st.beliefs[: sh.n_owned]
        if sharded.source is not None:
            sharded.source.beliefs.load_dense(beliefs)

        return ShardedResult(
            beliefs=beliefs,
            iterations=outcome.iterations,
            converged=outcome.converged,
            delta_history=outcome.history,
            run_stats=outcome.run_stats,
            config=cfg,
            partition=sharded.partition,
            exchange_bytes=outcome.exchange_bytes,
            per_shard_stats=outcome.per_shard_stats,
            policy=self.policy.name,
            staleness=self.staleness,
            ticks=outcome.ticks,
            shard_staleness=outcome.shard_staleness,
            stolen_items=outcome.stolen_items,
        )

    # ------------------------------------------------------------------
    #: kept as an API alias — the exchange now lives with the policies
    _exchange = staticmethod(exchange_routes)

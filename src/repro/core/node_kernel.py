"""Per-node processing paradigm (paper §3.3, Figure 3, left).

"Per-node processing pulls the states of all the parent nodes of a given
node, combines them with the joint probability matrix for the edges linking
the parents with the child before combining the updates with the child
node's state to produce its new state."

Operationally: for each active node the kernel gathers every in-edge,
recomputes those edges' messages from the *snapshot* of the parents'
beliefs (Jacobi order — the whole sweep reads one consistent state), then
combines them with the node's prior.  No atomic accumulation is required,
at the price of data-dependent gathers ("these lookups occur in random
order, hampering effective caching").
"""

from __future__ import annotations

import numpy as np

from repro.core.state import LoopyState
from repro.core.sweepstats import SweepStats

__all__ = ["node_sweep"]

_FSIZE = 4  # float32 bytes
_ISIZE = 8  # int64 index bytes


def node_sweep(
    state: LoopyState,
    active_nodes: np.ndarray,
    *,
    update_rule: str = "sum_product",
    semiring: str = "sum",
    damping: float = 0.0,
) -> tuple[np.ndarray, SweepStats]:
    """One sweep over ``active_nodes``; returns (per-node belief deltas, stats).

    Beliefs and stored messages are updated in place on ``state``.
    """
    stats = SweepStats()
    n_active = len(active_nodes)
    if n_active == 0:
        return np.empty(0, dtype=np.float32), stats

    edge_ids, _local_offsets = state.gather_in_edges(active_nodes)
    n_edges = len(edge_ids)
    b = state.b

    if update_rule == "broadcast":
        msgs = state.propagate_messages(edge_ids, semiring=semiring)
    elif update_rule == "sum_product":
        msgs = state.cavity_messages(edge_ids, semiring=semiring)
    else:
        raise ValueError(f"unknown update_rule {update_rule!r}")
    if damping > 0.0 and n_edges:
        msgs = (1.0 - damping) * msgs + damping * state.messages[edge_ids]
    state.store_messages(edge_ids, msgs)

    old = state.beliefs[active_nodes]
    new = state.combine_nodes(active_nodes)
    free = state.free_mask[active_nodes]
    new[~free] = old[~free]
    deltas = np.abs(new - old).sum(axis=1).astype(np.float32)
    state.beliefs[active_nodes] = new

    # --- accounting (§3.3: gathers instead of atomics) -------------------
    stats.nodes_processed = n_active
    stats.edges_processed = n_edges
    # message math: b×b mat-vec per edge (2 flops per cell) + normalize
    stats.flops = n_edges * (2 * b * b + 2 * b) + n_active * (4 * b)
    # random access: parent belief vector + reverse message per edge —
    # two data-dependent gathers of one belief vector each (§3.3:
    # "these lookups occur in random order, hampering effective caching")
    stats.random_bytes = n_edges * (2 * b * _FSIZE)
    stats.random_accesses = n_edges * 2
    # streaming: read own prior/belief, write message + belief
    stats.sequential_bytes = (
        n_active * (3 * b * _FSIZE) + n_edges * (b * _FSIZE)
    )
    stats.atomic_ops = 0
    stats.reduction_elems = n_active
    stats.kernel_launches = 1
    return deltas, stats

"""Pluggable update-scheduling strategies for loopy BP.

The paper's §3.5 work queue is one point in a larger scheduling design
space.  This module abstracts "which elements does the next sweep
process, and when does the run stop" behind a :class:`Schedule` object so
that the single driver loop in :class:`~repro.core.loopy.LoopyBP` can run
any policy, with any paradigm, through any backend:

``"sync"``
    Full synchronous sweeps — every element, every iteration
    (Algorithm 1 without the §3.5 refinement).

``"work_queue"``
    The paper's §3.5 queue of unconverged elements: after each sweep the
    queue "clears itself and populates atomically with the indices of
    elements which have yet to converge", plus the downstream
    re-enqueueing refinement that keeps the fixed point sound.

``"residual"``
    Max-residual priority scheduling (Gonzalez et al.; Van der Merwe et
    al., *Message Scheduling for Performant, Many-Core Belief
    Propagation*): each round processes the batch of elements with the
    largest residuals.  Exact priority order costs heap maintenance —
    O(log n) atomic-visible operations per push — which the cost models
    price via :meth:`Schedule.charge`.

``"relaxed"``
    Relaxed concurrent priority scheduling (Aksenov et al., *Relaxed
    Scheduling for Scalable Belief Propagation*): instead of the exact
    max, each batch slot samples ``relaxation`` candidate elements and
    takes the best — the MultiQueue-style "power of k choices" that
    trades strict priority order for O(1) contention-free queue
    operations.  Statistically near-max, massively parallelizable.

Every schedule is a small amount of state over a flat priority/activity
view of the elements (nodes for the per-node paradigm, directed edges
for the per-edge paradigm); the numerical kernels never change.

Schedules also expose :meth:`Schedule.reactivate` for *external*
invalidation — elements whose inputs changed outside the driver's own
sweep.  The sharded driver (:mod:`repro.core.sharded`) uses it after
each boundary exchange: halo beliefs and ghost messages arriving from
other shards re-enqueue the owned elements they feed, so a drained shard
wakes up when its neighbours are still moving.

The §3.5 :class:`WorkQueue` and the legacy :class:`ResidualBP` entry
point live here too; the ``repro.core.workqueue`` and
``repro.core.residual`` deprecation shims that once re-exported them
were removed in 2.0 — this module is the only home.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.sweepstats import SweepStats
from repro.telemetry import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (loopy imports us)
    from repro.core.graph import BeliefGraph
    from repro.core.loopy import LoopyResult

__all__ = [
    "SCHEDULES",
    "Schedule",
    "SynchronousSchedule",
    "WorkQueueSchedule",
    "ResidualSchedule",
    "RelaxedPrioritySchedule",
    "WorkQueue",
    "ResidualBP",
    "make_schedule",
    "normalize_schedule",
]

#: the canonical schedule names, in ablation-ladder order
SCHEDULES = ("sync", "work_queue", "residual", "relaxed")

_ALIASES = {
    "synchronous": "sync",
    "full": "sync",
    "fifo": "work_queue",
    "queue": "work_queue",
    "workqueue": "work_queue",
    "residual_priority": "residual",
    "priority": "residual",
    "splash": "residual",
    "relaxed_priority": "relaxed",
    "multiqueue": "relaxed",
}


def normalize_schedule(name: str) -> str:
    """Canonical schedule name, accepting common aliases."""
    canonical = _ALIASES.get(name, name)
    if canonical not in SCHEDULES:
        raise ValueError(f"unknown schedule {name!r}; known: {list(SCHEDULES)}")
    return canonical


class WorkQueue:
    """Iteration-scoped queue of active element indices (paper §3.5).

    "From profiling, we observe that most nodes converge quickly after a
    few iterations and that graph convergence becomes dependent on a few
    nodes."  The queue therefore holds only the indices of elements
    (nodes for the per-node paradigm, directed edges for the per-edge
    paradigm) that have yet to converge; after every iteration it "clears
    itself and populates atomically with the indices of elements which
    have yet to converge to a given threshold".

    One refinement keeps the fixed point *sound*: when an element is
    still changing, its downstream neighbours are re-enqueued too
    (otherwise a node that converged early would never observe later
    changes upstream) — matching how the residual-scheduling literature
    the paper builds on (Gonzalez et al.) maintains its queues.

    Parameters
    ----------
    n_elements:
        Total number of schedulable elements.
    element_threshold:
        An element is considered locally converged when its own delta
        drops below this value; the loopy driver derives it from the
        global criterion.
    """

    def __init__(self, n_elements: int, element_threshold: float):
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        if element_threshold <= 0:
            raise ValueError("element_threshold must be positive")
        self.n_elements = n_elements
        self.element_threshold = float(element_threshold)
        self._active = np.arange(n_elements, dtype=np.int64)
        #: cumulative count of queue push operations (cost accounting, §3.5)
        self.pushes = 0
        #: cumulative number of repopulation rounds
        self.rounds = 0

    @property
    def active(self) -> np.ndarray:
        """Indices scheduled for the next sweep (sorted, unique)."""
        return self._active

    def __len__(self) -> int:
        return len(self._active)

    @property
    def empty(self) -> bool:
        return len(self._active) == 0

    def repopulate(
        self,
        deltas: np.ndarray,
        neighbours_of_dirty: np.ndarray | None = None,
    ) -> np.ndarray:
        """Clear and refill the queue after a sweep.

        ``deltas`` holds the per-element change of every element *processed
        this sweep* aligned with the previous active set; elements whose
        delta is still ≥ the threshold stay enqueued.
        ``neighbours_of_dirty`` optionally adds downstream elements that
        must be reconsidered because their inputs changed.
        """
        if len(deltas) != len(self._active):
            raise ValueError("deltas must align with the active set")
        with get_tracer().span("queue.repopulate", cat="schedule") as span:
            dirty = self._active[deltas >= self.element_threshold]
            # Dedup via a membership mask: O(n) in C, far cheaper than sorting
            # the (duplicate-heavy) neighbour list with np.unique.
            mask = np.zeros(self.n_elements, dtype=bool)
            mask[dirty] = True
            if neighbours_of_dirty is not None and len(neighbours_of_dirty):
                mask[neighbours_of_dirty] = True
            self._active = np.flatnonzero(mask).astype(np.int64)
            self.pushes += len(self._active)
            self.rounds += 1
            if span:
                span.set(pushed=int(len(self._active)), round=self.rounds)
        return self._active

    def merge(self, elements: np.ndarray) -> int:
        """Enqueue ``elements`` (duplicates fine) into the active set
        without clearing it — the cross-shard reactivation path.  Returns
        the number of *new* entries."""
        if not len(elements):
            return 0
        with get_tracer().span("queue.merge", cat="schedule") as span:
            mask = np.zeros(self.n_elements, dtype=bool)
            mask[self._active] = True
            before = len(self._active)
            mask[elements] = True
            self._active = np.flatnonzero(mask).astype(np.int64)
            added = len(self._active) - before
            self.pushes += added
            if span:
                span.set(offered=int(len(elements)), added=added)
        return added

    def seed(self, elements: np.ndarray) -> None:
        """Replace the active set with ``elements`` (duplicates fine).

        The warm-start entry point: incremental re-convergence
        (:mod:`repro.stream.incremental`) populates the queue with just
        the dirty region instead of every element.
        """
        elements = np.asarray(elements, dtype=np.int64).reshape(-1)
        mask = np.zeros(self.n_elements, dtype=bool)
        mask[elements] = True
        self._active = np.flatnonzero(mask).astype(np.int64)
        self.pushes += len(self._active)

    def reset(self) -> None:
        """Re-enqueue every element (start of a run)."""
        self._active = np.arange(self.n_elements, dtype=np.int64)
        self.pushes = 0
        self.rounds = 0


class Schedule:
    """Which elements the next sweep processes, and when the run drains.

    A schedule is bound to ``n_elements`` flat element indices (nodes or
    directed edges) and the per-element convergence threshold the driver
    derives from the global criterion.  Each driver round:

    1. reads :attr:`active` — the element batch to sweep;
    2. sweeps it (kernels are schedule-agnostic);
    3. calls :meth:`update` with the observed per-element deltas and the
       downstream elements whose inputs changed;
    4. calls :meth:`charge` so the schedule's bookkeeping cost (queue
       pushes, heap maintenance, sampling) lands in the sweep's
       :class:`~repro.core.sweepstats.SweepStats` and is priced by the
       CPU/GPU cost models.
    """

    name: str = "abstract"
    #: does the driver need to compute downstream re-activation sets?
    wants_downstream: bool = True
    #: does :attr:`active` cover *every* still-unconverged element each
    #: round?  Exhaustive schedules may also terminate on the global sum
    #: criterion; partial-batch schedules must drain instead (their batch
    #: sum understates the global delta).
    exhaustive: bool = True

    def __init__(self, n_elements: int, element_threshold: float):
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        if element_threshold <= 0:
            raise ValueError("element_threshold must be positive")
        self.n_elements = n_elements
        self.element_threshold = float(element_threshold)

    @property
    def active(self) -> np.ndarray:
        """Element indices to process this round (int64)."""
        raise NotImplementedError

    def update(
        self,
        processed: np.ndarray,
        deltas: np.ndarray,
        downstream: np.ndarray | None = None,
        downstream_priority: np.ndarray | None = None,
    ) -> None:
        """Feed back one sweep's per-element deltas.

        ``downstream`` (optional, duplicates allowed) lists elements whose
        inputs changed; ``downstream_priority`` aligns with it and carries
        the size of the upstream change (a residual lower bound).
        """

    def reactivate(
        self, elements: np.ndarray, priorities: np.ndarray | None = None
    ) -> None:
        """Re-enqueue elements invalidated from *outside* the sweep.

        The sharded driver calls this after a boundary exchange: halo
        beliefs / ghost messages that changed upstream re-activate the
        owned elements they feed, waking a drained shard.  ``priorities``
        (aligned, optional) carries the upstream change magnitude for the
        priority schedules.  Synchronous schedules ignore it — they
        process everything anyway.
        """

    def restrict(
        self, elements: np.ndarray, priorities: np.ndarray | None = None
    ) -> None:
        """Limit the *initial* active set to ``elements`` (warm start).

        Incremental re-convergence (:mod:`repro.stream.incremental`)
        calls this once, before the first sweep: a run warm-started from
        a converged state only needs to repopulate the dirty region —
        the normal :meth:`update` feedback then grows the active set as
        far as the perturbation actually propagates.  ``priorities``
        (aligned, optional) carries residual estimates for the priority
        schedules.  Synchronous schedules ignore it: they sweep every
        element anyway, and their warm-start saving is fewer iterations.
        """

    @property
    def drained(self) -> bool:
        """True when every element individually passed its convergence
        check — the §3.5 termination condition."""
        return False

    def pressure(self) -> float:
        """Scheduling urgency: how much unconverged work this schedule
        is holding.  The async sharded policy ranks shards by pressure
        so hot shards sweep more often (Splash-style).  The base
        implementation reports the full element count — right for
        schedules that sweep everything every round."""
        return float(self.n_elements)

    def charge(self, stats: SweepStats) -> None:
        """Account this round's scheduling overhead into ``stats``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self.n_elements}>"


class SynchronousSchedule(Schedule):
    """Full sweeps: every element, every round, no queue bookkeeping."""

    name = "sync"
    wants_downstream = False

    def __init__(self, n_elements: int, element_threshold: float):
        super().__init__(n_elements, element_threshold)
        self._all = np.arange(n_elements, dtype=np.int64)

    @property
    def active(self) -> np.ndarray:
        return self._all


class WorkQueueSchedule(Schedule):
    """The paper's §3.5 FIFO queue of unconverged elements."""

    name = "work_queue"

    def __init__(self, n_elements: int, element_threshold: float):
        super().__init__(n_elements, element_threshold)
        self.queue = WorkQueue(n_elements, element_threshold)
        self._last_processed = n_elements
        self._reactivated = 0

    @property
    def active(self) -> np.ndarray:
        return self.queue.active

    def update(self, processed, deltas, downstream=None, downstream_priority=None):
        self._last_processed = len(processed)
        self.queue.repopulate(deltas, downstream)

    def reactivate(self, elements, priorities=None):
        self._reactivated += self.queue.merge(np.asarray(elements, dtype=np.int64))

    def restrict(self, elements, priorities=None):
        self.queue.seed(np.asarray(elements, dtype=np.int64))

    @property
    def drained(self) -> bool:
        return self.queue.empty

    def pressure(self) -> float:
        return float(len(self.queue))

    def charge(self, stats: SweepStats) -> None:
        # clear + atomic pushes (§3.5): one compare-and-push per survivor,
        # plus any cross-shard reactivations merged since the last sweep
        stats.queue_ops += self._last_processed + len(self.queue) + self._reactivated
        stats.atomic_ops += len(self.queue) + self._reactivated
        self._reactivated = 0


class ResidualSchedule(Schedule):
    """Lazy max-priority scheduling over per-element residuals.

    Keeps a dense priority array (the batch-parallel equivalent of the
    lazy max-heap: stale entries are overwritten rather than popped) and
    each round processes the top ``batch_fraction`` of the eligible
    elements.  Unprocessed elements start at ``+inf`` so the first rounds
    establish true residuals.
    """

    name = "residual"
    exhaustive = False

    def __init__(
        self,
        n_elements: int,
        element_threshold: float,
        *,
        batch_fraction: float = 0.5,
    ):
        super().__init__(n_elements, element_threshold)
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError("batch_fraction must lie in (0, 1]")
        self.batch_fraction = float(batch_fraction)
        self.priority = np.full(n_elements, np.inf)
        self._last_processed = 0
        self._last_pushes = 0
        self._reactivated = 0

    # -- selection -----------------------------------------------------
    def _eligible(self) -> np.ndarray:
        return np.flatnonzero(self.priority >= self.element_threshold)

    def _batch_size(self, n_eligible: int) -> int:
        return max(1, int(math.ceil(self.batch_fraction * n_eligible)))

    @property
    def active(self) -> np.ndarray:
        eligible = self._eligible()
        k = len(eligible)
        batch = self._batch_size(k)
        if k == 0 or batch >= k:
            return eligible
        order = np.argpartition(self.priority[eligible], k - batch)[k - batch:]
        return np.sort(eligible[order])

    # -- feedback ------------------------------------------------------
    def update(self, processed, deltas, downstream=None, downstream_priority=None):
        self._last_processed = len(processed)
        if len(processed):
            self.priority[processed] = deltas
        pushes = int(np.count_nonzero(deltas >= self.element_threshold))
        if downstream is not None and len(downstream):
            if downstream_priority is None:
                raise ValueError("downstream elements need priorities")
            # lazy-heap insert: keep the larger of the stale and new keys
            np.maximum.at(self.priority, downstream, downstream_priority)
            pushes += len(downstream)
        self._last_pushes = pushes

    def reactivate(self, elements, priorities=None):
        elements = np.asarray(elements, dtype=np.int64)
        if not len(elements):
            return
        if priorities is None:
            keys = np.full(len(elements), self.element_threshold)
        else:
            # clamp to the threshold so a reactivated element is always
            # eligible, however small the upstream change that woke it
            keys = np.maximum(np.asarray(priorities, dtype=float), self.element_threshold)
        np.maximum.at(self.priority, elements, keys)
        self._reactivated += len(elements)

    def restrict(self, elements, priorities=None):
        # zero out the optimistic +inf start, then mark only the dirty
        # region eligible — the lazy-heap equivalent of seeding the queue
        self.priority[:] = 0.0
        elements = np.asarray(elements, dtype=np.int64)
        if not len(elements):
            return
        if priorities is None:
            self.priority[elements] = np.inf
        else:
            self.priority[elements] = np.maximum(
                np.asarray(priorities, dtype=float), self.element_threshold
            )

    @property
    def drained(self) -> bool:
        return not bool(np.any(self.priority >= self.element_threshold))

    def pressure(self) -> float:
        # residual mass still eligible; +inf (never-processed) entries
        # are clamped so fresh shards rank high but finite
        eligible = self.priority[self.priority >= self.element_threshold]
        if not len(eligible):
            return 0.0
        return float(np.minimum(eligible, 1.0e6).sum())

    def charge(self, stats: SweepStats) -> None:
        # exact priority order: every push pays O(log n) heap levels, each
        # an atomic-visible compare-exchange — the contention the relaxed
        # literature (Aksenov et al.) removes
        depth = max(1, int(math.ceil(math.log2(max(self.n_elements, 2)))))
        pushes = self._last_pushes + self._reactivated
        stats.queue_ops += self._last_processed + pushes
        stats.atomic_ops += pushes * depth
        self._reactivated = 0


class RelaxedPrioritySchedule(ResidualSchedule):
    """k-way relaxed priority sampling (Aksenov et al., MultiQueue-style).

    Selection draws ``relaxation`` uniform candidates per batch slot and
    keeps the best one, approximating max-priority order while every
    queue operation stays O(1) and contention-free.  The run is
    deterministic given ``seed``.
    """

    name = "relaxed"

    def __init__(
        self,
        n_elements: int,
        element_threshold: float,
        *,
        batch_fraction: float = 0.5,
        relaxation: int = 2,
        seed: int = 0,
    ):
        super().__init__(n_elements, element_threshold, batch_fraction=batch_fraction)
        if relaxation < 1:
            raise ValueError("relaxation must be at least 1")
        self.relaxation = int(relaxation)
        self._rng = np.random.default_rng(seed)

    @property
    def active(self) -> np.ndarray:
        eligible = self._eligible()
        k = len(eligible)
        batch = self._batch_size(k)
        if k == 0 or batch >= k:
            return eligible
        # power of `relaxation` choices: per slot, the best of c samples
        candidates = self._rng.integers(0, k, size=(batch, self.relaxation))
        keys = self.priority[eligible[candidates]]
        picked = candidates[np.arange(batch), keys.argmax(axis=1)]
        return np.unique(eligible[picked])

    def charge(self, stats: SweepStats) -> None:
        # relaxed queues: O(1) per push, no serialized heap root — each
        # push is a single atomic to one of many independent queues
        pushes = self._last_pushes + self._reactivated
        stats.queue_ops += self._last_processed + pushes
        stats.atomic_ops += pushes
        self._reactivated = 0


def make_schedule(
    name: str,
    n_elements: int,
    element_threshold: float,
    *,
    batch_fraction: float = 0.5,
    relaxation: int = 2,
    seed: int = 0,
) -> Schedule:
    """Instantiate a schedule by canonical (or aliased) name."""
    canonical = normalize_schedule(name)
    if canonical == "sync":
        return SynchronousSchedule(n_elements, element_threshold)
    if canonical == "work_queue":
        return WorkQueueSchedule(n_elements, element_threshold)
    if canonical == "residual":
        return ResidualSchedule(
            n_elements, element_threshold, batch_fraction=batch_fraction
        )
    return RelaxedPrioritySchedule(
        n_elements,
        element_threshold,
        batch_fraction=batch_fraction,
        relaxation=relaxation,
        seed=seed,
    )


@dataclass
class ResidualBP:
    """Max-residual edge scheduling (legacy alias over the unified driver).

    Residual scheduling used to live in ``repro.core.residual`` as a
    standalone driver with its own result type; it is now just
    ``LoopyBP(paradigm="edge", schedule="residual")``.  This class
    survives for callers of the old entry point; results are plain
    :class:`~repro.core.loopy.LoopyResult` objects.
    """

    criterion: ConvergenceCriterion = field(default_factory=ConvergenceCriterion)
    damping: float = 0.0
    batch_fraction: float = 0.5

    def run(self, graph: "BeliefGraph") -> "LoopyResult":
        from repro.core.loopy import LoopyBP  # deferred: loopy imports us

        return LoopyBP(
            paradigm="edge",
            schedule="residual",
            criterion=self.criterion,
            damping=self.damping,
            batch_fraction=self.batch_fraction,
        ).run(graph)

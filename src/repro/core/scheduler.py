"""Pluggable update-scheduling strategies for loopy BP.

The paper's §3.5 work queue is one point in a larger scheduling design
space.  This module abstracts "which elements does the next sweep
process, and when does the run stop" behind a :class:`Schedule` object so
that the single driver loop in :class:`~repro.core.loopy.LoopyBP` can run
any policy, with any paradigm, through any backend:

``"sync"``
    Full synchronous sweeps — every element, every iteration
    (Algorithm 1 without the §3.5 refinement).

``"work_queue"``
    The paper's §3.5 queue of unconverged elements: after each sweep the
    queue "clears itself and populates atomically with the indices of
    elements which have yet to converge", plus the downstream
    re-enqueueing refinement that keeps the fixed point sound.

``"residual"``
    Max-residual priority scheduling (Gonzalez et al.; Van der Merwe et
    al., *Message Scheduling for Performant, Many-Core Belief
    Propagation*): each round processes the batch of elements with the
    largest residuals.  Exact priority order costs heap maintenance —
    O(log n) atomic-visible operations per push — which the cost models
    price via :meth:`Schedule.charge`.

``"relaxed"``
    Relaxed concurrent priority scheduling (Aksenov et al., *Relaxed
    Scheduling for Scalable Belief Propagation*): instead of the exact
    max, each batch slot samples ``relaxation`` candidate elements and
    takes the best — the MultiQueue-style "power of k choices" that
    trades strict priority order for O(1) contention-free queue
    operations.  Statistically near-max, massively parallelizable.

Every schedule is a small amount of state over a flat priority/activity
view of the elements (nodes for the per-node paradigm, directed edges
for the per-edge paradigm); the numerical kernels never change.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.sweepstats import SweepStats
from repro.core.workqueue import WorkQueue

__all__ = [
    "SCHEDULES",
    "Schedule",
    "SynchronousSchedule",
    "WorkQueueSchedule",
    "ResidualSchedule",
    "RelaxedPrioritySchedule",
    "make_schedule",
    "normalize_schedule",
]

#: the canonical schedule names, in ablation-ladder order
SCHEDULES = ("sync", "work_queue", "residual", "relaxed")

_ALIASES = {
    "synchronous": "sync",
    "full": "sync",
    "fifo": "work_queue",
    "queue": "work_queue",
    "workqueue": "work_queue",
    "residual_priority": "residual",
    "priority": "residual",
    "splash": "residual",
    "relaxed_priority": "relaxed",
    "multiqueue": "relaxed",
}


def normalize_schedule(name: str) -> str:
    """Canonical schedule name, accepting common aliases."""
    canonical = _ALIASES.get(name, name)
    if canonical not in SCHEDULES:
        raise ValueError(f"unknown schedule {name!r}; known: {list(SCHEDULES)}")
    return canonical


class Schedule:
    """Which elements the next sweep processes, and when the run drains.

    A schedule is bound to ``n_elements`` flat element indices (nodes or
    directed edges) and the per-element convergence threshold the driver
    derives from the global criterion.  Each driver round:

    1. reads :attr:`active` — the element batch to sweep;
    2. sweeps it (kernels are schedule-agnostic);
    3. calls :meth:`update` with the observed per-element deltas and the
       downstream elements whose inputs changed;
    4. calls :meth:`charge` so the schedule's bookkeeping cost (queue
       pushes, heap maintenance, sampling) lands in the sweep's
       :class:`~repro.core.sweepstats.SweepStats` and is priced by the
       CPU/GPU cost models.
    """

    name: str = "abstract"
    #: does the driver need to compute downstream re-activation sets?
    wants_downstream: bool = True
    #: does :attr:`active` cover *every* still-unconverged element each
    #: round?  Exhaustive schedules may also terminate on the global sum
    #: criterion; partial-batch schedules must drain instead (their batch
    #: sum understates the global delta).
    exhaustive: bool = True

    def __init__(self, n_elements: int, element_threshold: float):
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        if element_threshold <= 0:
            raise ValueError("element_threshold must be positive")
        self.n_elements = n_elements
        self.element_threshold = float(element_threshold)

    @property
    def active(self) -> np.ndarray:
        """Element indices to process this round (int64)."""
        raise NotImplementedError

    def update(
        self,
        processed: np.ndarray,
        deltas: np.ndarray,
        downstream: np.ndarray | None = None,
        downstream_priority: np.ndarray | None = None,
    ) -> None:
        """Feed back one sweep's per-element deltas.

        ``downstream`` (optional, duplicates allowed) lists elements whose
        inputs changed; ``downstream_priority`` aligns with it and carries
        the size of the upstream change (a residual lower bound).
        """

    @property
    def drained(self) -> bool:
        """True when every element individually passed its convergence
        check — the §3.5 termination condition."""
        return False

    def charge(self, stats: SweepStats) -> None:
        """Account this round's scheduling overhead into ``stats``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self.n_elements}>"


class SynchronousSchedule(Schedule):
    """Full sweeps: every element, every round, no queue bookkeeping."""

    name = "sync"
    wants_downstream = False

    def __init__(self, n_elements: int, element_threshold: float):
        super().__init__(n_elements, element_threshold)
        self._all = np.arange(n_elements, dtype=np.int64)

    @property
    def active(self) -> np.ndarray:
        return self._all


class WorkQueueSchedule(Schedule):
    """The paper's §3.5 FIFO queue of unconverged elements."""

    name = "work_queue"

    def __init__(self, n_elements: int, element_threshold: float):
        super().__init__(n_elements, element_threshold)
        self.queue = WorkQueue(n_elements, element_threshold)
        self._last_processed = n_elements

    @property
    def active(self) -> np.ndarray:
        return self.queue.active

    def update(self, processed, deltas, downstream=None, downstream_priority=None):
        self._last_processed = len(processed)
        self.queue.repopulate(deltas, downstream)

    @property
    def drained(self) -> bool:
        return self.queue.empty

    def charge(self, stats: SweepStats) -> None:
        # clear + atomic pushes (§3.5): one compare-and-push per survivor
        stats.queue_ops += self._last_processed + len(self.queue)
        stats.atomic_ops += len(self.queue)


class ResidualSchedule(Schedule):
    """Lazy max-priority scheduling over per-element residuals.

    Keeps a dense priority array (the batch-parallel equivalent of the
    lazy max-heap: stale entries are overwritten rather than popped) and
    each round processes the top ``batch_fraction`` of the eligible
    elements.  Unprocessed elements start at ``+inf`` so the first rounds
    establish true residuals.
    """

    name = "residual"
    exhaustive = False

    def __init__(
        self,
        n_elements: int,
        element_threshold: float,
        *,
        batch_fraction: float = 0.5,
    ):
        super().__init__(n_elements, element_threshold)
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError("batch_fraction must lie in (0, 1]")
        self.batch_fraction = float(batch_fraction)
        self.priority = np.full(n_elements, np.inf)
        self._last_processed = 0
        self._last_pushes = 0

    # -- selection -----------------------------------------------------
    def _eligible(self) -> np.ndarray:
        return np.flatnonzero(self.priority >= self.element_threshold)

    def _batch_size(self, n_eligible: int) -> int:
        return max(1, int(math.ceil(self.batch_fraction * n_eligible)))

    @property
    def active(self) -> np.ndarray:
        eligible = self._eligible()
        k = len(eligible)
        batch = self._batch_size(k)
        if k == 0 or batch >= k:
            return eligible
        order = np.argpartition(self.priority[eligible], k - batch)[k - batch:]
        return np.sort(eligible[order])

    # -- feedback ------------------------------------------------------
    def update(self, processed, deltas, downstream=None, downstream_priority=None):
        self._last_processed = len(processed)
        if len(processed):
            self.priority[processed] = deltas
        pushes = int(np.count_nonzero(deltas >= self.element_threshold))
        if downstream is not None and len(downstream):
            if downstream_priority is None:
                raise ValueError("downstream elements need priorities")
            # lazy-heap insert: keep the larger of the stale and new keys
            np.maximum.at(self.priority, downstream, downstream_priority)
            pushes += len(downstream)
        self._last_pushes = pushes

    @property
    def drained(self) -> bool:
        return not bool(np.any(self.priority >= self.element_threshold))

    def charge(self, stats: SweepStats) -> None:
        # exact priority order: every push pays O(log n) heap levels, each
        # an atomic-visible compare-exchange — the contention the relaxed
        # literature (Aksenov et al.) removes
        depth = max(1, int(math.ceil(math.log2(max(self.n_elements, 2)))))
        stats.queue_ops += self._last_processed + self._last_pushes
        stats.atomic_ops += self._last_pushes * depth


class RelaxedPrioritySchedule(ResidualSchedule):
    """k-way relaxed priority sampling (Aksenov et al., MultiQueue-style).

    Selection draws ``relaxation`` uniform candidates per batch slot and
    keeps the best one, approximating max-priority order while every
    queue operation stays O(1) and contention-free.  The run is
    deterministic given ``seed``.
    """

    name = "relaxed"

    def __init__(
        self,
        n_elements: int,
        element_threshold: float,
        *,
        batch_fraction: float = 0.5,
        relaxation: int = 2,
        seed: int = 0,
    ):
        super().__init__(n_elements, element_threshold, batch_fraction=batch_fraction)
        if relaxation < 1:
            raise ValueError("relaxation must be at least 1")
        self.relaxation = int(relaxation)
        self._rng = np.random.default_rng(seed)

    @property
    def active(self) -> np.ndarray:
        eligible = self._eligible()
        k = len(eligible)
        batch = self._batch_size(k)
        if k == 0 or batch >= k:
            return eligible
        # power of `relaxation` choices: per slot, the best of c samples
        candidates = self._rng.integers(0, k, size=(batch, self.relaxation))
        keys = self.priority[eligible[candidates]]
        picked = candidates[np.arange(batch), keys.argmax(axis=1)]
        return np.unique(eligible[picked])

    def charge(self, stats: SweepStats) -> None:
        # relaxed queues: O(1) per push, no serialized heap root — each
        # push is a single atomic to one of many independent queues
        stats.queue_ops += self._last_processed + self._last_pushes
        stats.atomic_ops += self._last_pushes


def make_schedule(
    name: str,
    n_elements: int,
    element_threshold: float,
    *,
    batch_fraction: float = 0.5,
    relaxation: int = 2,
    seed: int = 0,
) -> Schedule:
    """Instantiate a schedule by canonical (or aliased) name."""
    canonical = normalize_schedule(name)
    if canonical == "sync":
        return SynchronousSchedule(n_elements, element_threshold)
    if canonical == "work_queue":
        return WorkQueueSchedule(n_elements, element_threshold)
    if canonical == "residual":
        return ResidualSchedule(
            n_elements, element_threshold, batch_fraction=batch_fraction
        )
    return RelaxedPrioritySchedule(
        n_elements,
        element_threshold,
        batch_fraction=batch_fraction,
        relaxation=relaxation,
        seed=seed,
    )

"""Operation accounting emitted by the BP kernels.

Every sweep (one pass over the active nodes or edges) reports what it did
in hardware-neutral units: floating-point operations, bytes moved
sequentially vs via random access, and atomic operations.  The backends
turn these counts into modeled runtimes — the CPU cache model for the "C"
and OpenMP engines, the GPU simulator for CUDA and OpenACC (paper §3.3
discusses exactly this trade: "extra atomic operations versus memory
lookups").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SweepStats"]


@dataclass
class SweepStats:
    """Counts from one kernel sweep (all additive)."""

    #: nodes whose beliefs were recomputed
    nodes_processed: int = 0
    #: directed edges whose messages were recomputed
    edges_processed: int = 0
    #: floating point operations (multiply-adds count as two)
    flops: int = 0
    #: bytes read/written with streaming (unit-stride) access
    sequential_bytes: int = 0
    #: bytes read via data-dependent (gather) access — the per-node
    #: paradigm's "many more memory lookups ... in random order" (§3.3)
    random_bytes: int = 0
    #: number of data-dependent gather *accesses* (each touching
    #: ``random_bytes / random_accesses`` bytes); the cache/coalescing
    #: models work per access, not per byte
    random_accesses: int = 0
    #: atomic transactions — the per-edge paradigm's combine step (one
    #: line-coalesced transaction per edge under the warp-per-edge
    #: mapping) plus work-queue pushes (§3.3, §3.5)
    atomic_ops: int = 0
    #: work-queue maintenance operations (clear + push), §3.5
    queue_ops: int = 0
    #: reduction elements folded by the convergence check (Alg. 1 line 12)
    reduction_elems: int = 0
    #: number of distinct kernel launches this sweep maps onto (GPU model)
    kernel_launches: int = 0
    #: launches after executor-level fusion (gather + product + scatter +
    #: combine in one program); 0 means "not fused" — the interpreted
    #: executor never sets it, so cost models fall back to
    #: ``kernel_launches``
    fused_launches: int = 0

    def __iadd__(self, other: "SweepStats") -> "SweepStats":
        self.nodes_processed += other.nodes_processed
        self.edges_processed += other.edges_processed
        self.flops += other.flops
        self.sequential_bytes += other.sequential_bytes
        self.random_bytes += other.random_bytes
        self.random_accesses += other.random_accesses
        self.atomic_ops += other.atomic_ops
        self.queue_ops += other.queue_ops
        self.reduction_elems += other.reduction_elems
        self.kernel_launches += other.kernel_launches
        self.fused_launches += other.fused_launches
        return self

    def __add__(self, other: "SweepStats") -> "SweepStats":
        result = SweepStats()
        result += self
        result += other
        return result

    @property
    def total_bytes(self) -> int:
        return self.sequential_bytes + self.random_bytes

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view of every counter — the span-attribute payload
        telemetry attaches to per-sweep spans (DESIGN.md §11)."""
        return {
            "nodes_processed": self.nodes_processed,
            "edges_processed": self.edges_processed,
            "flops": self.flops,
            "sequential_bytes": self.sequential_bytes,
            "random_bytes": self.random_bytes,
            "random_accesses": self.random_accesses,
            "atomic_ops": self.atomic_ops,
            "queue_ops": self.queue_ops,
            "reduction_elems": self.reduction_elems,
            "kernel_launches": self.kernel_launches,
            "fused_launches": self.fused_launches,
        }


@dataclass
class RunStats:
    """Aggregated counts over a whole BP run, by iteration."""

    per_iteration: list[SweepStats] = field(default_factory=list)

    def append(self, stats: SweepStats) -> None:
        self.per_iteration.append(stats)

    @property
    def total(self) -> SweepStats:
        agg = SweepStats()
        for s in self.per_iteration:
            agg += s
        return agg

    @property
    def iterations(self) -> int:
        return len(self.per_iteration)

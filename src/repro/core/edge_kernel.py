"""Per-edge processing paradigm (paper §3.3, Figure 3, right).

"Each edge pulls the current state of the parent node and combines it with
the joint probability matrix along the edge and the child node's state to
produce the new state of the child node. ... a child node may have many
parents and thus must combine each edge's contribution to its new state
atomically to avoid race conditions."

Operationally the sweep walks the active edges in chunks; each chunk
recomputes its messages from the *current* beliefs (so later chunks observe
the effect of earlier ones — the freshness that lets the paper's edge
versions "converge in only a few iterations", §4.2), scatter-adds the
log-message deltas into the destination accumulators (the atomic combine)
and refreshes the beliefs of the touched destinations.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import LoopyState
from repro.core.sweepstats import SweepStats

__all__ = ["edge_sweep"]

_FSIZE = 4
_ISIZE = 8


def edge_sweep(
    state: LoopyState,
    active_edges: np.ndarray,
    *,
    update_rule: str = "sum_product",
    semiring: str = "sum",
    damping: float = 0.0,
    chunks: int = 8,
) -> tuple[np.ndarray, np.ndarray, SweepStats]:
    """One sweep over ``active_edges``.

    Returns ``(edge_deltas, touched_nodes, stats)``: the L1 message change
    per active edge (queue filter), the destination nodes whose beliefs
    were recomputed, and the operation counts.
    """
    stats = SweepStats()
    n_active = len(active_edges)
    if n_active == 0:
        return (
            np.empty(0, dtype=np.float32),
            np.empty(0, dtype=np.int64),
            stats,
        )

    b = state.b
    chunks = max(1, min(chunks, n_active))
    bounds = np.linspace(0, n_active, chunks + 1, dtype=np.int64)
    edge_deltas = np.empty(n_active, dtype=np.float32)
    touched_mask = np.zeros(state.n, dtype=bool)

    for k in range(chunks):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        if lo == hi:
            continue
        chunk = active_edges[lo:hi]
        if update_rule == "broadcast":
            msgs = state.propagate_messages(chunk, semiring=semiring)
        elif update_rule == "sum_product":
            msgs = state.cavity_messages(chunk, semiring=semiring)
        else:
            raise ValueError(f"unknown update_rule {update_rule!r}")
        if damping > 0.0:
            msgs = (1.0 - damping) * msgs + damping * state.messages[chunk]
        edge_deltas[lo:hi] = state.store_messages(chunk, msgs)

        chunk_mask = np.zeros(state.n, dtype=bool)
        chunk_mask[state.dst[chunk]] = True
        chunk_mask &= state.free_mask
        dirty = np.flatnonzero(chunk_mask)
        if len(dirty):
            state.beliefs[dirty] = state.combine_nodes(dirty)
            touched_mask |= chunk_mask
        stats.kernel_launches += 2  # message kernel + combine kernel

    touched_nodes = np.flatnonzero(touched_mask)

    # --- accounting (§3.3: atomics instead of gathers) --------------------
    n_touched = len(touched_nodes)
    stats.edges_processed = n_active
    stats.nodes_processed = n_touched
    stats.flops = n_active * (2 * b * b + 2 * b) + n_touched * (4 * b)
    # per edge: streaming reads of the stored message / adjacency entries
    # and the new-message write; one data-dependent gather of the source
    # belief vector
    stats.sequential_bytes = n_active * (2 * b * _FSIZE + 2 * _ISIZE)
    stats.random_bytes = n_active * (b * _FSIZE)
    stats.random_accesses = n_active
    # the defining cost (§3.3): the atomic combine into the destination
    # accumulator — one line-coalesced atomic transaction per edge under
    # the warp-per-edge mapping (the belief entries share a cache line)
    stats.atomic_ops = n_active
    stats.reduction_elems = n_touched
    return edge_deltas, touched_nodes, stats

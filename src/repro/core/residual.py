"""Residual-priority BP (extension; DESIGN.md §6) — compatibility shim.

Residual scheduling used to live here as a standalone driver with its own
result type.  It is now one strategy of the pluggable scheduling layer
(:mod:`repro.core.scheduler`), run by the unified
:class:`~repro.core.loopy.LoopyBP` driver: ``ResidualBP`` below is a thin
alias over ``LoopyBP(paradigm="edge", schedule="residual")`` kept for
callers of the old entry point.  Results are plain
:class:`~repro.core.loopy.LoopyResult` objects (which carry the old
``updates`` counter as a property); ``ResidualResult`` no longer exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP, LoopyResult

__all__ = ["ResidualBP"]


@dataclass
class ResidualBP:
    """Max-residual edge scheduling (alias over the unified driver).

    Prefer ``LoopyBP(schedule="residual")`` directly; this class survives
    so existing callers keep working.
    """

    criterion: ConvergenceCriterion = field(default_factory=ConvergenceCriterion)
    damping: float = 0.0
    batch_fraction: float = 0.5

    def run(self, graph: BeliefGraph) -> LoopyResult:
        return LoopyBP(
            paradigm="edge",
            schedule="residual",
            criterion=self.criterion,
            damping=self.damping,
            batch_fraction=self.batch_fraction,
        ).run(graph)

"""Residual-priority BP scheduling (extension; DESIGN.md §6).

The paper's work queue (§3.5) is FIFO over unconverged elements; the
residual-splash literature it builds on (Gonzalez et al. 2009, cited as
[5]/[7]) instead always processes the element with the **largest
residual** — the message whose update would change the most.  This
module implements residual scheduling for the edge paradigm so the
ablation benchmark can compare the paper's queue against the stronger
scheduler it approximates.

The implementation keeps a lazy max-heap of (−residual, edge) entries;
stale entries are skipped on pop (the standard lazy-deletion trick),
and each processed edge updates its destination belief immediately
(fully asynchronous BP).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.state import LoopyState
from repro.core.sweepstats import RunStats, SweepStats

__all__ = ["ResidualBP", "ResidualResult"]


@dataclass
class ResidualResult:
    beliefs: np.ndarray
    updates: int
    converged: bool
    run_stats: RunStats

    @property
    def iterations(self) -> int:
        """Equivalent full-graph sweeps (updates / edges)."""
        return max(1, self.run_stats.iterations)


@dataclass
class ResidualBP:
    """Asynchronous max-residual edge scheduling.

    ``criterion.max_iterations`` bounds the equivalent number of full
    sweeps; convergence is declared when the largest residual falls
    below ``threshold / n_edges`` (so the global L1 criterion of
    Algorithm 1 is implied).
    """

    criterion: ConvergenceCriterion = field(default_factory=ConvergenceCriterion)
    damping: float = 0.0

    def run(self, graph: BeliefGraph) -> ResidualResult:
        state = LoopyState(graph)
        m = state.m
        if m == 0:
            return ResidualResult(state.beliefs.copy(), 0, True, RunStats())
        threshold = self.criterion.effective_threshold() / m
        max_updates = self.criterion.max_iterations * m

        # initial residuals: one synchronous message computation
        msgs = state.cavity_messages()
        residuals = np.abs(msgs - state.messages).sum(axis=1)
        heap: list[tuple[float, int]] = [
            (-float(residuals[e]), e) for e in range(m) if residuals[e] >= threshold
        ]
        heapq.heapify(heap)
        current = residuals.copy()

        run_stats = RunStats()
        stats = SweepStats()
        updates = 0
        converged = False
        while heap:
            neg_res, e = heapq.heappop(heap)
            if -neg_res < current[e] - 1e-12:  # stale entry
                continue
            if current[e] < threshold:
                continue
            if updates >= max_updates:
                break
            updates += 1
            edge_ids = np.array([e], dtype=np.int64)
            new_msg = state.cavity_messages(edge_ids)
            if self.damping > 0.0:
                new_msg = (1 - self.damping) * new_msg + self.damping * state.messages[edge_ids]
            state.store_messages(edge_ids, new_msg)
            current[e] = 0.0
            v = int(state.dst[e])
            if state.free_mask[v]:
                state.beliefs[v] = state.combine_nodes(np.array([v]))[0]
            # out-edges of v gain residual: recompute lazily
            out = state.gather_out_edges(np.array([v]))
            if len(out):
                fresh = state.cavity_messages(out)
                res = np.abs(fresh - state.messages[out]).sum(axis=1)
                for idx, edge in zip(res, out):
                    if idx > current[edge]:
                        current[edge] = float(idx)
                        heapq.heappush(heap, (-float(idx), int(edge)))
            stats.edges_processed += 1 + len(out)
            stats.nodes_processed += 1
            stats.flops += (1 + len(out)) * (2 * state.b**2 + 2 * state.b)
            if updates % m == 0:
                run_stats.append(stats)
                stats = SweepStats()
        else:
            converged = True
        if stats.edges_processed:
            run_stats.append(stats)
        if not heap:
            converged = True
        state.export_beliefs()
        return ResidualResult(state.beliefs.copy(), updates, converged, run_stats)

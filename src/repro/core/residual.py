"""Deprecated location of :class:`ResidualBP` — import it from
:mod:`repro.core.scheduler` (or ``repro.core``) instead.

Residual scheduling is one strategy of the pluggable scheduling layer
(DESIGN.md §6/§7), run by the unified
:class:`~repro.core.loopy.LoopyBP` driver; ``ResidualBP`` is a thin
alias over ``LoopyBP(paradigm="edge", schedule="residual")`` and now
lives with the schedules.  This module re-exports it so old imports keep
working, at the cost of a :class:`DeprecationWarning` on import.
"""

from __future__ import annotations

import warnings

from repro.core.scheduler import ResidualBP

__all__ = ["ResidualBP"]

warnings.warn(
    "repro.core.residual is deprecated and will be removed in repro 2.0; "
    "import ResidualBP from repro.core.scheduler (or repro.core)",
    DeprecationWarning,
    stacklevel=2,
)

"""Deprecated location of :class:`WorkQueue` — import it from
:mod:`repro.core.scheduler` (or ``repro.core``) instead.

The §3.5 work queue became one strategy of the pluggable scheduling
layer; the implementation lives next to the schedules that wrap it.
This module re-exports it so old imports keep working, at the cost of a
:class:`DeprecationWarning` on import.
"""

from __future__ import annotations

import warnings

from repro.core.scheduler import WorkQueue

__all__ = ["WorkQueue"]

warnings.warn(
    "repro.core.workqueue is deprecated and will be removed in repro 2.0; "
    "import WorkQueue from repro.core.scheduler (or repro.core)",
    DeprecationWarning,
    stacklevel=2,
)

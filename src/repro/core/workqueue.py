"""Work queues of unconverged elements (paper §3.5).

"From profiling, we observe that most nodes converge quickly after a few
iterations and that graph convergence becomes dependent on a few nodes."
The queue therefore holds only the indices of elements (nodes for the
per-node paradigm, directed edges for the per-edge paradigm) that have yet
to converge; after every iteration it "clears itself and populates
atomically with the indices of elements which have yet to converge to a
given threshold".

We add one refinement needed for a *sound* fixed point: when an element is
still changing, its downstream neighbours are re-enqueued too (otherwise a
node that converged early would never observe later changes upstream).
This matches how the residual-scheduling literature the paper builds on
(Gonzalez et al.) maintains its queues, and it is enabled by default.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkQueue"]


class WorkQueue:
    """Iteration-scoped queue of active element indices.

    Parameters
    ----------
    n_elements:
        Total number of schedulable elements.
    element_threshold:
        An element is considered locally converged when its own delta drops
        below this value.  The loopy driver derives it from the global
        criterion as ``threshold / n_elements`` so that "all elements
        locally converged" implies the global sum check passes.
    """

    def __init__(self, n_elements: int, element_threshold: float):
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        if element_threshold <= 0:
            raise ValueError("element_threshold must be positive")
        self.n_elements = n_elements
        self.element_threshold = float(element_threshold)
        self._active = np.arange(n_elements, dtype=np.int64)
        #: cumulative count of queue push operations (cost accounting, §3.5)
        self.pushes = 0
        #: cumulative number of repopulation rounds
        self.rounds = 0

    @property
    def active(self) -> np.ndarray:
        """Indices scheduled for the next sweep (sorted, unique)."""
        return self._active

    def __len__(self) -> int:
        return len(self._active)

    @property
    def empty(self) -> bool:
        return len(self._active) == 0

    def repopulate(
        self,
        deltas: np.ndarray,
        neighbours_of_dirty: np.ndarray | None = None,
    ) -> np.ndarray:
        """Clear and refill the queue after a sweep.

        ``deltas`` holds the per-element change of every element *processed
        this sweep* aligned with the previous active set; elements whose
        delta is still ≥ the threshold stay enqueued.
        ``neighbours_of_dirty`` optionally adds downstream elements that
        must be reconsidered because their inputs changed.
        """
        if len(deltas) != len(self._active):
            raise ValueError("deltas must align with the active set")
        dirty = self._active[deltas >= self.element_threshold]
        # Dedup via a membership mask: O(n) in C, far cheaper than sorting
        # the (duplicate-heavy) neighbour list with np.unique.
        mask = np.zeros(self.n_elements, dtype=bool)
        mask[dirty] = True
        if neighbours_of_dirty is not None and len(neighbours_of_dirty):
            mask[neighbours_of_dirty] = True
        self._active = np.flatnonzero(mask).astype(np.int64)
        self.pushes += len(self._active)
        self.rounds += 1
        return self._active

    def reset(self) -> None:
        """Re-enqueue every element (start of a run)."""
        self._active = np.arange(self.n_elements, dtype=np.int64)
        self.pushes = 0
        self.rounds = 0

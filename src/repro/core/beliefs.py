"""Belief storage layouts: struct-of-arrays vs array-of-structs (paper §3.4).

The paper evaluates two memory layouts for the node-belief and
joint-probability data and settles on the array-of-structs (AoS) design
after observing circa 56 % fewer data-cache reads and writes with
``cachegrind``.  We implement both layouts behind a common interface so the
ablation benchmark (E5) can compare them, and we expose the access-pattern
statistics the cost model needs (number of cache lines touched per sweep).

Both stores hold, for each of ``n`` nodes, a discrete probability vector of
``dims[i]`` states.  The *uniform* fast path — every node has the same
number of states — additionally exposes a dense ``(n, b)`` matrix view used
by the vectorized kernels.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "BeliefStore",
    "SoABeliefStore",
    "AoSBeliefStore",
    "BlockedBeliefStore",
    "CACHE_LINE_BYTES",
    "BLOCK_NODES",
]

#: Cache-line size assumed by the access-pattern model (bytes).
CACHE_LINE_BYTES = 64

#: Nodes per tile of the blocked (AoSoA) layout — one float32 lane set
#: per cache line, so a tile's state-plane is exactly one line wide.
BLOCK_NODES = CACHE_LINE_BYTES // 4

_FLOAT = np.float32


class BeliefStore:
    """Abstract container of per-node belief vectors.

    Subclasses fix the physical layout.  All indices are node ids in
    ``range(n)``; vectors are float32 and are not implicitly normalized.
    """

    layout: str = "abstract"

    def __init__(self, dims: np.ndarray):
        dims = np.asarray(dims, dtype=np.int64)
        if dims.ndim != 1:
            raise ValueError("dims must be a 1-D array of state counts")
        if len(dims) and dims.min() < 1:
            raise ValueError("every node needs at least one state")
        self.dims = dims
        self.n = len(dims)
        self.uniform = bool(len(dims)) and bool((dims == dims[0]).all())
        self.width = int(dims[0]) if self.uniform else int(dims.max(initial=0))

    # -- element access -------------------------------------------------
    def get(self, i: int) -> np.ndarray:
        """Return the belief vector of node ``i`` (a copy or view)."""
        raise NotImplementedError

    def set(self, i: int, value: np.ndarray) -> None:
        """Overwrite the belief vector of node ``i``."""
        raise NotImplementedError

    def fill_uniform(self) -> None:
        """Reset every node to the uniform distribution over its states."""
        for i in range(self.n):
            d = int(self.dims[i])
            self.set(i, np.full(d, 1.0 / d, dtype=_FLOAT))

    # -- bulk access ----------------------------------------------------
    def dense(self) -> np.ndarray:
        """Return an ``(n, width)`` dense matrix view/copy of all beliefs.

        Rows of nodes with fewer than ``width`` states are zero-padded.
        For the uniform layout this is the array the vectorized kernels
        operate on directly; mutating the returned array updates the store
        only when :meth:`dense_is_view` is true.
        """
        raise NotImplementedError

    def dense_is_view(self) -> bool:
        """Whether :meth:`dense` aliases the underlying storage."""
        return False

    def load_dense(self, matrix: np.ndarray) -> None:
        """Copy ``matrix`` (``(n, width)``) back into the store."""
        for i in range(self.n):
            self.set(i, matrix[i, : self.dims[i]])

    def copy(self) -> "BeliefStore":
        raise NotImplementedError

    def copy_rows_from(self, other: "BeliefStore", rows: np.ndarray) -> None:
        """Overwrite the given nodes' vectors with ``other``'s (same dims).

        Subclasses override with a vectorized path when both stores share
        the physical layout; this fallback loops.
        """
        for i in rows:
            self.set(int(i), other.get(int(i)))

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self.n):
            yield self.get(i)

    # -- cost-model hooks -------------------------------------------------
    def nbytes(self) -> int:
        """Exact bytes of backing storage, including layout padding and
        index structures — the truthful number capacity accounting
        (``BeliefGraph.memory_footprint``) reports per layout."""
        raise NotImplementedError

    def bytes_per_node(self) -> float:
        """Average bytes of storage footprint per node."""
        return float(self.nbytes()) / max(self.n, 1)

    def cache_lines_per_access(self) -> float:
        """Average distinct cache lines touched when reading one node's
        belief vector *and* its dimension metadata.

        This is the quantity behind the paper's cachegrind observation: the
        SoA layout splits the probabilities and the dims into two parallel
        arrays, so a single logical access touches (at least) two widely
        separated lines, while AoS packs them into one struct.
        """
        raise NotImplementedError

    def cache_lines_per_sweep_node(self) -> float:
        """Average cache lines per node touched by a *streaming* full
        sweep (ascending node order, every node visited).

        Random gathers pay :meth:`cache_lines_per_access`; a full sweep
        amortizes lines across neighbouring nodes, which is where the
        blocked layout earns its keep.  The default assumes no
        amortization beyond the layout's own packing.
        """
        return self.cache_lines_per_access()


class SoABeliefStore(BeliefStore):
    """Struct-of-arrays layout: one flat float array of probabilities plus
    parallel ``offsets``/``dims`` index arrays (paper §3.4, the rejected
    design)."""

    layout = "soa"

    def __init__(self, dims: np.ndarray):
        super().__init__(dims)
        self.offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(self.dims, out=self.offsets[1:])
        self.probs = np.zeros(int(self.offsets[-1]), dtype=_FLOAT)

    def get(self, i: int) -> np.ndarray:
        return self.probs[self.offsets[i] : self.offsets[i + 1]]

    def set(self, i: int, value: np.ndarray) -> None:
        seg = self.probs[self.offsets[i] : self.offsets[i + 1]]
        if len(value) != len(seg):
            raise ValueError(f"node {i} holds {len(seg)} states, got {len(value)}")
        seg[:] = value

    def dense(self) -> np.ndarray:
        if self.uniform:
            return self.probs.reshape(self.n, self.width)
        out = np.zeros((self.n, self.width), dtype=_FLOAT)
        for i in range(self.n):
            out[i, : self.dims[i]] = self.get(i)
        return out

    def dense_is_view(self) -> bool:
        return self.uniform

    def load_dense(self, matrix: np.ndarray) -> None:
        if self.uniform:
            self.probs[:] = matrix.reshape(-1)
        else:
            super().load_dense(matrix)

    def copy(self) -> "SoABeliefStore":
        clone = SoABeliefStore(self.dims)
        clone.probs[:] = self.probs
        return clone

    def copy_rows_from(self, other: BeliefStore, rows: np.ndarray) -> None:
        if not isinstance(other, SoABeliefStore) or len(other) != self.n:
            super().copy_rows_from(other, rows)
            return
        rows = np.asarray(rows, dtype=np.int64)
        if not len(rows):
            return
        starts = self.offsets[rows]
        sizes = self.dims[rows]
        total = int(sizes.sum())
        local = np.zeros(len(rows), dtype=np.int64)
        np.cumsum(sizes[:-1], out=local[1:])
        rank = np.arange(total) - np.repeat(local, sizes)
        flat = np.repeat(starts, sizes) + rank
        self.probs[flat] = other.probs[flat]

    def nbytes(self) -> int:
        # probabilities + an 8-byte offset + an 8-byte dim per node
        return int(self.probs.nbytes + self.offsets.nbytes + self.dims.nbytes)

    def cache_lines_per_access(self) -> float:
        # One access reads: the offset entry, the dim entry, and the
        # probability segment — three separate arrays, three line streams
        # (the index arrays partially cache, so they count fractionally).
        prob_lines = max(1.0, (self.width * 4) / CACHE_LINE_BYTES)
        return 1.3 + prob_lines

    def cache_lines_per_sweep_node(self) -> float:
        # Streaming the flat probs array is perfectly dense; the index
        # arrays only join the stream on ragged graphs.  The uniform
        # dense() view costs nothing extra (no copy).
        lines = (self.width * 4) / CACHE_LINE_BYTES
        if not self.uniform:
            lines += 16 / CACHE_LINE_BYTES
        return lines


class AoSBeliefStore(BeliefStore):
    """Array-of-structs layout: one record per node holding a statically
    sized float array plus its dimension (paper §3.4, the adopted design)."""

    layout = "aos"

    def __init__(self, dims: np.ndarray):
        super().__init__(dims)
        width = max(self.width, 1)
        self._dtype = np.dtype(
            [("probs", _FLOAT, (width,)), ("dim", np.uint32)], align=False
        )
        self.records = np.zeros(self.n, dtype=self._dtype)
        self.records["dim"] = self.dims

    def get(self, i: int) -> np.ndarray:
        return self.records["probs"][i, : self.dims[i]]

    def set(self, i: int, value: np.ndarray) -> None:
        d = int(self.dims[i])
        if len(value) != d:
            raise ValueError(f"node {i} holds {d} states, got {len(value)}")
        self.records["probs"][i, :d] = value

    def dense(self) -> np.ndarray:
        # "probs" is a strided field view; copy to contiguous for kernels.
        return np.ascontiguousarray(self.records["probs"])

    def load_dense(self, matrix: np.ndarray) -> None:
        self.records["probs"][:, :] = matrix

    def copy(self) -> "AoSBeliefStore":
        clone = AoSBeliefStore(self.dims)
        clone.records[:] = self.records
        return clone

    def copy_rows_from(self, other: BeliefStore, rows: np.ndarray) -> None:
        if not isinstance(other, AoSBeliefStore) or len(other) != self.n:
            super().copy_rows_from(other, rows)
            return
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows):
            self.records["probs"][rows] = other.records["probs"][rows]

    def nbytes(self) -> int:
        return int(self.records.nbytes)

    def cache_lines_per_access(self) -> float:
        # probs and dim sit in the same record: one contiguous line stream.
        return max(1.0, self._dtype.itemsize / CACHE_LINE_BYTES)

    def cache_lines_per_sweep_node(self) -> float:
        # Records stream contiguously, but the interleaved dim field rides
        # along in every line whether the sweep wants it or not.
        return self._dtype.itemsize / CACHE_LINE_BYTES


class BlockedBeliefStore(BeliefStore):
    """Degree-blocked AoSoA layout: nodes are grouped into tiles of
    :data:`BLOCK_NODES` and each tile stores its probabilities
    plane-major — ``planes[t, s, j]`` is state ``s`` of node
    ``t * BLOCK_NODES + j``.

    Every state plane of a tile is exactly one cache line of float32
    lanes, so a streaming sweep reads ``width`` dense lines per tile and
    a SIMD kernel sees each state contiguous across 16 nodes.  The price
    is random access: one scattered line per *state* instead of per
    node.  The autotuner weighs exactly this trade.
    """

    layout = "blocked"

    def __init__(self, dims: np.ndarray):
        super().__init__(dims)
        width = max(self.width, 1)
        self.n_blocks = (self.n + BLOCK_NODES - 1) // BLOCK_NODES
        self.planes = np.zeros((self.n_blocks, width, BLOCK_NODES), dtype=_FLOAT)

    def get(self, i: int) -> np.ndarray:
        t, j = divmod(i, BLOCK_NODES)
        return self.planes[t, : self.dims[i], j]

    def set(self, i: int, value: np.ndarray) -> None:
        d = int(self.dims[i])
        if len(value) != d:
            raise ValueError(f"node {i} holds {d} states, got {len(value)}")
        t, j = divmod(i, BLOCK_NODES)
        self.planes[t, :d, j] = value

    def dense(self) -> np.ndarray:
        # de-tile: (n_blocks, width, BLOCK) -> (n_blocks * BLOCK, width)
        width = max(self.width, 1)
        flat = self.planes.transpose(0, 2, 1).reshape(self.n_blocks * BLOCK_NODES, width)
        out = np.ascontiguousarray(flat[: self.n])
        if not self.uniform:
            for i in range(self.n):
                out[i, self.dims[i] :] = 0.0
        return out

    def load_dense(self, matrix: np.ndarray) -> None:
        width = max(self.width, 1)
        padded = np.zeros((self.n_blocks * BLOCK_NODES, width), dtype=_FLOAT)
        padded[: self.n] = matrix
        self.planes[:] = padded.reshape(self.n_blocks, BLOCK_NODES, width).transpose(0, 2, 1)

    def copy(self) -> "BlockedBeliefStore":
        clone = BlockedBeliefStore(self.dims)
        clone.planes[:] = self.planes
        return clone

    def copy_rows_from(self, other: BeliefStore, rows: np.ndarray) -> None:
        if not isinstance(other, BlockedBeliefStore) or len(other) != self.n:
            super().copy_rows_from(other, rows)
            return
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows):
            t, j = np.divmod(rows, BLOCK_NODES)
            self.planes[t, :, j] = other.planes[t, :, j]

    def nbytes(self) -> int:
        # tile padding (up to BLOCK_NODES - 1 phantom nodes) is real
        # allocated storage and is reported as such
        return int(self.planes.nbytes + self.dims.nbytes)

    def cache_lines_per_access(self) -> float:
        # One node's vector is spread across `width` state planes, each a
        # separate line; the dim entry adds a fractional index line.
        return 0.25 + float(max(self.width, 1))

    def cache_lines_per_sweep_node(self) -> float:
        # A full tile streams `width` lines for BLOCK_NODES nodes.
        return (max(self.width, 1) * 4) / CACHE_LINE_BYTES


def make_store(dims: np.ndarray, layout: str = "aos") -> BeliefStore:
    """Factory: build a belief store with the requested layout."""
    if layout == "aos":
        return AoSBeliefStore(dims)
    if layout == "soa":
        return SoABeliefStore(dims)
    if layout == "blocked":
        return BlockedBeliefStore(dims)
    raise ValueError(
        f"unknown belief layout {layout!r} (expected 'aos', 'soa' or 'blocked')"
    )

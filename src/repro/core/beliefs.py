"""Belief storage layouts: struct-of-arrays vs array-of-structs (paper §3.4).

The paper evaluates two memory layouts for the node-belief and
joint-probability data and settles on the array-of-structs (AoS) design
after observing circa 56 % fewer data-cache reads and writes with
``cachegrind``.  We implement both layouts behind a common interface so the
ablation benchmark (E5) can compare them, and we expose the access-pattern
statistics the cost model needs (number of cache lines touched per sweep).

Both stores hold, for each of ``n`` nodes, a discrete probability vector of
``dims[i]`` states.  The *uniform* fast path — every node has the same
number of states — additionally exposes a dense ``(n, b)`` matrix view used
by the vectorized kernels.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["BeliefStore", "SoABeliefStore", "AoSBeliefStore", "CACHE_LINE_BYTES"]

#: Cache-line size assumed by the access-pattern model (bytes).
CACHE_LINE_BYTES = 64

_FLOAT = np.float32


class BeliefStore:
    """Abstract container of per-node belief vectors.

    Subclasses fix the physical layout.  All indices are node ids in
    ``range(n)``; vectors are float32 and are not implicitly normalized.
    """

    layout: str = "abstract"

    def __init__(self, dims: np.ndarray):
        dims = np.asarray(dims, dtype=np.int64)
        if dims.ndim != 1:
            raise ValueError("dims must be a 1-D array of state counts")
        if len(dims) and dims.min() < 1:
            raise ValueError("every node needs at least one state")
        self.dims = dims
        self.n = len(dims)
        self.uniform = bool(len(dims)) and bool((dims == dims[0]).all())
        self.width = int(dims[0]) if self.uniform else int(dims.max(initial=0))

    # -- element access -------------------------------------------------
    def get(self, i: int) -> np.ndarray:
        """Return the belief vector of node ``i`` (a copy or view)."""
        raise NotImplementedError

    def set(self, i: int, value: np.ndarray) -> None:
        """Overwrite the belief vector of node ``i``."""
        raise NotImplementedError

    def fill_uniform(self) -> None:
        """Reset every node to the uniform distribution over its states."""
        for i in range(self.n):
            d = int(self.dims[i])
            self.set(i, np.full(d, 1.0 / d, dtype=_FLOAT))

    # -- bulk access ----------------------------------------------------
    def dense(self) -> np.ndarray:
        """Return an ``(n, width)`` dense matrix view/copy of all beliefs.

        Rows of nodes with fewer than ``width`` states are zero-padded.
        For the uniform layout this is the array the vectorized kernels
        operate on directly; mutating the returned array updates the store
        only when :meth:`dense_is_view` is true.
        """
        raise NotImplementedError

    def dense_is_view(self) -> bool:
        """Whether :meth:`dense` aliases the underlying storage."""
        return False

    def load_dense(self, matrix: np.ndarray) -> None:
        """Copy ``matrix`` (``(n, width)``) back into the store."""
        for i in range(self.n):
            self.set(i, matrix[i, : self.dims[i]])

    def copy(self) -> "BeliefStore":
        raise NotImplementedError

    def copy_rows_from(self, other: "BeliefStore", rows: np.ndarray) -> None:
        """Overwrite the given nodes' vectors with ``other``'s (same dims).

        Subclasses override with a vectorized path when both stores share
        the physical layout; this fallback loops.
        """
        for i in rows:
            self.set(int(i), other.get(int(i)))

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self.n):
            yield self.get(i)

    # -- cost-model hooks -------------------------------------------------
    def bytes_per_node(self) -> float:
        """Average bytes of storage footprint per node."""
        raise NotImplementedError

    def cache_lines_per_access(self) -> float:
        """Average distinct cache lines touched when reading one node's
        belief vector *and* its dimension metadata.

        This is the quantity behind the paper's cachegrind observation: the
        SoA layout splits the probabilities and the dims into two parallel
        arrays, so a single logical access touches (at least) two widely
        separated lines, while AoS packs them into one struct.
        """
        raise NotImplementedError


class SoABeliefStore(BeliefStore):
    """Struct-of-arrays layout: one flat float array of probabilities plus
    parallel ``offsets``/``dims`` index arrays (paper §3.4, the rejected
    design)."""

    layout = "soa"

    def __init__(self, dims: np.ndarray):
        super().__init__(dims)
        self.offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(self.dims, out=self.offsets[1:])
        self.probs = np.zeros(int(self.offsets[-1]), dtype=_FLOAT)

    def get(self, i: int) -> np.ndarray:
        return self.probs[self.offsets[i] : self.offsets[i + 1]]

    def set(self, i: int, value: np.ndarray) -> None:
        seg = self.probs[self.offsets[i] : self.offsets[i + 1]]
        if len(value) != len(seg):
            raise ValueError(f"node {i} holds {len(seg)} states, got {len(value)}")
        seg[:] = value

    def dense(self) -> np.ndarray:
        if self.uniform:
            return self.probs.reshape(self.n, self.width)
        out = np.zeros((self.n, self.width), dtype=_FLOAT)
        for i in range(self.n):
            out[i, : self.dims[i]] = self.get(i)
        return out

    def dense_is_view(self) -> bool:
        return self.uniform

    def load_dense(self, matrix: np.ndarray) -> None:
        if self.uniform:
            self.probs[:] = matrix.reshape(-1)
        else:
            super().load_dense(matrix)

    def copy(self) -> "SoABeliefStore":
        clone = SoABeliefStore(self.dims)
        clone.probs[:] = self.probs
        return clone

    def copy_rows_from(self, other: BeliefStore, rows: np.ndarray) -> None:
        if not isinstance(other, SoABeliefStore) or len(other) != self.n:
            super().copy_rows_from(other, rows)
            return
        rows = np.asarray(rows, dtype=np.int64)
        if not len(rows):
            return
        starts = self.offsets[rows]
        sizes = self.dims[rows]
        total = int(sizes.sum())
        local = np.zeros(len(rows), dtype=np.int64)
        np.cumsum(sizes[:-1], out=local[1:])
        rank = np.arange(total) - np.repeat(local, sizes)
        flat = np.repeat(starts, sizes) + rank
        self.probs[flat] = other.probs[flat]

    def bytes_per_node(self) -> float:
        # probabilities + an 8-byte offset + an 8-byte dim per node
        return float(self.probs.nbytes + self.offsets.nbytes + self.dims.nbytes) / max(self.n, 1)

    def cache_lines_per_access(self) -> float:
        # One access reads: the offset entry, the dim entry, and the
        # probability segment — three separate arrays, three line streams
        # (the index arrays partially cache, so they count fractionally).
        prob_lines = max(1.0, (self.width * 4) / CACHE_LINE_BYTES)
        return 1.3 + prob_lines


class AoSBeliefStore(BeliefStore):
    """Array-of-structs layout: one record per node holding a statically
    sized float array plus its dimension (paper §3.4, the adopted design)."""

    layout = "aos"

    def __init__(self, dims: np.ndarray):
        super().__init__(dims)
        width = max(self.width, 1)
        self._dtype = np.dtype(
            [("probs", _FLOAT, (width,)), ("dim", np.uint32)], align=False
        )
        self.records = np.zeros(self.n, dtype=self._dtype)
        self.records["dim"] = self.dims

    def get(self, i: int) -> np.ndarray:
        return self.records["probs"][i, : self.dims[i]]

    def set(self, i: int, value: np.ndarray) -> None:
        d = int(self.dims[i])
        if len(value) != d:
            raise ValueError(f"node {i} holds {d} states, got {len(value)}")
        self.records["probs"][i, :d] = value

    def dense(self) -> np.ndarray:
        # "probs" is a strided field view; copy to contiguous for kernels.
        return np.ascontiguousarray(self.records["probs"])

    def load_dense(self, matrix: np.ndarray) -> None:
        self.records["probs"][:, :] = matrix

    def copy(self) -> "AoSBeliefStore":
        clone = AoSBeliefStore(self.dims)
        clone.records[:] = self.records
        return clone

    def copy_rows_from(self, other: BeliefStore, rows: np.ndarray) -> None:
        if not isinstance(other, AoSBeliefStore) or len(other) != self.n:
            super().copy_rows_from(other, rows)
            return
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows):
            self.records["probs"][rows] = other.records["probs"][rows]

    def bytes_per_node(self) -> float:
        return float(self.records.nbytes) / max(self.n, 1)

    def cache_lines_per_access(self) -> float:
        # probs and dim sit in the same record: one contiguous line stream.
        return max(1.0, self._dtype.itemsize / CACHE_LINE_BYTES)


def make_store(dims: np.ndarray, layout: str = "aos") -> BeliefStore:
    """Factory: build a belief store with the requested layout."""
    if layout == "aos":
        return AoSBeliefStore(dims)
    if layout == "soa":
        return SoABeliefStore(dims)
    raise ValueError(f"unknown belief layout {layout!r} (expected 'aos' or 'soa')")

"""The belief graph: nodes with discrete beliefs, directed edge pairs and
compressed adjacency indices (paper §3.3, §3.4).

A :class:`BeliefGraph` stores the minimum the paper says Credo keeps: node
names and beliefs, indices for the edges, and the potential matrices.  An
undirected MRF edge ``{u, v}`` is represented as **two directed edges**
``u→v`` and ``v→u`` ("treating the undirected edges of an MRF as containing
two separate edges to account for observed nodes being statically set",
§3.3).  Edges are indexed by compressed adjacency lists (CSR) keyed both by
destination (for per-node gathering) and by source (for emission), so BP
kernels touch only indices until the actual math runs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.beliefs import BeliefStore, make_store
from repro.core.potentials import (
    PerEdgePotentialStore,
    PotentialStore,
    SharedPotentialStore,
)

__all__ = ["BeliefGraph"]

_FLOAT = np.float32


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    if not np.isfinite(matrix).all():
        raise ValueError("priors contain NaN or infinite entries")
    if (matrix < 0).any():
        raise ValueError("priors must be non-negative")
    total = matrix.sum(axis=1, keepdims=True)
    bad = total.reshape(-1) <= 0
    if bad.any():
        matrix = matrix.copy()
        matrix[bad] = 1.0
        total = matrix.sum(axis=1, keepdims=True)
    return (matrix / total).astype(_FLOAT)


class BeliefGraph:
    """A Markov-random-field-style belief network.

    Parameters
    ----------
    priors:
        ``(n, b)`` array of per-node prior beliefs (rows are normalized on
        ingest), or a list of 1-D arrays for heterogeneous state counts.
    src, dst:
        Directed edge endpoints (each undirected MRF edge appears twice).
    potentials:
        A :class:`~repro.core.potentials.PotentialStore`, a single shared
        ``(b, b)`` matrix, or a ``(E, b, b)`` stack.
    reverse_edge:
        Optional ``(E,)`` array mapping each directed edge to its reverse
        (``-1`` when absent); computed when omitted.
    node_names:
        Optional sequence of names; defaults to stringified ids.
    layout:
        Belief storage layout: ``"aos"`` (default, the paper's choice),
        ``"soa"``, or the tile-packed ``"blocked"``.
    """

    #: class-level default so clone paths built via ``__new__`` (layout
    #: conversion, copy) stay consistent even before assigning their own
    reserved_nbytes: int = 0

    def __init__(
        self,
        priors: np.ndarray | Sequence[np.ndarray],
        src: np.ndarray,
        dst: np.ndarray,
        potentials: PotentialStore | np.ndarray,
        *,
        reverse_edge: np.ndarray | None = None,
        node_names: Sequence[str] | None = None,
        layout: str = "aos",
    ):
        # --- nodes -----------------------------------------------------
        if isinstance(priors, np.ndarray) and priors.ndim == 2:
            dense_priors = _normalize_rows(np.asarray(priors, dtype=_FLOAT))
            dims = np.full(len(dense_priors), dense_priors.shape[1], dtype=np.int64)
        else:
            rows = [np.asarray(p, dtype=_FLOAT).reshape(-1) for p in priors]
            dims = np.array([len(r) for r in rows], dtype=np.int64)
            dense_priors = None
            self._ragged_priors = [r / max(r.sum(), np.finfo(_FLOAT).tiny) for r in rows]
        self.n_nodes = len(dims)
        self.dims = dims
        self.layout = layout

        self.priors: BeliefStore = make_store(dims, layout)
        self.beliefs: BeliefStore = make_store(dims, layout)
        if dense_priors is not None:
            self.priors.load_dense(dense_priors)
            self.beliefs.load_dense(dense_priors)
        else:
            for i, row in enumerate(self._ragged_priors):
                self.priors.set(i, row)
                self.beliefs.set(i, row)

        if node_names is None:
            self.node_names = [str(i) for i in range(self.n_nodes)]
        else:
            if len(node_names) != self.n_nodes:
                raise ValueError("node_names length mismatch")
            self.node_names = list(node_names)

        # --- edges -----------------------------------------------------
        self.src = np.asarray(src, dtype=np.int64).reshape(-1)
        self.dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        if len(self.src) != len(self.dst):
            raise ValueError("src and dst must have equal length")
        self.n_edges = len(self.src)
        if self.n_edges and (
            self.src.min() < 0
            or self.dst.min() < 0
            or self.src.max() >= self.n_nodes
            or self.dst.max() >= self.n_nodes
        ):
            raise ValueError("edge endpoint out of range")

        if isinstance(potentials, PotentialStore):
            self.potentials = potentials
        else:
            pot = np.asarray(potentials, dtype=_FLOAT)
            if pot.ndim == 2:
                self.potentials = SharedPotentialStore(pot, self.n_edges)
            elif pot.ndim == 3:
                if pot.shape[0] != self.n_edges:
                    raise ValueError("per-edge potential stack length mismatch")
                self.potentials = PerEdgePotentialStore(pot)
            else:
                raise ValueError("potentials must be (b,b) or (E,b,b)")
        if len(self.potentials) != self.n_edges:
            raise ValueError("potential store length mismatch")

        self.reverse_edge = (
            self._compute_reverse() if reverse_edge is None
            else np.asarray(reverse_edge, dtype=np.int64).reshape(-1)
        )
        if len(self.reverse_edge) != self.n_edges:
            raise ValueError("reverse_edge length mismatch")

        # --- compressed adjacency (CSR by dst and by src) ---------------
        self.in_offsets, self.in_edge_ids = self._csr(self.dst)
        self.out_offsets, self.out_edge_ids = self._csr(self.src)

        # --- observations ------------------------------------------------
        self.observed = np.zeros(self.n_nodes, dtype=bool)
        self.observed_state = np.full(self.n_nodes, -1, dtype=np.int64)

        #: bytes reserved beyond the live data — amortized-growth loaders
        #: (repro.stream) build over capacity-doubled buffers and record
        #: their slack here so memory_footprint() never reports
        #: over-allocation as live data
        self.reserved_nbytes = 0

        # --- lazy caches -------------------------------------------------
        #: name → id mapping, built on first string lookup (see node_id)
        self._name_to_id: dict[str, int] | None = None
        #: memoized metadata features, shared by copies (structure is
        #: shared too); repro.credo.features reads and fills this
        self._feature_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_undirected(
        cls,
        priors: np.ndarray,
        edges: np.ndarray,
        potential: np.ndarray | None = None,
        *,
        per_edge_potentials: np.ndarray | None = None,
        node_names: Sequence[str] | None = None,
        layout: str = "aos",
        dedupe: bool = True,
    ) -> "BeliefGraph":
        """Build a graph from an undirected edge list.

        Each undirected edge ``(u, v)`` becomes the directed pair ``u→v``
        (with matrix ``J``) and ``v→u`` (with ``Jᵀ``).  ``potential`` gives
        the single shared matrix (§2.2 mode); ``per_edge_potentials`` an
        ``(m, b, b)`` stack for the original per-edge mode.  Self loops are
        dropped and, when ``dedupe`` is set, duplicate undirected edges
        collapse to one.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        keep = edges[:, 0] != edges[:, 1]
        edges = edges[keep]
        if per_edge_potentials is not None:
            per_edge_potentials = np.asarray(per_edge_potentials, dtype=_FLOAT)[keep]
        if dedupe and len(edges):
            canon = np.sort(edges, axis=1)
            _, unique_idx = np.unique(canon, axis=0, return_index=True)
            unique_idx.sort()
            edges = edges[unique_idx]
            if per_edge_potentials is not None:
                per_edge_potentials = per_edge_potentials[unique_idx]
        m = len(edges)
        src = np.empty(2 * m, dtype=np.int64)
        dst = np.empty(2 * m, dtype=np.int64)
        src[0::2], dst[0::2] = edges[:, 0], edges[:, 1]
        src[1::2], dst[1::2] = edges[:, 1], edges[:, 0]
        reverse = np.empty(2 * m, dtype=np.int64)
        reverse[0::2] = np.arange(1, 2 * m, 2)
        reverse[1::2] = np.arange(0, 2 * m, 2)

        pots: PotentialStore | np.ndarray
        if per_edge_potentials is not None:
            stack = np.empty((2 * m, *per_edge_potentials.shape[1:]), dtype=_FLOAT)
            stack[0::2] = per_edge_potentials
            stack[1::2] = per_edge_potentials.transpose(0, 2, 1)
            pots = PerEdgePotentialStore(stack)
        elif potential is not None:
            potential = np.asarray(potential, dtype=_FLOAT)
            if not np.allclose(potential, potential.T, atol=1e-6):
                # A non-symmetric shared matrix needs the transpose along
                # reverse edges; interleave a two-matrix per-edge store.
                stack = np.empty((2 * m, *potential.shape), dtype=_FLOAT)
                stack[0::2] = potential
                stack[1::2] = potential.T
                pots = PerEdgePotentialStore(stack)
            else:
                pots = SharedPotentialStore(potential, 2 * m)
        else:
            raise ValueError("provide potential or per_edge_potentials")

        return cls(
            priors, src, dst, pots,
            reverse_edge=reverse, node_names=node_names, layout=layout,
        )

    # ------------------------------------------------------------------
    def _compute_reverse(self) -> np.ndarray:
        lookup = {(int(s), int(d)): e for e, (s, d) in enumerate(zip(self.src, self.dst))}
        reverse = np.full(self.n_edges, -1, dtype=np.int64)
        for e in range(self.n_edges):
            reverse[e] = lookup.get((int(self.dst[e]), int(self.src[e])), -1)
        return reverse

    def _csr(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable").astype(np.int64)
        counts = np.bincount(keys, minlength=self.n_nodes)
        offsets = np.zeros(self.n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, order

    # ------------------------------------------------------------------
    @property
    def uniform(self) -> bool:
        """True when every node has the same number of states."""
        return self.beliefs.uniform

    @property
    def n_states(self) -> int:
        """State count of the uniform fast path (max width otherwise)."""
        return self.beliefs.width

    def in_degree(self) -> np.ndarray:
        return np.diff(self.in_offsets)

    def out_degree(self) -> np.ndarray:
        return np.diff(self.out_offsets)

    def in_edges(self, v: int) -> np.ndarray:
        """Ids of directed edges terminating at ``v``."""
        return self.in_edge_ids[self.in_offsets[v] : self.in_offsets[v + 1]]

    def out_edges(self, v: int) -> np.ndarray:
        """Ids of directed edges originating at ``v``."""
        return self.out_edge_ids[self.out_offsets[v] : self.out_offsets[v + 1]]

    def parents(self, v: int) -> np.ndarray:
        return self.src[self.in_edges(v)]

    def children(self, v: int) -> np.ndarray:
        return self.dst[self.out_edges(v)]

    def node_id(self, node: int | str) -> int:
        """Resolve a node name (or pass through an id) to an integer id.

        The name → id mapping is built lazily on the first string lookup
        and carried through :meth:`copy`, so repeated evidence application
        (the serving hot path) avoids a linear ``list.index`` scan per
        call.  Duplicate names resolve to the first occurrence, matching
        ``list.index`` semantics.  Raises ``KeyError`` for unknown names.
        """
        if not isinstance(node, str):
            return int(node)
        if self._name_to_id is None:
            mapping: dict[str, int] = {}
            for i, name in enumerate(self.node_names):
                mapping.setdefault(name, i)
            self._name_to_id = mapping
        try:
            return self._name_to_id[node]
        except KeyError:
            raise KeyError(f"unknown node name {node!r}") from None

    def invalidate_metadata_cache(self) -> None:
        """Drop memoized features and the name map after a structural
        mutation (renamed nodes, rewired edges done in place)."""
        self._feature_cache.clear()
        self._name_to_id = None

    def reset_beliefs(self) -> None:
        """Restore beliefs to the priors (and re-clamp observed nodes)."""
        if self.n_nodes:
            self.beliefs.copy_rows_from(
                self.priors, np.arange(self.n_nodes, dtype=np.int64)
            )
        self._reclamp()

    def _reclamp(self) -> None:
        for i in np.flatnonzero(self.observed):
            vec = np.zeros(int(self.dims[i]), dtype=_FLOAT)
            vec[int(self.observed_state[i])] = 1.0
            self.beliefs.set(i, vec)

    def memory_footprint(self) -> dict[str, int]:
        """Bytes used by the major graph components (for §2.2 analysis).

        ``metadata`` covers the lazily-built caches — the name → id map
        and memoized Credo features — which serve capacity accounting
        must count once they exist (zero until first use).  ``reserved``
        is capacity minus live size: the amortized-growth slack of a
        streamed build (zero for batch-constructed graphs), reported
        separately so capacity planning sees allocation, not just data.
        """
        import sys

        metadata = 0
        if self._name_to_id is not None:
            metadata += sys.getsizeof(self._name_to_id)
            metadata += sum(sys.getsizeof(k) for k in self._name_to_id)
            metadata += len(self._name_to_id) * 8  # int values, interned-ish
        if self._feature_cache:
            metadata += sys.getsizeof(self._feature_cache)
            metadata += sum(
                sys.getsizeof(k) + v.nbytes for k, v in self._feature_cache.items()
            )
        return {
            "beliefs": self.beliefs.nbytes(),
            "priors": self.priors.nbytes(),
            "potentials": self.potentials.nbytes(),
            "adjacency": int(
                self.src.nbytes + self.dst.nbytes + self.reverse_edge.nbytes
                + self.in_offsets.nbytes + self.in_edge_ids.nbytes
                + self.out_offsets.nbytes + self.out_edge_ids.nbytes
            ),
            "metadata": int(metadata),
            "reserved": int(self.reserved_nbytes),
        }

    def metadata(self) -> dict[str, float]:
        """Raw metadata available right after parsing, the input to Credo's
        feature extraction (§3.7)."""
        indeg = self.in_degree()
        outdeg = self.out_degree()
        return {
            "n_nodes": float(self.n_nodes),
            "n_edges": float(self.n_edges),
            "n_beliefs": float(self.n_states),
            "max_in_degree": float(indeg.max(initial=0)),
            "max_out_degree": float(outdeg.max(initial=0)),
            "avg_in_degree": float(indeg.mean()) if self.n_nodes else 0.0,
        }

    def copy(self) -> "BeliefGraph":
        clone = BeliefGraph.__new__(BeliefGraph)
        clone.n_nodes = self.n_nodes
        clone.dims = self.dims
        clone.layout = self.layout
        clone.priors = self.priors.copy()
        clone.beliefs = self.beliefs.copy()
        clone.node_names = list(self.node_names)
        clone.src = self.src
        clone.dst = self.dst
        clone.n_edges = self.n_edges
        clone.potentials = self.potentials
        clone.reverse_edge = self.reverse_edge
        clone.in_offsets, clone.in_edge_ids = self.in_offsets, self.in_edge_ids
        clone.out_offsets, clone.out_edge_ids = self.out_offsets, self.out_edge_ids
        clone.observed = self.observed.copy()
        clone.observed_state = self.observed_state.copy()
        # structure arrays are shared, so their over-allocation is too
        clone.reserved_nbytes = self.reserved_nbytes
        # structure (and hence names/features) is shared, so the caches are too
        clone._name_to_id = self._name_to_id
        clone._feature_cache = self._feature_cache
        return clone

    def __repr__(self) -> str:
        return (
            f"BeliefGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges}, "
            f"n_states={self.n_states}, layout={self.layout!r}, "
            f"shared_potential={self.potentials.shared})"
        )

"""Core belief-propagation algorithms and data structures.

This subpackage implements the paper's primary contribution: loopy belief
propagation with per-node and per-edge processing paradigms (§3.3), the
shared joint-probability-matrix refinement (§2.2), AoS/SoA belief storage
(§3.4), work queues (§3.5), the original three-phase tree algorithm (§2.1),
sharded execution over measured graph partitions (DESIGN.md §9) and an
exact-enumeration oracle used by the test suite.
"""

from repro.core.beliefs import BeliefStore, AoSBeliefStore, SoABeliefStore
from repro.core.potentials import PotentialStore, SharedPotentialStore, PerEdgePotentialStore
from repro.core.graph import BeliefGraph
from repro.core.observation import observe, clear_observations
from repro.core.exact import exact_marginals
from repro.core.tree_bp import TreeBP
from repro.core.loopy import LoopyBP, LoopyConfig, LoopyResult
from repro.core.convergence import belief_delta, ConvergenceCriterion
from repro.core.scheduler import (
    SCHEDULES,
    Schedule,
    SynchronousSchedule,
    WorkQueueSchedule,
    ResidualSchedule,
    RelaxedPrioritySchedule,
    WorkQueue,
    ResidualBP,
    make_schedule,
)
from repro.core.sharded import ShardedGraph, ShardedLoopyBP, ShardedResult
from repro.core.junction import JunctionTree, junction_tree_marginals
from repro.core.bethe import bethe_free_energy, bethe_log_partition

__all__ = [
    "BeliefStore",
    "AoSBeliefStore",
    "SoABeliefStore",
    "PotentialStore",
    "SharedPotentialStore",
    "PerEdgePotentialStore",
    "BeliefGraph",
    "observe",
    "clear_observations",
    "exact_marginals",
    "TreeBP",
    "LoopyBP",
    "LoopyConfig",
    "LoopyResult",
    "belief_delta",
    "ConvergenceCriterion",
    "WorkQueue",
    "SCHEDULES",
    "Schedule",
    "SynchronousSchedule",
    "WorkQueueSchedule",
    "ResidualSchedule",
    "RelaxedPrioritySchedule",
    "make_schedule",
    "ResidualBP",
    "ShardedGraph",
    "ShardedLoopyBP",
    "ShardedResult",
    "JunctionTree",
    "junction_tree_marginals",
    "bethe_free_energy",
    "bethe_log_partition",
]

"""Evidence handling (paper §2.1).

"During observation, one now knows for certain if an event occurs and
consequently statically sets the probability of that event occurring which
in turn sets off a chain of updates" — an observed node's belief is clamped
to a one-hot vector and never updated by BP; it still emits messages so the
evidence propagates.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph

__all__ = ["observe", "clear_observations"]


def observe(graph: BeliefGraph, node: int | str, state: int) -> None:
    """Clamp ``node`` to ``state`` (statically fixate it, §2.1).

    ``node`` may be an id or a node name.  Raises ``ValueError`` for an
    out-of-range state and ``KeyError`` for an unknown name.
    """
    node = graph.node_id(node)
    if not 0 <= node < graph.n_nodes:
        raise IndexError(f"node {node} out of range")
    dim = int(graph.dims[node])
    if not 0 <= state < dim:
        raise ValueError(f"state {state} out of range for node with {dim} states")
    graph.observed[node] = True
    graph.observed_state[node] = state
    vec = np.zeros(dim, dtype=np.float32)
    vec[state] = 1.0
    graph.beliefs.set(node, vec)


def clear_observations(graph: BeliefGraph) -> None:
    """Remove all evidence and restore the affected nodes' priors."""
    idx = np.flatnonzero(graph.observed)
    if len(idx):
        graph.beliefs.copy_rows_from(graph.priors, idx)
    graph.observed[:] = False
    graph.observed_state[:] = -1

"""The original three-phase belief propagation (paper §2.1).

"To simplify processing, one can break up the BP into three phases. First,
one emits the φ-based updates before emitting the ψ-based updates.
Afterwards, one calculates the marginals. A major limitation of this method
is that the updates must be ordered" — level by level between the roots and
the terminal nodes.

This implementation mirrors the paper's control: a **level-scheduled,
per-node sequential** engine.  It determines BFS levels, runs a collect
pass (deepest level toward the roots) and a distribute pass (roots outward)
with proper cavity messages, then marginalizes.  On trees one round of the
two passes is exact (verified against :mod:`repro.core.exact` in the test
suite).  On cyclic graphs the ordered passes repeat until the usual
convergence criterion is met — and, exactly as §2.1.1 reports, the level
determination and tiny per-level steps make this dramatically slower than
the loopy kernels (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.numeric import TINY as _TINY  # shared 1e-30 floor
from repro.core.sweepstats import RunStats, SweepStats

__all__ = ["TreeBP", "TreeBPResult", "bfs_levels"]


def bfs_levels(graph: BeliefGraph, roots: list[int] | None = None) -> np.ndarray:
    """BFS level of every node, starting one root per component.

    This is the "determining the levels of a graph" overhead the paper
    blames for the original algorithm's poor performance.  Unreached nodes
    (none, since every component gets a root) would be level −1.
    """
    levels = np.full(graph.n_nodes, -1, dtype=np.int64)
    pending = list(roots) if roots else []
    next_auto = 0
    while True:
        root = -1
        while pending:
            cand = pending.pop()
            if levels[cand] == -1:
                root = cand
                break
        if root == -1:
            while next_auto < graph.n_nodes and levels[next_auto] != -1:
                next_auto += 1
            if next_auto == graph.n_nodes:
                break
            root = next_auto
        levels[root] = 0
        frontier = [root]
        depth = 0
        while frontier:
            depth += 1
            nxt: list[int] = []
            for u in frontier:
                for e in graph.out_edges(u):
                    v = int(graph.dst[e])
                    if levels[v] == -1:
                        levels[v] = depth
                        nxt.append(v)
            frontier = nxt
    return levels


@dataclass
class TreeBPResult:
    """Outcome of a three-phase BP run."""

    beliefs: np.ndarray
    iterations: int
    converged: bool
    delta_history: list[float]
    run_stats: RunStats
    levels: np.ndarray

    def belief(self, node: int) -> np.ndarray:
        return self.beliefs[node]


@dataclass
class TreeBP:
    """Level-scheduled three-phase BP (the paper's non-loopy control).

    ``rounds`` caps how many collect+distribute rounds run on cyclic
    inputs; on a tree one round is exact and the run stops after round two
    confirms convergence.
    """

    criterion: ConvergenceCriterion = field(default_factory=ConvergenceCriterion)
    roots: list[int] | None = None

    def run(self, graph: BeliefGraph) -> TreeBPResult:
        n, b = graph.n_nodes, graph.beliefs.width
        levels = bfs_levels(graph, self.roots)
        run_stats = RunStats()

        priors = np.array(
            [self._padded(graph.priors.get(i), b) for i in range(n)], dtype=np.float64
        )
        for i in np.flatnonzero(graph.observed):
            vec = np.full(b, _TINY)
            vec[int(graph.observed_state[i])] = 1.0
            priors[i] = vec

        # messages[e]: current message along directed edge e
        messages = np.full((graph.n_edges, b), 1.0 / b, dtype=np.float64)

        # Ordered schedules: collect processes edges from deeper source to
        # shallower destination; distribute the opposite.  Edges between
        # equal levels (cycles only) run in both phases.
        src_lv = levels[graph.src]
        dst_lv = levels[graph.dst]
        collect = np.flatnonzero(src_lv >= dst_lv)
        collect = collect[np.argsort(-src_lv[collect], kind="stable")]
        distribute = np.flatnonzero(src_lv <= dst_lv)
        distribute = distribute[np.argsort(src_lv[distribute], kind="stable")]

        beliefs = priors / np.maximum(priors.sum(axis=1, keepdims=True), _TINY)
        history: list[float] = []
        converged = False
        iteration = 0
        level_count = int(levels.max(initial=0)) + 1

        while iteration < self.criterion.max_iterations:
            iteration += 1
            stats = SweepStats(kernel_launches=2 * level_count)
            for schedule in (collect, distribute):
                for e in schedule:
                    self._emit(graph, priors, messages, int(e), stats)
            new_beliefs = self._marginalize(graph, priors, messages, stats)
            delta = float(np.abs(new_beliefs - beliefs).sum())
            beliefs = new_beliefs
            history.append(delta)
            stats.reduction_elems = n
            run_stats.append(stats)
            if self.criterion.is_converged(delta):
                converged = True
                break

        out = beliefs.astype(np.float32)
        graph.beliefs.load_dense(out)
        for i in np.flatnonzero(graph.observed):
            hot = np.zeros(int(graph.dims[i]), dtype=np.float32)
            hot[int(graph.observed_state[i])] = 1.0
            graph.beliefs.set(int(i), hot)
        return TreeBPResult(
            beliefs=out,
            iterations=iteration,
            converged=converged,
            delta_history=history,
            run_stats=run_stats,
            levels=levels,
        )

    # ------------------------------------------------------------------
    def _emit(
        self,
        graph: BeliefGraph,
        priors: np.ndarray,
        messages: np.ndarray,
        e: int,
        stats: SweepStats,
    ) -> None:
        """Recompute the message along directed edge ``e`` (cavity rule),
        one edge at a time — the sequential, matrix-per-edge processing the
        paper identifies as the bottleneck."""
        u = int(graph.src[e])
        rev = int(graph.reverse_edge[e])
        cavity = priors[u].copy()
        for inc in graph.in_edges(u):
            if int(inc) != rev:
                cavity *= messages[int(inc)]
        total = cavity.sum()
        if total > 0:
            cavity /= total
        # "Loading and unloading a separate matrix per belief update
        # computation" (§2.2) — fetched per edge here, per the original.
        mat = np.asarray(graph.potentials.matrix(e), dtype=np.float64)
        msg = cavity[: mat.shape[0]] @ mat
        total = msg.sum()
        messages[e, : mat.shape[1]] = msg / total if total > 0 else 1.0 / mat.shape[1]
        b = mat.shape[0]
        stats.edges_processed += 1
        stats.flops += 2 * b * b + 2 * b
        stats.random_bytes += 2 * b * 4 + b * b * 4

    def _marginalize(
        self,
        graph: BeliefGraph,
        priors: np.ndarray,
        messages: np.ndarray,
        stats: SweepStats,
    ) -> np.ndarray:
        beliefs = priors.copy()
        for v in range(graph.n_nodes):
            for e in graph.in_edges(v):
                beliefs[v] *= messages[int(e)]
            total = beliefs[v].sum()
            beliefs[v] = beliefs[v] / total if total > 0 else 1.0 / len(beliefs[v])
            stats.nodes_processed += 1
            stats.flops += 4 * beliefs.shape[1]
        return beliefs

    @staticmethod
    def _padded(vec: np.ndarray, width: int) -> np.ndarray:
        out = np.full(width, _TINY)
        out[: len(vec)] = np.maximum(vec, _TINY)
        return out

"""Junction-tree exact inference (extension; paper §5.1 related work).

Bistaffa et al. — the GPU BP work the paper compares against — "recompile
the graph into an optimized form called a 'junction tree'".  This module
implements that pipeline for pairwise MRFs:

1. **triangulation** by the min-fill elimination heuristic;
2. **clique extraction** from the elimination order;
3. **junction-tree construction** as a maximum-weight spanning tree over
   clique-intersection sizes (which guarantees the running-intersection
   property);
4. **factor assignment** of node priors and edge potentials to cliques;
5. **two-pass sum-product** over the clique tree (collect + distribute)
   with dense clique tables;
6. **marginal extraction** per variable.

Complexity is exponential in the induced treewidth, so this is exact
inference for *sparse* graphs of any size — a far stronger oracle than
brute-force enumeration (which caps at ~20 nodes), used by the test
suite to validate loopy BP on loopy graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import BeliefGraph
from repro.core.numeric import EPS as _TINY  # shared float64 floor

__all__ = ["JunctionTree", "junction_tree_marginals", "treewidth_upper_bound"]


def _undirected_adjacency(graph: BeliefGraph) -> list[set[int]]:
    adj: list[set[int]] = [set() for _ in range(graph.n_nodes)]
    for e in range(graph.n_edges):
        u, v = int(graph.src[e]), int(graph.dst[e])
        if u != v:
            adj[u].add(v)
            adj[v].add(u)
    return adj


def _min_fill_order(adj: list[set[int]]) -> tuple[list[int], list[set[int]]]:
    """Elimination order by the min-fill heuristic.

    Returns the order and, per eliminated node, the clique it induced
    (the node plus its not-yet-eliminated neighbourhood).
    """
    n = len(adj)
    work = [set(s) for s in adj]
    eliminated = [False] * n
    order: list[int] = []
    cliques: list[set[int]] = []

    def fill_in(v: int) -> int:
        neigh = [u for u in work[v] if not eliminated[u]]
        missing = 0
        for i in range(len(neigh)):
            for j in range(i + 1, len(neigh)):
                if neigh[j] not in work[neigh[i]]:
                    missing += 1
        return missing

    for _ in range(n):
        best, best_fill = -1, None
        for v in range(n):
            if eliminated[v]:
                continue
            f = fill_in(v)
            if best_fill is None or f < best_fill:
                best, best_fill = v, f
                if f == 0:
                    break
        v = best
        neigh = {u for u in work[v] if not eliminated[u]}
        cliques.append(neigh | {v})
        for a in neigh:
            for b in neigh:
                if a != b:
                    work[a].add(b)
        eliminated[v] = True
        order.append(v)
    return order, cliques


def treewidth_upper_bound(graph: BeliefGraph) -> int:
    """Induced width of the min-fill order (treewidth upper bound)."""
    _, cliques = _min_fill_order(_undirected_adjacency(graph))
    return max((len(c) - 1 for c in cliques), default=0)


@dataclass
class _Clique:
    variables: tuple[int, ...]
    table: np.ndarray  # shape: dims of variables, in order
    neighbours: list[int] = field(default_factory=list)


class JunctionTree:
    """Compiled junction tree over a pairwise belief graph.

    Raises ``ValueError`` when the induced width exceeds ``max_width``
    (the table sizes would explode).
    """

    def __init__(self, graph: BeliefGraph, *, max_width: int = 12):
        self.graph = graph
        adj = _undirected_adjacency(graph)
        _, raw_cliques = _min_fill_order(adj)

        # prune non-maximal cliques
        maximal: list[set[int]] = []
        for c in sorted(raw_cliques, key=len, reverse=True):
            if not any(c <= m for m in maximal):
                maximal.append(c)
        width = max((len(c) - 1 for c in maximal), default=0)
        if width > max_width:
            raise ValueError(
                f"induced width {width} exceeds max_width={max_width}; "
                "the junction tree would be intractable"
            )

        dims = graph.dims
        self.cliques: list[_Clique] = []
        for c in maximal:
            variables = tuple(sorted(c))
            shape = tuple(int(dims[v]) for v in variables)
            self.cliques.append(_Clique(variables, np.ones(shape, dtype=np.float64)))

        self._build_tree()
        self._assign_factors()

    # ------------------------------------------------------------------
    def _build_tree(self) -> None:
        """Maximum-weight spanning tree over pairwise intersections."""
        k = len(self.cliques)
        edges = []
        for i in range(k):
            si = set(self.cliques[i].variables)
            for j in range(i + 1, k):
                w = len(si & set(self.cliques[j].variables))
                if w > 0:
                    edges.append((-w, i, j))
        edges.sort()
        parent = list(range(k))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        self.tree_edges: list[tuple[int, int]] = []
        for _w, i, j in edges:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[ri] = rj
                self.tree_edges.append((i, j))
                self.cliques[i].neighbours.append(j)
                self.cliques[j].neighbours.append(i)
        # disconnected components (isolated cliques) are fine: the passes
        # simply treat each tree in the forest independently

    def _assign_factors(self) -> None:
        """Multiply every prior and undirected potential into exactly one
        containing clique."""
        graph = self.graph
        # index: variable -> cliques containing it
        containing: dict[int, list[int]] = {}
        for idx, clique in enumerate(self.cliques):
            for v in clique.variables:
                containing.setdefault(v, []).append(idx)

        def multiply_in(clique_idx: int, variables: tuple[int, ...], values: np.ndarray):
            clique = self.cliques[clique_idx]
            axes = [clique.variables.index(v) for v in variables]
            expand = values
            # move factor axes into clique order with broadcasting
            shape = [1] * len(clique.variables)
            if len(variables) == 1:
                shape[axes[0]] = values.shape[0]
                clique.table *= values.reshape(shape)
            else:
                # 2-variable factor: align both axes
                a, b = axes
                view = np.moveaxis(
                    expand.reshape(values.shape + (1,) * (len(clique.variables) - 2)),
                    (0, 1),
                    (a, b),
                )
                clique.table *= view

        for v in range(graph.n_nodes):
            prior = np.asarray(graph.priors.get(v), dtype=np.float64)
            if graph.observed[v]:
                prior = np.full(int(graph.dims[v]), _TINY)
                prior[int(graph.observed_state[v])] = 1.0
            multiply_in(containing[v][0], (v,), np.maximum(prior, _TINY))

        for e in range(graph.n_edges):
            rev = int(graph.reverse_edge[e])
            if rev != -1 and e > rev:
                continue  # one factor per undirected edge
            u, v = int(graph.src[e]), int(graph.dst[e])
            if u == v:
                continue
            psi = np.asarray(graph.potentials.matrix(e), dtype=np.float64)
            home = next(
                idx for idx in containing[u] if v in self.cliques[idx].variables
            )
            multiply_in(home, (u, v), np.maximum(psi, _TINY))

    # ------------------------------------------------------------------
    def _marginalize_to(self, table: np.ndarray, from_vars, to_vars) -> np.ndarray:
        keep = [from_vars.index(v) for v in to_vars]
        drop = tuple(i for i in range(len(from_vars)) if i not in keep)
        out = table.sum(axis=drop) if drop else table
        # reorder axes to to_vars order
        current = [v for v in from_vars if v in to_vars]
        perm = [current.index(v) for v in to_vars]
        return np.transpose(out, perm) if perm != list(range(len(perm))) else out

    def calibrate(self) -> list[np.ndarray]:
        """Two-pass message passing; returns calibrated clique tables."""
        k = len(self.cliques)
        tables = [c.table.copy() for c in self.cliques]
        messages: dict[tuple[int, int], np.ndarray] = {}

        # establish a rooted order per component (BFS)
        visited = [False] * k
        schedule: list[tuple[int, int]] = []  # (child, parent) collect order
        for root in range(k):
            if visited[root]:
                continue
            visited[root] = True
            stack = [root]
            order = []
            parents = {root: -1}
            while stack:
                c = stack.pop()
                order.append(c)
                for nb in self.cliques[c].neighbours:
                    if not visited[nb]:
                        visited[nb] = True
                        parents[nb] = c
                        stack.append(nb)
            for c in reversed(order):
                if parents[c] != -1:
                    schedule.append((c, parents[c]))

        def sepset(i: int, j: int) -> tuple[int, ...]:
            return tuple(
                sorted(set(self.cliques[i].variables) & set(self.cliques[j].variables))
            )

        def send(i: int, j: int) -> None:
            sep = sepset(i, j)
            prod = self.cliques[i].table.copy()
            for nb in self.cliques[i].neighbours:
                if nb != j and (nb, i) in messages:
                    prod *= self._expand(messages[(nb, i)], sepset(nb, i), self.cliques[i].variables)
            msg = self._marginalize_to(prod, list(self.cliques[i].variables), list(sep))
            total = msg.sum()
            messages[(i, j)] = msg / total if total > 0 else np.full_like(msg, 1.0 / msg.size)

        for child, parent in schedule:  # collect
            send(child, parent)
        for child, parent in reversed(schedule):  # distribute
            send(parent, child)

        calibrated = []
        for i, clique in enumerate(self.cliques):
            belief = clique.table.copy()
            for nb in clique.neighbours:
                belief *= self._expand(messages[(nb, i)], sepset(nb, i), clique.variables)
            total = belief.sum()
            calibrated.append(belief / total if total > 0 else belief)
        return calibrated

    def _expand(self, msg: np.ndarray, sep: tuple[int, ...], variables: tuple[int, ...]) -> np.ndarray:
        shape = [1] * len(variables)
        axes = [variables.index(v) for v in sep]
        view = msg
        # move msg axes into place
        full_shape = list(view.shape) + [1] * (len(variables) - len(sep))
        view = view.reshape(full_shape)
        order = list(range(len(variables)))
        src_positions = list(range(len(sep)))
        view = np.moveaxis(view, src_positions, axes)
        return view

    def marginals(self) -> np.ndarray:
        """Exact node marginals, ``(n, width)`` padded."""
        calibrated = self.calibrate()
        graph = self.graph
        out = np.zeros((graph.n_nodes, graph.beliefs.width), dtype=np.float64)
        done = np.zeros(graph.n_nodes, dtype=bool)
        for clique, table in zip(self.cliques, calibrated):
            for pos, v in enumerate(clique.variables):
                if done[v]:
                    continue
                axes = tuple(i for i in range(len(clique.variables)) if i != pos)
                marg = table.sum(axis=axes) if axes else table
                total = marg.sum()
                if total > 0:
                    marg = marg / total
                out[v, : len(marg)] = marg
                done[v] = True
        return out


def junction_tree_marginals(graph: BeliefGraph, *, max_width: int = 12) -> np.ndarray:
    """Exact marginals via junction-tree message passing."""
    return JunctionTree(graph, max_width=max_width).marginals()

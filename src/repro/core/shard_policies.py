"""Shard execution policies: how the sharded driver advances shards.

PR 3's :class:`~repro.core.sharded.ShardedLoopyBP` hard-coded one
execution model — lockstep rounds with a full boundary exchange and a
barrier between them.  This module abstracts that choice behind a
:class:`ShardPolicy` so the driver stays policy-agnostic:

``"sync"``
    Today's bulk-synchronous behaviour, bit-exact preserved: every shard
    sweeps every round, then a global exchange + barrier.

``"async"``
    Stale-synchronous-parallel execution in the Gonzalez et al. /
    Aksenov et al. line (PAPERS.md): each shard keeps its own clock and
    a *versioned halo buffer* — it consumes boundary snapshots up to
    ``staleness`` rounds older than itself (``staleness=0`` degenerates
    to lockstep and stays bit-exact with ``sync``).  Shards are chosen
    by schedule :meth:`~repro.core.scheduler.Schedule.pressure`
    (Splash-style: hot shards sweep more often), and when
    ``staleness > 0`` each shard's active set is over-partitioned into
    contiguous regions that idle workers *steal* from stragglers —
    stolen regions sweep on private state clones and merge back over
    provably disjoint row sets.

The policy operates on a :class:`ShardRun` — the bundle of per-shard
states, paradigm plans and schedules the driver builds — and returns a
:class:`PolicyOutcome` the driver turns into a
:class:`~repro.core.sharded.ShardedResult`.

Determinism: every choice (shard selection, region splitting, LPT
assignment, merge order, feedback order) is a pure function of run
state with explicit tie-breaks, so repeated runs with the same seed are
identical — the property ``tests/test_sharded_async.py`` locks in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.sweepstats import RunStats, SweepStats
from repro.telemetry import get_tracer

__all__ = [
    "SHARD_POLICIES",
    "AsyncShardPolicy",
    "PolicyOutcome",
    "ShardPolicy",
    "ShardRun",
    "SyncShardPolicy",
    "TickRecord",
    "make_shard_policy",
    "normalize_shard_policy",
]

#: canonical policy names, sync first (the default)
SHARD_POLICIES = ("sync", "async")

_ALIASES = {
    "lockstep": "sync",
    "bsp": "sync",
    "ssp": "async",
    "stale": "async",
}


def normalize_shard_policy(name: str) -> str:
    """Canonical shard-policy name, accepting common aliases."""
    canonical = _ALIASES.get(name, name)
    if canonical not in SHARD_POLICIES:
        raise ValueError(
            f"unknown shard policy {name!r}; known: {list(SHARD_POLICIES)}"
        )
    return canonical


def make_shard_policy(
    name: str,
    *,
    staleness: int = 0,
    steal_factor: int = 8,
) -> "ShardPolicy":
    """Instantiate a policy by canonical (or aliased) name.

    ``staleness`` is the SSP bound ``k`` (async only; the sync policy
    rejects any non-zero value rather than silently ignoring it);
    ``steal_factor`` is the over-partitioning factor for work stealing.
    """
    canonical = normalize_shard_policy(name)
    if canonical == "sync":
        if staleness:
            raise ValueError(
                "the sync policy is staleness-free; use policy='async' "
                f"for staleness={staleness}"
            )
        return SyncShardPolicy()
    return AsyncShardPolicy(staleness=staleness, steal_factor=steal_factor)


# ----------------------------------------------------------------------
@dataclass(eq=False)
class ShardRun:
    """Everything a policy needs to drive one sharded run.

    Built by :class:`~repro.core.sharded.ShardedLoopyBP` — per-shard
    states, paradigm plans and schedules plus the pool and instrument.
    Kept duck-typed (``Any``) to avoid an import cycle with the driver.
    """

    sharded: Any
    states: list
    plans: list
    schedules: list
    want_downstream: list
    exhaustive: bool
    cfg: Any
    pool: Any = None
    instrument: Any = None
    #: parallel lanes available for sweeps (1 when running serially)
    workers: int = 1

    @property
    def n_shards(self) -> int:
        return len(self.states)

    def map(self, fn, items: list) -> list:
        """Run ``fn`` over ``items`` on the pool (or serially)."""
        if self.pool is not None and len(items) > 1:
            return list(self.pool.map(fn, items))
        return [fn(it) for it in items]

    def phase(self, label: str) -> None:
        """Global epoch boundary (all shards) for the race instrument."""
        if self.instrument is not None:
            self.instrument.on_phase(label)

    def shard_phase(self, shard: int, label: str) -> None:
        """Per-shard epoch boundary.  Async ticks advance shard clocks
        independently, so a *global* epoch bump would serialize epochs
        that legitimately overlap; instruments exposing
        ``on_shard_phase`` (the PR-4 race detector) get the precise
        per-domain bump, others fall back to a global one."""
        ins = self.instrument
        if ins is None:
            return
        hook = getattr(ins, "on_shard_phase", None)
        if hook is not None:
            hook(shard, label)
        else:
            ins.on_phase(f"shard{shard}:{label}")


@dataclass
class TickRecord:
    """One async tick, as the cost models replay it."""

    #: shard indices swept this tick (ascending)
    swept: tuple
    #: aggregated kernel stats per busy worker lane
    worker_stats: list
    #: boundary payload published this tick
    exchange_bytes: int = 0
    #: work items executed on state clones (stolen regions)
    stolen: int = 0
    #: oldest halo snapshot consumed this tick, in rounds
    max_staleness: int = 0


@dataclass
class PolicyOutcome:
    """What a policy hands back to the driver."""

    iterations: int
    converged: bool
    history: list
    run_stats: RunStats
    per_shard_stats: list
    exchange_bytes: int
    #: async only: per-tick replay records (empty for sync)
    ticks: list = field(default_factory=list)
    #: max halo-snapshot age each shard consumed, in rounds
    shard_staleness: list = field(default_factory=list)
    #: total stolen work items across the run
    stolen_items: int = 0


class ShardPolicy:
    """Abstract shard execution policy."""

    name: str = "abstract"

    def execute(self, run: ShardRun) -> PolicyOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


# ----------------------------------------------------------------------
def exchange_routes(sharded, states, plans, schedules, cfg) -> int:
    """Ship halo beliefs + ghost messages along every route, then
    reactivate the owned elements each change feeds.

    The sync policy's whole-graph exchange (one call per round); the
    async policy reuses the same reactivation math per applied snapshot
    so ``staleness=0`` reproduces this bit-for-bit.
    """
    row_bytes = 4 * sharded.n_states
    moved = 0
    pending_nodes: list[list[np.ndarray]] = [[] for _ in states]
    pending_node_delta: list[list[np.ndarray]] = [[] for _ in states]
    pending_edges: list[list[np.ndarray]] = [[] for _ in states]
    pending_edge_delta: list[list[np.ndarray]] = [[] for _ in states]

    for route in sharded.routes:
        producer = states[route.src]
        _apply_route_rows(
            states[route.dst],
            plans[route.dst].element_threshold,
            route,
            producer.beliefs[route.src_nodes] if len(route.src_nodes) else None,
            producer.messages[route.src_edges] if len(route.src_edges) else None,
            pending_nodes[route.dst],
            pending_node_delta[route.dst],
            pending_edges[route.dst],
            pending_edge_delta[route.dst],
        )
        moved += route.rows * row_bytes

    for i in range(len(states)):
        _reactivate_consumer(
            states[i],
            schedules[i],
            cfg,
            pending_nodes[i],
            pending_node_delta[i],
            pending_edges[i],
            pending_edge_delta[i],
        )
    return moved


def _apply_route_rows(
    consumer,
    thresh,
    route,
    node_rows,
    edge_rows,
    pending_nodes,
    pending_node_delta,
    pending_edges,
    pending_edge_delta,
) -> None:
    """Write one route's fresh halo/ghost rows into the consumer state,
    collecting the rows whose change clears the reactivation threshold."""
    if node_rows is not None:
        delta = np.abs(node_rows - consumer.beliefs[route.dst_nodes]).sum(axis=1)
        consumer.beliefs[route.dst_nodes] = node_rows
        changed = delta >= thresh
        if changed.any():
            pending_nodes.append(route.dst_nodes[changed])
            pending_node_delta.append(delta[changed])
    if edge_rows is not None:
        delta = np.abs(edge_rows - consumer.messages[route.dst_edges]).sum(axis=1)
        consumer.messages[route.dst_edges] = edge_rows
        changed = delta >= thresh
        if changed.any():
            pending_edges.append(route.dst_edges[changed])
            pending_edge_delta.append(delta[changed])


def _reactivate_consumer(
    st,
    schedule,
    cfg,
    pending_nodes,
    pending_node_delta,
    pending_edges,
    pending_edge_delta,
) -> None:
    """Turn collected halo/ghost changes into schedule reactivations."""
    edge_ids: list[np.ndarray] = []
    priorities: list[np.ndarray] = []
    if pending_nodes:
        halo = np.concatenate(pending_nodes)
        deltas = np.concatenate(pending_node_delta)
        sizes = st.out_offsets[halo + 1] - st.out_offsets[halo]
        # out-edges of a halo node all terminate at owned nodes
        edge_ids.append(st.gather_out_edges(halo))
        priorities.append(np.repeat(deltas, sizes))
    if pending_edges:
        ghost = np.concatenate(pending_edges)
        # a ghost edge's reverse is the boundary edge we own
        edge_ids.append(st.rev[ghost])
        priorities.append(np.concatenate(pending_edge_delta))
    if not edge_ids:
        return
    edges = np.concatenate(edge_ids)
    prio = np.concatenate(priorities)
    if cfg.paradigm == "node":
        elements = st.dst[edges]
    else:
        elements = edges
    schedule.reactivate(elements, prio)


# ----------------------------------------------------------------------
class SyncShardPolicy(ShardPolicy):
    """Lockstep rounds: all shards sweep, exchange, barrier — PR 3's
    behaviour, preserved bit-exactly (the parity suite's baseline)."""

    name = "sync"

    def execute(self, run: ShardRun) -> PolicyOutcome:
        cfg = run.cfg
        crit = cfg.criterion
        k = run.n_shards
        plans, schedules = run.plans, run.schedules
        tracer = get_tracer()

        run_stats = RunStats()
        per_shard_stats: list[list[SweepStats]] = []
        history: list[float] = []
        exchange_bytes = 0
        converged = False
        iteration = 0

        def sweep_one(i: int, active: np.ndarray):
            # the span lands on the worker thread's lane, so parallel
            # shard sweeps render side by side in the trace
            with tracer.span("shard.sweep", cat="shard") as span:
                step = plans[i].sweep(active, run.want_downstream[i])
                if span:
                    span.set(shard=i, active=int(len(active)),
                             **step.stats.as_dict())
            return step

        while iteration < crit.max_iterations:
            iteration += 1
            actives = [s.active for s in schedules]
            if run.pool is not None and k > 1:
                steps = list(run.pool.map(sweep_one, range(k), actives))
            else:
                steps = [sweep_one(i, actives[i]) for i in range(k)]
            # pool.map's join is a barrier: sweeps happen-before this
            run.phase("exchange")
            tracer.instant("shard.barrier", cat="shard",
                           args={"iteration": iteration} if tracer.enabled
                           else None)

            global_delta = 0.0
            round_stats = SweepStats()
            shard_stats: list[SweepStats] = []
            for i, step in enumerate(steps):
                ds, dsp = step.downstream, step.downstream_priority
                if ds is not None:
                    # downstream sets can point at halo nodes / ghost edges
                    # (local ids past the owned block) — those belong to
                    # other shards' schedules and arrive via the exchange
                    keep = ds < schedules[i].n_elements
                    ds = ds[keep]
                    dsp = dsp[keep] if dsp is not None else None
                schedules[i].update(actives[i], step.deltas, ds, dsp)
                schedules[i].charge(step.stats)
                global_delta += step.global_delta
                round_stats += step.stats
                shard_stats.append(step.stats)
            run_stats.append(round_stats)
            per_shard_stats.append(shard_stats)
            history.append(global_delta)

            with tracer.span("shard.exchange", cat="shard") as ex_span:
                moved = exchange_routes(run.sharded, run.states, plans,
                                        schedules, cfg)
                if ex_span:
                    ex_span.set(iteration=iteration, bytes=moved,
                                routes=len(run.sharded.routes))
            exchange_bytes += moved
            # next round's submissions happen-after the exchange
            run.phase("sweep")

            if (run.exhaustive and crit.is_converged(global_delta)) or all(
                s.drained for s in schedules
            ):
                converged = True
                break

        return PolicyOutcome(
            iterations=iteration,
            converged=converged,
            history=history,
            run_stats=run_stats,
            per_shard_stats=per_shard_stats,
            exchange_bytes=exchange_bytes,
            shard_staleness=[0] * k,
        )


# ----------------------------------------------------------------------
class AsyncShardPolicy(ShardPolicy):
    """Bounded-staleness shard execution with priority selection and
    region work stealing.

    Each shard ``i`` keeps a clock (completed local rounds).  Per tick:

    1. apply every pending halo snapshot (latest-only per route) and
       reactivate the owned elements it feeds — identical math to the
       sync exchange;
    2. a shard is *runnable* while ``clock[i] − min(clock) ≤ staleness``
       and its clock is below the iteration cap — the SSP gate;
    3. runnable shards are ranked by schedule pressure (residual mass /
       queue depth), so hot shards sweep more often;
    4. at ``staleness > 0`` each chosen shard's active set is split at
       region boundaries (``steal_factor`` contiguous local-id regions)
       and LPT-assigned to worker lanes, so idle workers steal regions
       from stragglers; stolen items sweep private state clones and
       merge back over disjoint rows.  At ``staleness = 0`` no split
       happens and the tick is bit-exact with one sync round.
    5. feedback and snapshot publication run in ascending shard order
       (the float-summation order the sync policy uses).

    Drained shards stay runnable (their sweeps are empty and free) so
    clocks never diverge — required for the ``staleness=0`` parity.
    """

    name = "async"

    def __init__(self, *, staleness: int = 1, steal_factor: int = 8):
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        if steal_factor < 1:
            raise ValueError("steal_factor must be at least 1")
        self.staleness = int(staleness)
        self.steal_factor = int(steal_factor)

    def __repr__(self) -> str:
        return (
            f"<AsyncShardPolicy staleness={self.staleness} "
            f"steal_factor={self.steal_factor}>"
        )

    # -- region maps ---------------------------------------------------
    def _element_regions(self, run: ShardRun, i: int) -> np.ndarray:
        """Region id per schedulable element of shard ``i``.

        Regions are ``steal_factor`` contiguous bands of local node ids;
        edge elements inherit the region of their destination node, so
        any two regions have disjoint write sets (messages, log-sums and
        beliefs all key on the destination)."""
        sh = run.sharded.shards[i]
        st = run.states[i]
        n = max(sh.n_owned, 1)
        if run.cfg.paradigm == "node":
            ids = np.arange(sh.n_owned, dtype=np.int64)
        else:
            ids = np.asarray(st.dst[: sh.n_owned_edges], dtype=np.int64)
        return np.minimum(ids * self.steal_factor // n, self.steal_factor - 1)

    # -- work items ----------------------------------------------------
    def _make_items(self, run, chosen, actives, regions):
        """Split chosen shards' active sets into work items.

        Returns ``(shard, positions, elements)`` triples: ``positions``
        indexes ``elements`` back into the shard's active array (``None``
        for an unsplit, in-place item).  Splits only happen at region
        boundaries and only when stealing is on."""
        items = []
        total = sum(len(actives[i]) for i in chosen)
        # fine enough for LPT to pack lanes evenly, coarse enough that
        # per-item overhead stays negligible
        cap = max(1, -(-total // max(run.workers * 4, 1)))
        for i in chosen:
            active = actives[i]
            if regions is None or len(active) <= cap:
                items.append((i, None, active))
                continue
            reg = regions[i][active]
            order = np.argsort(reg, kind="stable")
            bounds = np.flatnonzero(np.diff(reg[order])) + 1
            groups = np.split(order, bounds)
            if len(groups) == 1:
                items.append((i, None, active))
                continue
            bundle: list[np.ndarray] = []
            size = 0
            shard_items = []
            for g in groups:
                bundle.append(g)
                size += len(g)
                if size >= cap:
                    pos = np.concatenate(bundle)
                    shard_items.append((i, pos, active[pos]))
                    bundle, size = [], 0
            if bundle:
                pos = np.concatenate(bundle)
                shard_items.append((i, pos, active[pos]))
            if len(shard_items) == 1:
                items.append((i, None, active))
            else:
                items.extend(shard_items)
        return items

    @staticmethod
    def _lpt_lanes(items, workers: int):
        """Longest-processing-time assignment of items to worker lanes.

        Deterministic: items sorted by (size desc, shard, position),
        each placed on the least-loaded lane (lowest index on ties)."""
        order = sorted(
            range(len(items)),
            key=lambda j: (-len(items[j][2]), items[j][0], j),
        )
        loads = [0] * workers
        lanes: list[list[int]] = [[] for _ in range(workers)]
        for j in order:
            w = min(range(workers), key=lambda x: (loads[x], x))
            lanes[w].append(j)
            loads[w] += max(len(items[j][2]), 1)
        return [lane for lane in lanes if lane]

    # -- stolen-item execution ----------------------------------------
    @staticmethod
    def _clone_state(st):
        """Private copy of the mutable arrays; structure stays shared.

        ``np.array`` copies through the buffer protocol, so tracked
        (race-instrumented) arrays come back as plain ndarrays — clone
        sweeps are invisible to the detector, which is correct: their
        writes never leave the clone until the serial merge."""
        clone = object.__new__(st.__class__)
        clone.__dict__.update(st.__dict__)
        clone.beliefs = np.array(st.beliefs, copy=True, subok=False)
        clone.messages = np.array(st.messages, copy=True, subok=False)
        clone.log_messages = np.array(st.log_messages, copy=True, subok=False)
        clone.log_msg_sum = np.array(st.log_msg_sum, copy=True, subok=False)
        return clone

    @staticmethod
    def _merge_item(run, i: int, clone, elements: np.ndarray) -> None:
        """Fold a stolen item's rows back into the shard state.

        Row sets are disjoint across items of one shard: node items own
        distinct node bands (in-edge sets of distinct nodes are
        disjoint); edge items are split by destination region, so every
        active edge into a node lands in the same item."""
        st = run.states[i]
        if run.cfg.paradigm == "node":
            nodes = elements
            edges, _ = st.gather_in_edges(nodes)
        else:
            edges = elements
            nodes = np.unique(np.asarray(st.dst, dtype=np.int64)[edges])
        st.beliefs[nodes] = clone.beliefs[nodes]
        st.log_msg_sum[nodes] = clone.log_msg_sum[nodes]
        if len(edges):
            st.messages[edges] = clone.messages[edges]
            st.log_messages[edges] = clone.log_messages[edges]

    # -- main loop -----------------------------------------------------
    def execute(self, run: ShardRun) -> PolicyOutcome:  # noqa: C901
        cfg = run.cfg
        crit = cfg.criterion
        k = run.n_shards
        plans, schedules, states = run.plans, run.schedules, run.states
        tracer = get_tracer()
        stale = self.staleness
        steal = stale > 0 and self.steal_factor > 1 and run.workers > 1
        regions = (
            [self._element_regions(run, i) for i in range(k)] if steal else None
        )

        routes = run.sharded.routes
        row_bytes = 4 * run.sharded.n_states
        inbound: list[list[int]] = [[] for _ in range(k)]
        outbound: list[list[int]] = [[] for _ in range(k)]
        for ri, route in enumerate(routes):
            inbound[route.dst].append(ri)
            outbound[route.src].append(ri)
        #: latest unconsumed snapshot per route: (version, nodes, edges)
        pending: list[tuple | None] = [None] * len(routes)

        clock = [0] * k
        deltas_by_round: dict[int, float] = {}
        checked_round = 0
        run_stats = RunStats()
        per_shard_stats: list[list[SweepStats]] = []
        history: list[float] = []
        ticks: list[TickRecord] = []
        shard_staleness = [0] * k
        stolen_items = 0
        exchange_bytes = 0
        converged = False

        def exec_lane(lane):
            out = []
            for j in lane:
                i, positions, elements = items[j]
                with tracer.span("shard.sweep", cat="shard") as span:
                    if positions is None:
                        step = plans[i].sweep(elements, run.want_downstream[i])
                        clone = None
                    else:
                        clone = self._clone_state(states[i])
                        plan = type(plans[i])(clone, cfg)
                        step = plan.sweep(elements, run.want_downstream[i])
                    if span:
                        span.set(shard=i, active=int(len(elements)),
                                 stolen=positions is not None,
                                 **step.stats.as_dict())
                out.append((j, step, clone))
            return out

        while True:
            # 1. consume pending halo snapshots (routes sorted by (src,
            #    dst), so per-consumer apply order matches the sync
            #    exchange's — required for staleness=0 bit-exactness)
            tick_staleness = 0
            for i in range(k):
                lanes_in = [ri for ri in inbound[i] if pending[ri] is not None]
                if not lanes_in:
                    continue
                pn: list[np.ndarray] = []
                pnd: list[np.ndarray] = []
                pe: list[np.ndarray] = []
                ped: list[np.ndarray] = []
                for ri in lanes_in:
                    version, node_rows, edge_rows = pending[ri]
                    pending[ri] = None
                    # fresher-than-us snapshots (producer ran ahead) are
                    # age 0; positive age = rounds of staleness consumed
                    age = max(0, clock[i] - version)
                    shard_staleness[i] = max(shard_staleness[i], age)
                    tick_staleness = max(tick_staleness, age)
                    _apply_route_rows(
                        states[i], plans[i].element_threshold, routes[ri],
                        node_rows, edge_rows, pn, pnd, pe, ped,
                    )
                _reactivate_consumer(states[i], schedules[i], cfg,
                                     pn, pnd, pe, ped)

            # 2. termination: every element converged and nothing in
            #    flight (the sync policy's post-exchange drain check;
            #    sync always runs at least one round, so only check
            #    once a tick has happened)
            if history and all(s.drained for s in schedules):
                converged = True
                break

            # 3. SSP gate + pressure selection: hot shards sweep every
            #    tick; cold (drained) shards sweep only when a hot shard
            #    is waiting on the staleness gate, so their cheap empty
            #    rounds advance the clock floor.  staleness=0 keeps the
            #    lockstep everyone-sweeps rule (sync parity).
            floor = min(clock)
            runnable = [
                i for i in range(k)
                if clock[i] < crit.max_iterations and clock[i] - floor <= stale
            ]
            if not runnable:
                break  # every shard retired at the iteration cap

            pressured = [i for i in runnable if schedules[i].pressure() > 0.0]
            blocked = any(
                clock[i] < crit.max_iterations
                and clock[i] - floor > stale
                and schedules[i].pressure() > 0.0
                for i in range(k)
            )
            if stale == 0 or not pressured:
                chosen = runnable
            elif blocked:
                chosen = sorted(
                    set(pressured) | {i for i in runnable if clock[i] == floor}
                )
            else:
                chosen = pressured
            actives = {i: schedules[i].active for i in chosen}
            items = self._make_items(run, chosen, actives, regions)
            lanes = self._lpt_lanes(items, run.workers)

            # 4. sweep: lanes in parallel, items within a lane serial
            for i in chosen:
                run.shard_phase(i, "sweep")
            results = run.map(exec_lane, lanes)
            for i in chosen:
                run.shard_phase(i, "exchange")

            lane_stats = []
            by_item: dict[int, tuple] = {}
            for lane_out in results:
                agg = SweepStats()
                for j, step, clone in lane_out:
                    by_item[j] = (step, clone)
                    agg += step.stats
                lane_stats.append(agg)

            # 5. serial merge of stolen items, deterministic item order
            tick_stolen = 0
            for j in sorted(by_item):
                step, clone = by_item[j]
                if clone is not None:
                    i, positions, elements = items[j]
                    self._merge_item(run, i, clone, elements)
                    tick_stolen += 1
            stolen_items += tick_stolen

            # 6. feedback in ascending shard order (sync's float order)
            tick_delta = 0.0
            tick_stats = SweepStats()
            shard_stats: list[SweepStats] = [SweepStats() for _ in range(k)]
            for i in chosen:
                active = actives[i]
                item_ids = [j for j in sorted(by_item)
                            if items[j][0] == i]
                if len(item_ids) == 1 and items[item_ids[0]][1] is None:
                    step = by_item[item_ids[0]][0]
                    deltas, ds, dsp = step.deltas, step.downstream, \
                        step.downstream_priority
                    shard_delta = step.global_delta
                    stats_i = step.stats
                else:
                    first = by_item[item_ids[0]][0]
                    deltas = np.zeros(len(active), dtype=first.deltas.dtype)
                    ds_parts: list[np.ndarray] = []
                    dsp_parts: list[np.ndarray] = []
                    shard_delta = 0.0
                    stats_i = SweepStats()
                    for j in item_ids:
                        step = by_item[j][0]
                        _, positions, _ = items[j]
                        deltas[positions] = step.deltas
                        if step.downstream is not None:
                            ds_parts.append(step.downstream)
                            dsp_parts.append(step.downstream_priority)
                        shard_delta += step.global_delta
                        stats_i += step.stats
                    ds = np.concatenate(ds_parts) if ds_parts else None
                    dsp = np.concatenate(dsp_parts) if dsp_parts else None
                if ds is not None:
                    keep = ds < schedules[i].n_elements
                    ds = ds[keep]
                    dsp = dsp[keep] if dsp is not None else None
                schedules[i].update(active, deltas, ds, dsp)
                schedules[i].charge(stats_i)
                tick_delta += shard_delta
                tick_stats += stats_i
                shard_stats[i] = stats_i
                r = clock[i] + 1
                deltas_by_round[r] = deltas_by_round.get(r, 0.0) + shard_delta
                clock[i] = r
            run_stats.append(tick_stats)
            per_shard_stats.append(shard_stats)
            history.append(tick_delta)

            # 7. publish fresh boundary snapshots (latest-only per route)
            with tracer.span("shard.exchange", cat="shard") as ex_span:
                tick_bytes = 0
                for i in chosen:
                    for ri in outbound[i]:
                        route = routes[ri]
                        node_rows = (
                            np.asarray(states[i].beliefs[route.src_nodes])
                            if len(route.src_nodes) else None
                        )
                        edge_rows = (
                            np.asarray(states[i].messages[route.src_edges])
                            if len(route.src_edges) else None
                        )
                        pending[ri] = (clock[i], node_rows, edge_rows)
                        tick_bytes += route.rows * row_bytes
                if ex_span:
                    ex_span.set(tick=len(ticks) + 1, bytes=tick_bytes,
                                staleness=tick_staleness,
                                stolen=tick_stolen)
            exchange_bytes += tick_bytes
            ticks.append(TickRecord(
                swept=tuple(chosen),
                worker_stats=lane_stats,
                exchange_bytes=tick_bytes,
                stolen=tick_stolen,
                max_staleness=tick_staleness,
            ))

            # 8. global criterion over *completed* rounds (every shard
            #    contributed), same float accumulation order as sync
            if run.exhaustive:
                stop = False
                while checked_round < min(clock):
                    checked_round += 1
                    if crit.is_converged(deltas_by_round.pop(checked_round)):
                        stop = True
                        break
                if stop:
                    converged = True
                    break

        return PolicyOutcome(
            iterations=max(clock) if clock else 0,
            converged=converged,
            history=history,
            run_stats=run_stats,
            per_shard_stats=per_shard_stats,
            exchange_bytes=exchange_bytes,
            ticks=ticks,
            shard_staleness=shard_staleness,
            stolen_items=stolen_items,
        )

"""Simulated OpenACC backend (paper §2.4).

The paper's OpenACC port runs the same loops on the GPU via pragmas but
inherits two handicaps versus hand-written CUDA:

* **imprecise convergence** — "BP executes for far more iterations …
  due to OpenACC's API failing to precisely compute the convergence
  check", so runs "terminat[e] much closer to the cap on iterations";
* **no work queues** — they "require finer grained control than what
  OpenACC offers";
* **scheduler overhead** — the paper had to override the default
  scheduler that "tr[ies] to schedule full transfers of the data between
  the CPU and GPU after every iteration"; even tuned, each generated
  kernel pays extra launch and bookkeeping cost, and convergence
  transfers happen per batched-iteration window.

With those mitigations, OpenACC's *best* result was 1.25× on the K21
Edge benchmark, generally trailing the C implementations — the shape the
E6 benchmark asserts.
"""

from __future__ import annotations

from dataclasses import replace

from repro.backends.base import Backend, BackendUnsupportedError, RunResult
from repro.backends.cuda_backends import _graph_device_bytes
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP
from repro.gpusim.arch import DeviceSpec, get_device
from repro.gpusim.device import GpuDevice, GpuOutOfMemoryError

__all__ = ["OpenACCBackend"]

_FSIZE = 4

#: convergence slack modelling the imprecise reduction (§2.4); the
#: effective threshold shrinks, dragging runs toward the iteration cap
_ACC_CONVERGENCE_SLACK = 4.0
#: pragma-generated kernels pay extra launch overhead vs hand CUDA
_ACC_LAUNCH_MULTIPLIER = 3.0
#: runtime bookkeeping per iteration (present-table checks etc.), seconds
_ACC_RUNTIME_OVERHEAD = 25e-6
#: iterations per convergence d2h batch after the scheduler override
_ACC_BATCH = 8


class OpenACCBackend(Backend):
    """Pragma-offloaded GPU execution with §2.4's overheads."""

    name = "openacc"
    platform = "gpu"

    def __init__(self, device: DeviceSpec | str = "gtx1070", *, paradigm: str = "edge"):
        self.device_spec = get_device(device)
        self.paradigm = paradigm

    def supports(self, graph: BeliefGraph) -> bool:
        if not graph.uniform:
            return False
        total = sum(_graph_device_bytes(graph, schedule="sync").values())
        return total <= self.device_spec.vram_bytes

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,  # coerced to sync: queues need finer
        work_queue: bool | None = None,  # grained control than OpenACC offers (§3.5)
        update_rule: str = "sum_product",
        executor: str | None = None,
    ) -> RunResult:
        assert self.paradigm is not None
        crit = criterion or ConvergenceCriterion()
        # The imprecise reduction: harder effective threshold → more iters.
        acc_criterion = replace(crit, slack=_ACC_CONVERGENCE_SLACK)
        config = self._loopy_config(
            self.paradigm, acc_criterion, "sync", update_rule, executor=executor
        )

        device = GpuDevice(self.device_spec)
        buffers = _graph_device_bytes(graph, schedule="sync")
        try:
            for name, nbytes in buffers.items():
                device.alloc(name, nbytes)
        except GpuOutOfMemoryError as exc:
            raise BackendUnsupportedError(
                f"{self.name}: graph does not fit in {self.device_spec.name} VRAM"
            ) from exc
        if "potentials" not in buffers:  # shared matrix: one extra buffer
            device.alloc("potentials", max(graph.potentials.nbytes(), 1))
        device.h2d(sum(buffers.values()) + graph.potentials.nbytes(), calls=len(buffers) + 1)

        loopy, wall = self._timed(LoopyBP(config).run, graph)

        belief_bytes = 4.0 * graph.n_states
        for i, sweep in enumerate(loopy.run_stats.per_iteration, start=1):
            boosted = replace(
                sweep,
                kernel_launches=int(
                    max(sweep.kernel_launches, 1) * _ACC_LAUNCH_MULTIPLIER
                ),
            )
            device.launch(boosted, random_access_bytes=belief_bytes)
            device.elapsed += _ACC_RUNTIME_OVERHEAD
            device.breakdown.launch += _ACC_RUNTIME_OVERHEAD
            if i % _ACC_BATCH == 0:
                device.d2h(_FSIZE)
        device.d2h(graph.n_nodes * graph.n_states * _FSIZE)

        return self._result_from_loopy(
            self.name,
            loopy,
            wall,
            device.elapsed,
            device=self.device_spec.name,
            breakdown=device.breakdown,
            effective_threshold=acc_criterion.effective_threshold(),
            schedule=config.schedule,
        )

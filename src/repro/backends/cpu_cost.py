"""Single-threaded CPU cost model (the paper's "C" implementations).

The evaluation machine is "an Intel Core i7-7700HQ with 4 physical and 4
logical cores" (§4).  The model is the CPU analogue of the GPU roofline:
scalar/SIMD compute at a derated peak, streaming traffic at the effective
single-core bandwidth, and data-dependent gathers paying a cache-miss
latency each (partially overlapped by out-of-order execution).  The §3.4
layout experiment plugs in here too: the belief store reports its cache
lines per access, which scales the gather cost — the AoS design's ~56 %
fewer cache accesses shows up as proportionally fewer misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sweepstats import SweepStats

__all__ = ["CpuSpec", "I7_7700HQ", "XEON_E5_2686", "cpu_sweep_time"]


@dataclass(frozen=True)
class CpuSpec:
    """One CPU core's cost-model parameters."""

    name: str
    clock_ghz: float
    #: sustained single-core flops per cycle (SSE/AVX, derated)
    flops_per_cycle: float
    #: effective single-core streaming bandwidth, bytes/second
    stream_bandwidth: float
    #: average cost of one data-dependent cache miss, seconds
    miss_latency: float
    #: fraction of gathers that actually miss (OoO + prefetch hide some)
    miss_rate: float
    cache_line: int = 64
    physical_cores: int = 4
    logical_cores: int = 8

    @property
    def peak_flops(self) -> float:
        return self.clock_ghz * 1e9 * self.flops_per_cycle


#: The paper's evaluation CPU (§4).
I7_7700HQ = CpuSpec(
    name="i7-7700HQ",
    clock_ghz=2.8,
    flops_per_cycle=8.0,
    stream_bandwidth=12e9,
    miss_latency=80e-9,
    miss_rate=0.35,
    physical_cores=4,
    logical_cores=8,
)

#: The p3.2xlarge host CPU (§4.4).
XEON_E5_2686 = CpuSpec(
    name="Xeon E5-2686 v4",
    clock_ghz=2.3,
    flops_per_cycle=8.0,
    stream_bandwidth=11e9,
    miss_latency=90e-9,
    miss_rate=0.35,
    physical_cores=8,
    logical_cores=16,
)


@dataclass(frozen=True)
class CpuSweepCost:
    """Component breakdown of one sweep's modeled single-thread time."""

    compute: float
    stream: float
    gather: float
    queue: float

    @property
    def total(self) -> float:
        return max(self.compute, self.stream) + self.gather + self.queue

    @property
    def memory_bound(self) -> float:
        """The portion limited by the memory system (does not scale with
        extra threads — the §2.4 mechanism)."""
        return self.stream + self.gather

    @property
    def cpu_bound(self) -> float:
        """The portion that scales with added cores."""
        return self.compute + self.queue


def cpu_sweep_cost(
    spec: CpuSpec,
    stats: SweepStats,
    *,
    gather_bytes: float = 32.0,
    cache_lines_per_access: float = 1.0,
    queue_op_seconds: float = 12e-9,
) -> CpuSweepCost:
    """Component costs of one sweep on a single core.

    ``cache_lines_per_access`` comes from the belief-store layout (§3.4):
    SoA touches more distinct lines per logical access than AoS, raising
    the effective miss count.
    """
    compute = stats.flops / spec.peak_flops
    stream = stats.sequential_bytes / spec.stream_bandwidth
    n_gathers = stats.random_accesses
    if n_gathers == 0 and stats.random_bytes:
        n_gathers = int(stats.random_bytes / max(gather_bytes, 1.0))
    misses = n_gathers * spec.miss_rate * cache_lines_per_access
    gather = misses * spec.miss_latency
    # single thread: atomics are plain RMWs, folded into compute already
    queue = stats.queue_ops * queue_op_seconds
    return CpuSweepCost(compute=compute, stream=stream, gather=gather, queue=queue)


def cpu_sweep_time(
    spec: CpuSpec,
    stats: SweepStats,
    *,
    gather_bytes: float = 32.0,
    cache_lines_per_access: float = 1.0,
    queue_op_seconds: float = 12e-9,
) -> float:
    """Modeled single-thread seconds for one sweep."""
    return cpu_sweep_cost(
        spec,
        stats,
        gather_bytes=gather_bytes,
        cache_lines_per_access=cache_lines_per_access,
        queue_op_seconds=queue_op_seconds,
    ).total

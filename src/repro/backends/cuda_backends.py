"""The CUDA Node and Edge backends (paper §3.6), executing on the
simulated GPU.

The lifecycle mirrors the paper's CUDA implementations:

1. allocate device buffers for beliefs, priors, messages, the log-sum
   accumulators, the adjacency indices and (when work queues are on)
   the queue arrays — each allocation pays driver overhead;
2. stage the shared joint-probability matrix in **constant memory**
   when it fits ("we make use of the global constant memory cache …
   to store the static joint probability matrix", §3.6);
3. one bulk host→device transfer of the graph;
4. per iteration: kernel launches accounted by the SIMT cost model,
   with the convergence scalar read back only every
   ``convergence_batch`` iterations (the §3.6 batching);
5. final device→host copy of the beliefs.

``supports`` reports whether the graph fits VRAM — the paper's TW and OR
graphs at 32 beliefs do not (§4.2), and graphs that do not fit are
excluded from the classifier dataset (§4.3).
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendUnsupportedError, RunResult
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP
from repro.gpusim.arch import DeviceSpec, get_device
from repro.gpusim.device import GpuDevice, GpuOutOfMemoryError
from repro.gpusim.transfer import DEFAULT_CONVERGENCE_BATCH

__all__ = ["CudaNodeBackend", "CudaEdgeBackend"]

_FSIZE = 4
_ISIZE = 8


def _graph_device_bytes(graph: BeliefGraph, schedule: str = "work_queue") -> dict[str, int]:
    """Device buffers a BP run needs, named as a real implementation would
    name its cudaMallocs.  The scheduling policy decides the bookkeeping
    buffers: queues hold element indices; priority schedules additionally
    keep a per-element residual key array."""
    n, m, b = graph.n_nodes, graph.n_edges, graph.n_states
    buffers = {
        "beliefs": n * b * _FSIZE,
        "beliefs_prev": n * b * _FSIZE,
        "priors": n * b * _FSIZE,
        "messages": m * b * _FSIZE,
        "log_msg_sum": n * b * _FSIZE,
        "edge_src": m * _ISIZE,
        "edge_dst": m * _ISIZE,
        "edge_rev": m * _ISIZE,
        "csr_in": (n + 1) * _ISIZE + m * _ISIZE,
        "csr_out": (n + 1) * _ISIZE + m * _ISIZE,
        "delta_scratch": max(n, m) * _FSIZE,
    }
    if schedule != "sync":
        buffers["queue"] = max(n, m) * _ISIZE
        buffers["queue_next"] = max(n, m) * _ISIZE
    if schedule in ("residual", "relaxed"):
        buffers["priority"] = max(n, m) * _FSIZE
    if not graph.potentials.shared:
        buffers["potentials"] = graph.potentials.nbytes()
    return buffers


class _CudaBackend(Backend):
    platform = "gpu"

    def __init__(
        self,
        device: DeviceSpec | str = "gtx1070",
        *,
        threads_per_block: int = 1024,
        convergence_batch: int = DEFAULT_CONVERGENCE_BATCH,
    ):
        self.device_spec = get_device(device)
        self.threads_per_block = threads_per_block
        self.convergence_batch = max(1, convergence_batch)

    def supports(self, graph: BeliefGraph) -> bool:
        if not graph.uniform:
            return False
        # worst-case footprint: priority schedules carry the extra key array
        total = sum(_graph_device_bytes(graph, schedule="residual").values())
        return total <= self.device_spec.vram_bytes

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        executor: str | None = None,
    ) -> RunResult:
        assert self.paradigm is not None
        config = self._loopy_config(
            self.paradigm, criterion, schedule, update_rule, work_queue, executor
        )
        device = GpuDevice(self.device_spec)
        buffers = _graph_device_bytes(graph, config.schedule)
        try:
            for name, nbytes in buffers.items():
                device.alloc(name, nbytes)
        except GpuOutOfMemoryError as exc:
            raise BackendUnsupportedError(
                f"{self.name}: graph does not fit in {self.device_spec.name} VRAM"
            ) from exc

        # Shared matrix goes to the constant cache when it fits (§3.6);
        # otherwise it lives in global memory like the per-edge stacks.
        if graph.potentials.shared:
            pot_bytes = graph.potentials.nbytes()
            if pot_bytes <= self.device_spec.constant_mem_bytes:
                device.alloc("potentials", pot_bytes, space="constant")
            else:
                device.alloc("potentials", pot_bytes)

        # Bulk upload: graph data moves once and stays resident (§3.6).
        upload = sum(buffers.values()) + graph.potentials.nbytes()
        device.h2d(upload, calls=len(buffers) + 1)

        loopy, wall = self._timed(LoopyBP(config).run, graph)

        belief_bytes = 4.0 * graph.n_states
        for i, sweep in enumerate(loopy.run_stats.per_iteration, start=1):
            device.launch(
                sweep,
                threads_per_block=self.threads_per_block,
                random_access_bytes=belief_bytes,
            )
            if i % self.convergence_batch == 0:
                device.d2h(_FSIZE)  # batched convergence scalar (§3.6)
        # Final read-back of the posterior beliefs.
        device.d2h(graph.n_nodes * graph.n_states * _FSIZE)

        return self._result_from_loopy(
            self.name,
            loopy,
            wall,
            device.elapsed,
            device=self.device_spec.name,
            breakdown=device.breakdown,
            management_fraction=device.breakdown.management_fraction,
            kernel_count=device.kernel_count,
            schedule=config.schedule,
            executor=config.executor,
        )


class CudaNodeBackend(_CudaBackend):
    """Per-node kernels on the simulated GPU ("CUDA Node") — the paper's
    headline performer (up to ~120× on 2M×8M with three beliefs)."""

    name = "cuda-node"
    paradigm = "node"


class CudaEdgeBackend(_CudaBackend):
    """Per-edge kernels on the simulated GPU ("CUDA Edge") — pays atomics
    on the combine, profits as belief counts rise (Fig. 8)."""

    name = "cuda-edge"
    paradigm = "edge"

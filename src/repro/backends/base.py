"""Backend interface and run results.

A backend executes loopy BP on a :class:`~repro.core.graph.BeliefGraph`
and reports a :class:`RunResult` with two clocks:

* ``wall_time`` — real seconds measured around the numerical execution;
* ``modeled_time`` — the deterministic cost-model seconds for the
  hardware the backend represents (the paper's GTX 1070, the 8-core CPU,
  …).  The evaluation harness compares modeled times: that is the axis on
  which the paper's relative shapes (crossover at 1e5 nodes, Edge vs Node
  trade-offs) live.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyConfig, LoopyResult
from repro.core.sweepstats import SweepStats
from repro.telemetry import get_tracer

__all__ = ["Backend", "RunResult", "BackendUnsupportedError"]


class BackendUnsupportedError(RuntimeError):
    """The backend cannot run this graph (e.g. exceeds simulated VRAM)."""


@dataclass
class RunResult:
    """Outcome of one backend execution."""

    backend: str
    beliefs: np.ndarray
    iterations: int
    converged: bool
    wall_time: float
    modeled_time: float
    delta_history: list[float] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)
    detail: dict[str, Any] = field(default_factory=dict)

    def speedup_vs(self, other: "RunResult") -> float:
        """other's modeled time over ours (> 1 means we are faster)."""
        if self.modeled_time <= 0:
            return float("inf")
        return other.modeled_time / self.modeled_time


def _traced_run(run_fn):
    """Wrap a backend ``run`` in a ``backend.run`` telemetry span.

    Applied once per concrete ``run`` override via
    ``Backend.__init_subclass__`` so every engine is covered without
    per-backend boilerplate; a no-op span when tracing is disabled.
    """

    @functools.wraps(run_fn)
    def wrapper(self, graph, **kwargs):
        with get_tracer().span("backend.run", cat="backend") as sp:
            result = run_fn(self, graph, **kwargs)
            if sp:
                sp.set(
                    backend=result.backend,
                    platform=self.platform,
                    n_nodes=graph.n_nodes,
                    n_edges=graph.n_edges,
                    iterations=result.iterations,
                    converged=result.converged,
                    modeled_time_s=result.modeled_time,
                )
                # shard-policy observability: exported summaries read the
                # barrier-idle / staleness columns straight off this span
                for key in ("policy", "staleness", "barrier_idle_s"):
                    if key in result.detail:
                        sp.set(**{key: result.detail[key]})
        return result

    wrapper._telemetry_wrapped = True
    return wrapper


class Backend:
    """Abstract execution engine."""

    #: registry key, e.g. ``"cuda-node"``
    name: str = "abstract"
    #: ``"cpu"`` or ``"gpu"``
    platform: str = "cpu"
    #: ``"node"``, ``"edge"`` or ``None`` (backend-chosen)
    paradigm: str | None = None
    #: schedule used when ``run`` gets neither ``schedule`` nor the
    #: deprecated ``work_queue``; registry variants like
    #: ``"c-node:residual"`` override it per instance
    default_schedule: str = "work_queue"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        run = cls.__dict__.get("run")
        if run is not None and not getattr(run, "_telemetry_wrapped", False):
            cls.run = _traced_run(run)

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        executor: str | None = None,
    ) -> RunResult:
        """Execute BP on ``graph`` (beliefs are updated in place).

        ``schedule`` is any name :func:`repro.core.scheduler.make_schedule`
        accepts; ``executor`` is any name
        :func:`repro.kernels.executor.normalize_executor` accepts
        (``None`` → interpreted); ``work_queue`` is the deprecated
        boolean shim.
        """
        raise NotImplementedError

    def supports(self, graph: BeliefGraph) -> bool:
        """Cheap feasibility check (memory limits, uniformity, …)."""
        return True

    # -- shared helpers ----------------------------------------------------
    def _loopy_config(
        self,
        paradigm: str,
        criterion: ConvergenceCriterion | None,
        schedule: str | None,
        update_rule: str,
        work_queue: bool | None = None,
        executor: str | None = None,
    ) -> LoopyConfig:
        crit = criterion or ConvergenceCriterion()
        if work_queue is not None:
            # legacy path: LoopyConfig owns the deprecation warning
            return LoopyConfig(  # noqa: RPR303
                paradigm=paradigm,
                update_rule=update_rule,
                criterion=crit,
                work_queue=work_queue,
                executor=executor or "interpreted",
            )
        return LoopyConfig(
            paradigm=paradigm,
            update_rule=update_rule,
            criterion=crit,
            schedule=schedule or self.default_schedule,
            executor=executor or "interpreted",
        )

    @staticmethod
    def _timed(fn, *args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        return out, time.perf_counter() - start

    @staticmethod
    def _result_from_loopy(
        name: str, loopy: LoopyResult, wall: float, modeled: float, **detail
    ) -> RunResult:
        return RunResult(
            backend=name,
            beliefs=loopy.beliefs,
            iterations=loopy.iterations,
            converged=loopy.converged,
            wall_time=wall,
            modeled_time=modeled,
            delta_history=loopy.delta_history,
            stats=loopy.run_stats.total,
            detail=detail,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"

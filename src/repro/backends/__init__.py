"""Execution engines for loopy BP (paper §2.4, §3.6).

The paper's suite of implementations, reproduced one-for-one:

========================  ============================================
``reference``             unoptimized per-node Python loops (control
                          for the §2.1.1 algorithm comparison)
``c-node`` / ``c-edge``   the optimized single-threaded implementations
                          (vectorized NumPy here standing in for C)
``openmp``                simulated fork-join multicore (§2.4)
``openacc``               simulated pragma GPU offload with the
                          imprecise convergence check (§2.4)
``cuda-node``/``cuda-edge``  kernels accounted on :mod:`repro.gpusim`
========================  ============================================

Every backend returns a :class:`~repro.backends.base.RunResult` carrying
both the measured wall time and the cost-model **modeled time** used by
the figure reproductions.
"""

from repro.backends.base import Backend, RunResult, BackendUnsupportedError
from repro.backends.reference import ReferenceBackend
from repro.backends.c_backends import CNodeBackend, CEdgeBackend
from repro.backends.cuda_backends import CudaNodeBackend, CudaEdgeBackend
from repro.backends.openmp import OpenMPBackend
from repro.backends.openacc import OpenACCBackend
from repro.backends.distributed import DistributedBackend, ClusterSpec
from repro.backends.sharded import ShardedCpuBackend
from repro.backends.multigpu import MultiGpuBackend
from repro.backends.registry import get_backend, available_backends, BACKENDS, CORE_BACKENDS

__all__ = [
    "Backend",
    "RunResult",
    "BackendUnsupportedError",
    "ReferenceBackend",
    "CNodeBackend",
    "CEdgeBackend",
    "CudaNodeBackend",
    "CudaEdgeBackend",
    "OpenMPBackend",
    "OpenACCBackend",
    "DistributedBackend",
    "ClusterSpec",
    "ShardedCpuBackend",
    "MultiGpuBackend",
    "get_backend",
    "available_backends",
    "BACKENDS",
    "CORE_BACKENDS",
]

"""Multi-GPU backend: per-shard CUDA kernels + interconnect exchange.

The single-GPU backends (§3.6) hit the VRAM wall on the paper's TW/OR
graphs; the escape hatch is the same partition layer the CPU sharded
backend uses, with each shard resident on its own simulated device.
Rounds are bulk-synchronous: every device launches its shard's sweep
kernels (the straggler sets the round time — the measured balance of the
partition, not an assumption), then halo beliefs and ghost messages move
peer-to-peer over NVLink or PCIe (:mod:`repro.gpusim.multi`).

``supports`` admits graphs whose *sharded* footprint fits the device
fleet even when a single device cannot hold them — the capacity story
that motivates multi-GPU BP in the first place.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendUnsupportedError, RunResult
from repro.backends.cuda_backends import _graph_device_bytes
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.sharded import ShardedGraph, ShardedLoopyBP
from repro.gpusim.arch import DeviceSpec, get_device
from repro.gpusim.device import GpuOutOfMemoryError
from repro.gpusim.multi import InterconnectSpec, MultiGpuDevice, get_interconnect
from repro.gpusim.transfer import DEFAULT_CONVERGENCE_BATCH
from repro.partition import Partition, make_partition
from repro.telemetry import get_metrics

__all__ = ["MultiGpuBackend"]

_FSIZE = 4


class MultiGpuBackend(Backend):
    """Sharded BP across ``n_devices`` simulated GPUs ("cuda-multi")."""

    name = "cuda-multi"
    platform = "gpu"

    def __init__(
        self,
        device: DeviceSpec | str = "gtx1070",
        *,
        n_devices: int = 2,
        interconnect: InterconnectSpec | str = "nvlink",
        partitioner: str = "bfs",
        paradigm: str = "node",
        threads_per_block: int = 1024,
        convergence_batch: int = DEFAULT_CONVERGENCE_BATCH,
        seed: int = 0,
        policy: str = "sync",
        staleness: int = 0,
        steal_factor: int = 8,
    ):
        if n_devices < 1:
            raise ValueError("n_devices must be at least 1")
        self.device_spec = get_device(device)
        self.n_devices = n_devices
        self.interconnect = get_interconnect(interconnect)
        self.partitioner = partitioner
        self.paradigm = paradigm
        self.threads_per_block = threads_per_block
        self.convergence_batch = max(1, convergence_batch)
        self.seed = seed
        self.policy = policy
        self.staleness = staleness
        self.steal_factor = steal_factor

    def supports(self, graph: BeliefGraph) -> bool:
        if not graph.uniform:
            return False
        # each shard holds ~1/n of the graph plus its halo; admit when the
        # fleet-wide capacity covers the worst-case (priority) footprint
        # with headroom for boundary duplication
        total = sum(_graph_device_bytes(graph, schedule="residual").values())
        return total * 1.25 <= self.n_devices * self.device_spec.vram_bytes

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        executor: str | None = None,
        partition: Partition | None = None,
    ) -> RunResult:
        config = self._loopy_config(
            self.paradigm, criterion, schedule, update_rule, work_queue, executor
        )
        if partition is None:
            partition = make_partition(
                graph, min(self.n_devices, max(graph.n_nodes, 1)),
                self.partitioner, seed=self.seed,
            )
        sharded = ShardedGraph.build(graph, partition)
        fleet = MultiGpuDevice(
            self.device_spec,
            n_devices=sharded.n_shards,
            interconnect=self.interconnect,
        )

        shard_buffers = [
            _graph_device_bytes(sh.graph, config.schedule) for sh in sharded.shards
        ]

        def alloc_all(device, buffers):
            for name, nbytes in buffers.items():
                device.alloc(name, nbytes)
            if graph.potentials.shared:
                # the shared matrix is replicated into every device's
                # constant cache when it fits (§3.6)
                pot = graph.potentials.nbytes()
                if pot <= self.device_spec.constant_mem_bytes:
                    device.alloc("potentials", pot, space="constant")
                else:
                    device.alloc("potentials", pot)

        try:
            fleet.lockstep(
                [lambda d, b=b: alloc_all(d, b) for b in shard_buffers]
            )
        except GpuOutOfMemoryError as exc:
            raise BackendUnsupportedError(
                f"{self.name}: a shard does not fit in "
                f"{self.device_spec.name} VRAM at {sharded.n_shards} devices"
            ) from exc

        # bulk per-device upload of the resident shard (§3.6 lifecycle)
        fleet.lockstep(
            [
                lambda d, b=b: d.h2d(
                    sum(b.values()) + graph.potentials.nbytes(), calls=len(b) + 1
                )
                for b in shard_buffers
            ]
        )

        driver = ShardedLoopyBP(
            config,
            policy=self.policy,
            staleness=self.staleness,
            steal_factor=self.steal_factor,
        )
        result, wall = self._timed(driver.run, sharded)

        profile = sharded.exchange_profile()
        belief_bytes = 4.0 * graph.n_states
        barrier_idle = 0.0
        base = [d.elapsed for d in fleet.devices]
        if result.policy == "async" and result.staleness > 0:
            # stale-synchronous replay: no per-round barrier, no periodic
            # lockstep d2h convergence poll (each device decides from its
            # resident deltas); halo publishes occupy the link while the
            # other devices keep computing
            fleet.begin_async()
            for shard_stats, tick in zip(result.per_shard_stats, result.ticks):
                fleet.async_launch(
                    [
                        s if i in tick.swept else None
                        for i, s in enumerate(shard_stats)
                    ],
                    threads_per_block=self.threads_per_block,
                    random_access_bytes=belief_bytes,
                )
                if sharded.n_shards > 1 and tick.exchange_bytes > 0:
                    fleet.async_exchange(tick.exchange_bytes)
            fleet.finish_async()
            # residual idle is only the end-of-run imbalance between
            # device clocks — not a per-round wait
            busy = [d.elapsed - b for d, b in zip(fleet.devices, base)]
            barrier_idle = sum(max(busy, default=0.0) - t for t in busy)
        else:
            for i, shard_stats in enumerate(result.per_shard_stats, start=1):
                before = [d.elapsed for d in fleet.devices]
                dt = fleet.launch_round(
                    shard_stats,
                    threads_per_block=self.threads_per_block,
                    random_access_bytes=belief_bytes,
                )
                barrier_idle += sum(
                    dt - (d.elapsed - b)
                    for d, b in zip(fleet.devices, before)
                )
                if sharded.n_shards > 1 and profile["bytes_per_round"] > 0:
                    fleet.exchange(
                        profile["bytes_per_round"], profile["max_device_bytes"]
                    )
                if i % self.convergence_batch == 0:
                    fleet.lockstep([lambda d: d.d2h(_FSIZE)] * sharded.n_shards)
        # final posterior read-back: each device ships its owned rows
        fleet.lockstep(
            [
                lambda d, sh=sh: d.d2h(sh.n_owned * graph.n_states * _FSIZE)
                for sh in sharded.shards
            ]
        )

        get_metrics().histogram("sharded.barrier_idle_s").record(barrier_idle)
        return self._result_from_loopy(
            self.name,
            result,
            wall,
            fleet.elapsed,
            device=self.device_spec.name,
            n_devices=sharded.n_shards,
            interconnect=fleet.interconnect.name,
            schedule=config.schedule,
            partitioner=partition.method,
            cut_fraction=partition.cut_fraction,
            shard_balance=partition.balance,
            exchange_bytes=fleet.exchange_bytes,
            exchange_fraction=fleet.exchange_fraction,
            policy=result.policy,
            staleness=result.staleness,
            stolen_items=result.stolen_items,
            barrier_idle_s=barrier_idle,
        )

"""Unoptimized reference backend: pure-Python per-node loops.

This is the "before" picture — no vectorization, no compressed index
reuse, per-edge matrix loads — and also the only engine that handles
heterogeneous (ragged) state counts, i.e. networks converted from BIF
files before the §2.2 shared-matrix refinement.  Its results feed the
correctness tests; its wall time is the denominator of nothing (the paper
compares against the *optimized* C control), but it shows the cost of
naive processing.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, RunResult
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.numeric import EPS as _TINY  # shared float64 floor
from repro.core.sweepstats import RunStats, SweepStats

__all__ = ["ReferenceBackend"]


class ReferenceBackend(Backend):
    """Pure-Python loopy BP (sum-product with cavity messages)."""

    name = "reference"
    platform = "cpu"
    paradigm = "node"

    def supports(self, graph: BeliefGraph) -> bool:
        return True  # including ragged graphs

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,  # accepted for interface parity; unused
        work_queue: bool | None = None,  # deprecated shim; unused
        update_rule: str = "sum_product",
        executor: str | None = None,  # pure-Python loops: nothing to lower
    ) -> RunResult:
        crit = criterion or ConvergenceCriterion()
        n = graph.n_nodes

        priors = []
        for i in range(n):
            p = np.asarray(graph.priors.get(i), dtype=np.float64)
            if graph.observed[i]:
                p = np.full(int(graph.dims[i]), _TINY)
                p[int(graph.observed_state[i])] = 1.0
            priors.append(np.maximum(p, _TINY))
        beliefs = [p / p.sum() for p in priors]
        messages = [
            np.full(int(graph.dims[graph.dst[e]]), 1.0 / int(graph.dims[graph.dst[e]]))
            for e in range(graph.n_edges)
        ]

        run_stats = RunStats()
        history: list[float] = []
        converged = False
        iteration = 0

        def compute(fn):
            import time

            t0 = time.perf_counter()
            out = fn()
            return out, time.perf_counter() - t0

        def one_pass() -> float:
            delta = 0.0
            new_messages = [None] * graph.n_edges
            for e in range(graph.n_edges):
                u = int(graph.src[e])
                rev = int(graph.reverse_edge[e])
                cavity = priors[u].copy()
                for inc in graph.in_edges(u):
                    if int(inc) != rev:
                        cavity = cavity * messages[int(inc)]
                total = cavity.sum()
                if total > 0:
                    cavity /= total
                if update_rule == "broadcast":
                    cavity = np.asarray(beliefs[u], dtype=np.float64)
                mat = np.asarray(graph.potentials.matrix(e), dtype=np.float64)
                msg = cavity @ mat
                total = msg.sum()
                new_messages[e] = msg / total if total > 0 else np.full_like(msg, 1.0 / len(msg))
            for e in range(graph.n_edges):
                messages[e] = new_messages[e]
            for v in range(n):
                combined = priors[v].copy()
                for e in graph.in_edges(v):
                    combined = combined * messages[int(e)]
                total = combined.sum()
                new_belief = (
                    combined / total if total > 0 else np.full_like(combined, 1.0 / len(combined))
                )
                if graph.observed[v]:
                    new_belief = beliefs[v]
                delta += float(np.abs(new_belief - beliefs[v]).sum())
                beliefs[v] = new_belief
            return delta

        wall = 0.0
        while iteration < crit.max_iterations:
            iteration += 1
            delta, dt = compute(one_pass)
            wall += dt
            history.append(delta)
            stats = SweepStats(
                nodes_processed=n,
                edges_processed=graph.n_edges,
                reduction_elems=n,
                kernel_launches=1,
            )
            run_stats.append(stats)
            if crit.is_converged(delta):
                converged = True
                break

        width = graph.beliefs.width
        dense = np.zeros((n, width), dtype=np.float32)
        for i in range(n):
            dense[i, : len(beliefs[i])] = beliefs[i]
            graph.beliefs.set(i, beliefs[i].astype(np.float32))

        return RunResult(
            backend=self.name,
            beliefs=dense,
            iterations=iteration,
            converged=converged,
            wall_time=wall,
            modeled_time=wall,  # the reference *is* its own hardware
            delta_history=history,
            stats=run_stats.total,
        )

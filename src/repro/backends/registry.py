"""Backend registry: names → constructors.

Credo's selector (paper §3.7) works in terms of these four names —
``c-node``, ``c-edge``, ``cuda-node``, ``cuda-edge`` — plus the auxiliary
engines used in the preliminary §2.4 study.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.base import Backend
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.backends.distributed import DistributedBackend
from repro.backends.openacc import OpenACCBackend
from repro.backends.openmp import OpenMPBackend
from repro.backends.reference import ReferenceBackend

__all__ = ["BACKENDS", "CORE_BACKENDS", "get_backend", "available_backends"]

BACKENDS: dict[str, Callable[..., Backend]] = {
    "reference": ReferenceBackend,
    "c-node": CNodeBackend,
    "c-edge": CEdgeBackend,
    "cuda-node": CudaNodeBackend,
    "cuda-edge": CudaEdgeBackend,
    "openmp": OpenMPBackend,
    "openacc": OpenACCBackend,
    "distributed": DistributedBackend,
}

#: the four implementations Credo chooses among (§3.7)
CORE_BACKENDS = ("c-node", "c-edge", "cuda-node", "cuda-edge")


def get_backend(name: str, **kwargs) -> Backend:
    """Instantiate a backend by registry name.

    GPU backends accept ``device=`` (a name or
    :class:`~repro.gpusim.arch.DeviceSpec`); ``openmp`` accepts
    ``threads=``; see each class for the full signature.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; known: {sorted(BACKENDS)}") from None
    return factory(**kwargs)


def available_backends() -> list[str]:
    return sorted(BACKENDS)

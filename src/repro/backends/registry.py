"""Backend registry: names → constructors.

Credo's selector (paper §3.7) works in terms of these four names —
``c-node``, ``c-edge``, ``cuda-node``, ``cuda-edge`` — plus the auxiliary
engines used in the preliminary §2.4 study.

Names may carry a schedule qualifier, ``"<backend>:<schedule>"``
(e.g. ``"c-node:residual"``, ``"cuda-edge:relaxed"``): the qualifier
becomes the instance's default scheduling policy, so schedule-qualified
variants drop into any code that holds plain backends.  The schedule set
is :data:`repro.core.scheduler.SCHEDULES`.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.base import Backend
from repro.backends.c_backends import CEdgeBackend, CNodeBackend
from repro.backends.cuda_backends import CudaEdgeBackend, CudaNodeBackend
from repro.backends.distributed import DistributedBackend
from repro.backends.multigpu import MultiGpuBackend
from repro.backends.openacc import OpenACCBackend
from repro.backends.openmp import OpenMPBackend
from repro.backends.reference import ReferenceBackend
from repro.backends.sharded import ShardedCpuBackend
from repro.core.scheduler import SCHEDULES, normalize_schedule

__all__ = [
    "BACKENDS",
    "CORE_BACKENDS",
    "get_backend",
    "available_backends",
    "schedule_variants",
]

BACKENDS: dict[str, Callable[..., Backend]] = {
    "reference": ReferenceBackend,
    "c-node": CNodeBackend,
    "c-edge": CEdgeBackend,
    "cuda-node": CudaNodeBackend,
    "cuda-edge": CudaEdgeBackend,
    "openmp": OpenMPBackend,
    "openacc": OpenACCBackend,
    "distributed": DistributedBackend,
    "sharded": ShardedCpuBackend,
    "cuda-multi": MultiGpuBackend,
}

#: the four implementations Credo chooses among (§3.7)
CORE_BACKENDS = ("c-node", "c-edge", "cuda-node", "cuda-edge")


def get_backend(name: str, **kwargs) -> Backend:
    """Instantiate a backend by registry name.

    ``name`` may be schedule-qualified (``"c-node:residual"``); the
    qualifier sets the instance's ``default_schedule``.  GPU backends
    accept ``device=`` (a name or :class:`~repro.gpusim.arch.DeviceSpec`);
    ``openmp`` accepts ``threads=``; see each class for the full
    signature.
    """
    base_name, _, qualifier = name.partition(":")
    try:
        factory = BACKENDS[base_name]
    except KeyError:
        raise KeyError(
            f"unknown backend {base_name!r}; known: {sorted(BACKENDS)}"
        ) from None
    backend = factory(**kwargs)
    if qualifier:
        backend.default_schedule = normalize_schedule(qualifier)
    return backend


def available_backends() -> list[str]:
    return sorted(BACKENDS)


def schedule_variants(names: tuple[str, ...] = CORE_BACKENDS) -> list[str]:
    """The backend×schedule product as qualified registry names."""
    return [f"{name}:{schedule}" for name in names for schedule in SCHEDULES]

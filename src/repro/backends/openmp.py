"""Simulated OpenMP backend (paper §2.4).

The paper's OpenMP attempt *hurt* performance on 131 of 132 benchmarks:
"There is simply not enough work per thread to justify the overhead of
spinning and shutting down threads", the tail-heavy degree distribution
defeats the static scheduler, the dynamic scheduler's per-chunk dispatch
costs more than it saves, and hyperthreading contends for shared
resources.  The average penalties were ≈1.17× (2 threads), 1.65× (4) and
4.03× (8, i.e. with hyperthreading on the 4-core i7), improving only to
1.1×/1.2× with hyperthreading disabled.

This backend executes the same numerics as the C backends and models the
parallel runtime explicitly from those mechanisms:

* three fork-join parallel regions per iteration (collect, compute/send,
  convergence reduction), each paying a barrier that grows with the
  thread count;
* memory-bound scaling: the streaming kernels are already bandwidth
  limited at one core, so threads add coherence traffic instead of speed;
* a straggler factor from degree skew under static scheduling, or
  per-chunk dispatch overhead under dynamic scheduling;
* a hyperthread resource-sharing penalty when threads exceed physical
  cores.
"""

from __future__ import annotations

from repro.backends.base import Backend, RunResult
from repro.backends.cpu_cost import CpuSpec, I7_7700HQ, cpu_sweep_cost
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP
from repro.core.sweepstats import SweepStats

__all__ = ["OpenMPBackend"]

#: parallel regions per BP iteration (§2.4: collect / compute+send /
#: convergence reduction)
_REGIONS_PER_ITER = 3
#: barrier + team wake cost: base plus per-thread component, seconds
_FORK_BASE = 9e-6
_FORK_PER_THREAD = 2.5e-6
#: coherence / bus contention added per extra thread on memory-bound code
_BUS_CONTENTION_PER_THREAD = 0.05
#: extra interference per thread when hyperthreading is enabled (§2.4:
#: "memory stalls and hyperthreading due to its usage of shared resources")
_HT_INTERFERENCE = 0.065
#: multiplier on memory time once threads exceed physical cores
_HT_STALL_FACTOR = 1.75
#: dynamic scheduler dispatch per work chunk, seconds
_DYNAMIC_DISPATCH = 0.9e-6
_DYNAMIC_CHUNK = 64
#: fraction of a full core each extra hyperthread contributes
_HYPERTHREAD_FACTOR = 0.3


class OpenMPBackend(Backend):
    """Fork-join multicore execution with §2.4's overhead model."""

    name = "openmp"
    platform = "cpu"
    paradigm = "node"

    def __init__(
        self,
        threads: int = 8,
        cpu: CpuSpec = I7_7700HQ,
        *,
        paradigm: str = "node",
        schedule: str = "static",
        hyperthreading: bool = True,
    ):
        if threads < 1:
            raise ValueError("threads must be at least 1")
        if schedule not in ("static", "dynamic"):
            raise ValueError("schedule must be 'static' or 'dynamic'")
        self.threads = threads
        self.cpu = cpu
        self.paradigm = paradigm
        self.schedule = schedule
        self.hyperthreading = hyperthreading

    def supports(self, graph: BeliefGraph) -> bool:
        return graph.uniform

    # ------------------------------------------------------------------
    def _parallel_sweep_time(self, graph: BeliefGraph, sweep: SweepStats) -> float:
        cost = cpu_sweep_cost(
            self.cpu,
            sweep,
            gather_bytes=4.0 * graph.n_states,
            cache_lines_per_access=graph.beliefs.cache_lines_per_access(),
        )
        t = self.threads
        if t == 1:
            return cost.total

        # Compute-bound work scales across cores; hyperthreads contribute
        # only a fraction of a core each.
        compute_scale = float(min(t, self.cpu.physical_cores))
        if t > self.cpu.physical_cores:
            extra = min(t, self.cpu.logical_cores) - self.cpu.physical_cores
            compute_scale += extra * _HYPERTHREAD_FACTOR

        # Memory-bound work does not scale — one core already saturates the
        # stream — and coherence traffic plus shared-resource interference
        # make it *slower* with every added thread (§2.4).
        contention = 1.0 + _BUS_CONTENTION_PER_THREAD * (t - 1)
        if self.hyperthreading:
            contention += _HT_INTERFERENCE * (t - 1)
        if t > self.cpu.physical_cores:
            contention *= _HT_STALL_FACTOR
        memory_time = cost.memory_bound * contention

        # Straggler from the tail-heavy degree distribution (static) or
        # per-chunk dispatch overhead (dynamic; §2.4: "switching to the
        # dynamic scheduler worsened the problem").
        body = cost.cpu_bound / compute_scale + memory_time
        indeg = graph.in_degree()
        avg = float(indeg.mean()) if len(indeg) else 0.0
        peak = float(indeg.max(initial=0))
        skew = min(peak / avg, 32.0) if avg > 0 else 1.0
        if self.schedule == "static":
            body *= 1.0 + 0.04 * (skew - 1.0) * (1.0 - 1.0 / t)
        else:
            n_items = max(sweep.nodes_processed, sweep.edges_processed)
            body += (n_items / _DYNAMIC_CHUNK) * _DYNAMIC_DISPATCH

        fork = _REGIONS_PER_ITER * (_FORK_BASE + _FORK_PER_THREAD * t)
        # atomic combine contention across threads (edge paradigm)
        atomics = sweep.atomic_ops * 6e-9 * (1.0 - 1.0 / t)
        return body + fork + atomics

    # ------------------------------------------------------------------
    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        executor: str | None = None,
    ) -> RunResult:
        """``schedule`` here is the BP scheduling policy; the *OMP loop*
        schedule (static/dynamic) is the constructor's ``schedule``."""
        assert self.paradigm is not None
        config = self._loopy_config(
            self.paradigm, criterion, schedule, update_rule, work_queue, executor
        )
        loopy, wall = self._timed(LoopyBP(config).run, graph)
        modeled = sum(
            self._parallel_sweep_time(graph, sweep)
            for sweep in loopy.run_stats.per_iteration
        )
        return self._result_from_loopy(
            self.name,
            loopy,
            wall,
            modeled,
            threads=self.threads,
            schedule=config.schedule,
            executor=config.executor,
            omp_schedule=self.schedule,
            hyperthreading=self.hyperthreading,
        )

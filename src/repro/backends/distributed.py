"""Simulated distributed-memory (MPI-style) backend (paper §5.1).

The paper positions Credo against cluster BP implementations — Gonzalez
et al.'s MapReduce/pthreads+OpenMPI splash BP and Kang et al.'s HADI-style
MPI engine — noting that "due to network latencies from the frequent
message passing inherent to BP, their solution takes hours to process our
benchmark graphs" while Credo needs seconds.

This backend executes the same numerics and models a classic
bulk-synchronous distributed BP:

* the graph is partitioned over ``ranks`` workers by a *measured*
  :class:`~repro.partition.Partition` (default random hash — the
  paper's related work had to "reprocess the graph into a form amenable
  to this distributed environment"; pick ``partitioner="bfs"`` etc. to
  see what a smarter split buys).  The legacy ``edge_cut_fraction``
  override is deprecated in favour of measured cuts;
* every iteration, each worker sweeps its local subgraph (CPU cost model
  over its share of the work) and then exchanges boundary messages: one
  latency-bound round plus bandwidth for ``cut × message`` bytes
  (mpi4py-style buffered sends);
* a collective all-reduce implements the convergence check
  (log₂(ranks) latency rounds).

The E14 benchmark uses it to regenerate the §5.1 comparison table.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from repro.backends.base import Backend, RunResult
from repro.backends.cpu_cost import CpuSpec, I7_7700HQ, cpu_sweep_time
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP
from repro.partition import Partition, make_partition

__all__ = [
    "ClusterSpec",
    "DistributedBackend",
    "ETHERNET_1G",
    "INFINIBAND",
    "MAPREDUCE",
]


@dataclass(frozen=True)
class ClusterSpec:
    """Interconnect and node parameters of the simulated cluster."""

    name: str
    ranks: int
    #: per-message one-way latency, seconds (the killer for BP, §5.1)
    latency: float
    #: interconnect bandwidth per link, bytes/second
    bandwidth: float
    #: fixed framework cost per superstep, seconds — MapReduce pays whole
    #: job launches per BP iteration, MPI pays barrier/bookkeeping only
    per_iteration_overhead: float = 0.0
    cpu: CpuSpec = I7_7700HQ

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ValueError("ranks must be >= 1")
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("bad interconnect parameters")
        if self.per_iteration_overhead < 0:
            raise ValueError("per_iteration_overhead must be non-negative")


#: a 2011-era commodity MPI cluster (the Kang et al. setting)
ETHERNET_1G = ClusterSpec(
    "1GbE MPI cluster", ranks=40, latency=80e-6, bandwidth=125e6,
    per_iteration_overhead=5e-3,
)
#: a tuned HPC fabric (the Gonzalez et al. 40-server setting)
INFINIBAND = ClusterSpec(
    "InfiniBand cluster", ranks=40, latency=4e-6, bandwidth=3e9,
    per_iteration_overhead=0.5e-3,
)
#: Hadoop-era MapReduce: each BP superstep is a job submission
#: (scheduling, task placement, HDFS round trips) — the Gonzalez et al.
#: MapReduce splash-BP setting
MAPREDUCE = ClusterSpec(
    "MapReduce cluster", ranks=40, latency=500e-6, bandwidth=125e6,
    per_iteration_overhead=2.0,
)


class DistributedBackend(Backend):
    """Bulk-synchronous distributed loopy BP with modeled communication."""

    name = "distributed"
    platform = "cpu"
    paradigm = "node"

    def __init__(
        self,
        cluster: ClusterSpec = ETHERNET_1G,
        *,
        paradigm: str = "node",
        partitioner: str = "hash",
        edge_cut_fraction: float | None = None,
        messages_per_round: int | None = None,
        seed: int = 0,
    ):
        if edge_cut_fraction is not None:
            warnings.warn(
                "edge_cut_fraction is deprecated: DistributedBackend now "
                "measures the cut of a real partition; pass partitioner="
                "'bfs'/'greedy'/... instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.cluster = cluster
        self.paradigm = paradigm
        self.partitioner = partitioner
        self.edge_cut_fraction = edge_cut_fraction
        self.messages_per_round = messages_per_round
        self.seed = seed

    def supports(self, graph: BeliefGraph) -> bool:
        return graph.uniform

    def _cut_fraction(self, partition: Partition | None = None) -> float:
        """Fraction of edges crossing partitions.

        With a measured :class:`~repro.partition.Partition` in hand this
        is its actual cut; the no-argument form keeps the analytic
        expectation for random hash partitioning, ``1 − 1/ranks`` —
        which is why the related work had to reprocess their graphs.
        """
        if self.edge_cut_fraction is not None:
            return self.edge_cut_fraction
        if partition is not None:
            return partition.cut_fraction
        return 1.0 - 1.0 / self.cluster.ranks

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        executor: str | None = None,
        partition: Partition | None = None,
    ) -> RunResult:
        config = self._loopy_config(
            self.paradigm, criterion, schedule, update_rule, work_queue, executor
        )
        loopy, wall = self._timed(LoopyBP(config).run, graph)

        cluster = self.cluster
        b = graph.n_states
        if partition is None and self.edge_cut_fraction is None and graph.n_nodes:
            partition = make_partition(
                graph,
                min(cluster.ranks, graph.n_nodes),
                self.partitioner,
                seed=self.seed,
            )
        cut = self._cut_fraction(partition)
        # stragglers put the barrier above the mean rank's sweep: use the
        # partition's measured edge-load imbalance, falling back to the
        # old ~1.3x degree-tail rule of thumb when nothing was measured
        straggler = max(partition.balance, 1.0) if partition is not None else 1.3
        gather_bytes = 4.0 * b
        modeled = 0.0
        for sweep in loopy.run_stats.per_iteration:
            # compute: the sweep's work splits across ranks up to the
            # straggler factor
            local = cpu_sweep_time(cluster.cpu, sweep, gather_bytes=gather_bytes)
            compute = straggler * local / cluster.ranks
            # communication: boundary messages this iteration
            boundary_msgs = sweep.edges_processed * cut
            msg_bytes = boundary_msgs * (b * 4 + 16)
            rounds = self.messages_per_round or max(
                1, int(boundary_msgs / max(cluster.ranks**2, 1))
            )
            comm = (
                rounds * cluster.latency
                + msg_bytes / (cluster.bandwidth * cluster.ranks)
            )
            # convergence all-reduce: log2(ranks) latency steps
            allreduce = math.ceil(math.log2(max(cluster.ranks, 2))) * cluster.latency
            modeled += max(compute, comm) + allreduce + cluster.per_iteration_overhead

        return self._result_from_loopy(
            self.name,
            loopy,
            wall,
            modeled,
            cluster=cluster.name,
            ranks=cluster.ranks,
            edge_cut_fraction=cut,
            measured_partition=partition is not None,
            partitioner=partition.method if partition is not None else self.partitioner,
            shard_balance=partition.balance if partition is not None else None,
            schedule=config.schedule,
        )

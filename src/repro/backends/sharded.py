"""Shard-parallel CPU backend over a measured partition (DESIGN.md §9).

Runs :class:`~repro.core.sharded.ShardedLoopyBP` on a thread pool — one
worker per shard — and models the wall clock of a bulk-synchronous
multi-core execution: per round, the *slowest* shard's sweep time (the
measured straggler, not an assumed 1.3×) plus the boundary exchange
through shared memory and a barrier.

This is the execution engine behind ``credo run --shards N`` and the
serving layer's shard-parallel path; real wall-clock speedup comes from
the BLAS matmuls inside the kernels releasing the GIL.
"""

from __future__ import annotations

import math

from repro.backends.base import Backend, RunResult
from repro.backends.cpu_cost import CpuSpec, I7_7700HQ, cpu_sweep_time
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.sharded import ShardedGraph, ShardedLoopyBP
from repro.partition import Partition, make_partition

__all__ = ["ShardedCpuBackend"]

#: modeled cost of one pthread-barrier round per participating shard level
_BARRIER_SECONDS = 2e-6


class ShardedCpuBackend(Backend):
    """Partition → per-shard schedules → thread-pool sweeps, on one host."""

    name = "sharded"
    platform = "cpu"

    def __init__(
        self,
        *,
        n_shards: int = 4,
        partitioner: str = "bfs",
        paradigm: str = "node",
        cpu: CpuSpec = I7_7700HQ,
        max_workers: int | None = None,
        seed: int = 0,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = n_shards
        self.partitioner = partitioner
        self.paradigm = paradigm
        self.cpu = cpu
        self.max_workers = max_workers
        self.seed = seed

    def supports(self, graph: BeliefGraph) -> bool:
        return graph.uniform

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        partition: Partition | None = None,
    ) -> RunResult:
        config = self._loopy_config(
            self.paradigm, criterion, schedule, update_rule, work_queue
        )
        if partition is None:
            partition = make_partition(
                graph, min(self.n_shards, max(graph.n_nodes, 1)),
                self.partitioner, seed=self.seed,
            )
        sharded = ShardedGraph.build(graph, partition)
        workers = self.max_workers or sharded.n_shards
        driver = ShardedLoopyBP(config, max_workers=workers if workers > 1 else None)
        result, wall = self._timed(driver.run, sharded)

        # modeled bulk-synchronous wall clock: straggler sweep + shared-
        # memory exchange (streamed through the cache hierarchy) + barrier
        profile = sharded.exchange_profile()
        gather_bytes = 4.0 * graph.n_states
        exchange = profile["bytes_per_round"] / self.cpu.stream_bandwidth
        barrier = _BARRIER_SECONDS * max(
            1, int(math.ceil(math.log2(max(sharded.n_shards, 2))))
        )
        modeled = 0.0
        for shard_stats in result.per_shard_stats:
            slowest = max(
                (
                    cpu_sweep_time(self.cpu, s, gather_bytes=gather_bytes)
                    for s in shard_stats
                ),
                default=0.0,
            )
            modeled += slowest + exchange + barrier

        return self._result_from_loopy(
            self.name,
            result,
            wall,
            modeled,
            schedule=config.schedule,
            partitioner=partition.method,
            n_shards=sharded.n_shards,
            cut_fraction=partition.cut_fraction,
            shard_balance=partition.balance,
            exchange_bytes=result.exchange_bytes,
            workers=workers,
        )

"""Shard-parallel CPU backend over a measured partition (DESIGN.md §9).

Runs :class:`~repro.core.sharded.ShardedLoopyBP` on a thread pool — one
worker per shard — and models the wall clock of a bulk-synchronous
multi-core execution: per round, the *slowest* shard's sweep time (the
measured straggler, not an assumed 1.3×) plus the boundary exchange
through shared memory and a barrier.

This is the execution engine behind ``credo run --shards N`` and the
serving layer's shard-parallel path; real wall-clock speedup comes from
the BLAS matmuls inside the kernels releasing the GIL.

With ``policy="async"`` the modeled clock switches from bulk-synchronous
rounds to stale-synchronous ticks: there is no barrier term, each worker
lane accumulates its own busy time (work stealing keeps lanes loaded),
and the wall clock is the busiest lane — or the exchange stream, if the
halo traffic is the bottleneck.  Both modes report the time shards spent
waiting at (implicit or explicit) barriers as ``barrier_idle_s`` in the
result detail and in the process-wide metrics registry, so ``credo
profile`` can show the idle collapsing when the barrier goes away.
"""

from __future__ import annotations

import math

from repro.backends.base import Backend, RunResult
from repro.backends.cpu_cost import CpuSpec, I7_7700HQ, cpu_sweep_time
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.sharded import ShardedGraph, ShardedLoopyBP
from repro.partition import Partition, make_partition
from repro.telemetry import get_metrics

__all__ = ["ShardedCpuBackend"]

#: modeled cost of one pthread-barrier round per participating shard level
_BARRIER_SECONDS = 2e-6


class ShardedCpuBackend(Backend):
    """Partition → per-shard schedules → thread-pool sweeps, on one host."""

    name = "sharded"
    platform = "cpu"

    def __init__(
        self,
        *,
        n_shards: int = 4,
        partitioner: str = "bfs",
        paradigm: str = "node",
        cpu: CpuSpec = I7_7700HQ,
        max_workers: int | None = None,
        seed: int = 0,
        policy: str = "sync",
        staleness: int = 0,
        steal_factor: int = 8,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = n_shards
        self.partitioner = partitioner
        self.paradigm = paradigm
        self.cpu = cpu
        self.max_workers = max_workers
        self.seed = seed
        self.policy = policy
        self.staleness = staleness
        self.steal_factor = steal_factor

    def supports(self, graph: BeliefGraph) -> bool:
        return graph.uniform

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        executor: str | None = None,
        partition: Partition | None = None,
    ) -> RunResult:
        config = self._loopy_config(
            self.paradigm, criterion, schedule, update_rule, work_queue, executor
        )
        if partition is None:
            partition = make_partition(
                graph, min(self.n_shards, max(graph.n_nodes, 1)),
                self.partitioner, seed=self.seed,
            )
        sharded = ShardedGraph.build(graph, partition)
        workers = self.max_workers or sharded.n_shards
        driver = ShardedLoopyBP(
            config,
            max_workers=workers if workers > 1 else None,
            policy=self.policy,
            staleness=self.staleness,
            steal_factor=self.steal_factor,
        )
        result, wall = self._timed(driver.run, sharded)

        gather_bytes = 4.0 * graph.n_states
        if result.policy == "async":
            modeled, barrier_idle = self._model_async(result, workers, gather_bytes)
        else:
            modeled, barrier_idle = self._model_sync(sharded, result, gather_bytes)

        get_metrics().histogram("sharded.barrier_idle_s").record(barrier_idle)
        return self._result_from_loopy(
            self.name,
            result,
            wall,
            modeled,
            schedule=config.schedule,
            executor=config.executor,
            partitioner=partition.method,
            n_shards=sharded.n_shards,
            cut_fraction=partition.cut_fraction,
            shard_balance=partition.balance,
            exchange_bytes=result.exchange_bytes,
            workers=workers,
            policy=result.policy,
            staleness=result.staleness,
            stolen_items=result.stolen_items,
            barrier_idle_s=barrier_idle,
        )

    # ------------------------------------------------------------------
    def _model_sync(self, sharded, result, gather_bytes):
        """Bulk-synchronous wall clock: per round, the straggler's sweep +
        shared-memory exchange + barrier.  Barrier idle is everyone else's
        wait for the straggler, summed over rounds."""
        profile = sharded.exchange_profile()
        exchange = profile["bytes_per_round"] / self.cpu.stream_bandwidth
        barrier = _BARRIER_SECONDS * max(
            1, int(math.ceil(math.log2(max(sharded.n_shards, 2))))
        )
        modeled = 0.0
        barrier_idle = 0.0
        for shard_stats in result.per_shard_stats:
            times = [
                cpu_sweep_time(self.cpu, s, gather_bytes=gather_bytes)
                for s in shard_stats
            ]
            slowest = max(times, default=0.0)
            modeled += slowest + exchange + barrier
            barrier_idle += sum(slowest - t for t in times)
        return modeled, barrier_idle

    def _model_async(self, result, workers, gather_bytes):
        """Stale-synchronous wall clock: no barrier.  Worker lanes drain
        the region queue back-to-back across ticks, so each lane's busy
        time just accumulates; the wall clock is the busiest lane unless
        the halo stream is the bottleneck.  With k=0 the exchange itself
        is a synchronization point, so ticks serialize on the straggler —
        but the pthread barrier is still gone."""
        lane_busy = [0.0] * max(workers, 1)
        serialized = 0.0
        for tick in result.ticks:
            times = [
                cpu_sweep_time(self.cpu, s, gather_bytes=gather_bytes)
                for s in tick.worker_stats
            ]
            for lane, t in enumerate(times):
                lane_busy[lane % len(lane_busy)] += t
            serialized += max(times, default=0.0)
        exchange = result.exchange_bytes / self.cpu.stream_bandwidth
        if result.staleness > 0:
            busiest = max(lane_busy, default=0.0)
            modeled = max(busiest, exchange)
            barrier_idle = sum(busiest - t for t in lane_busy)
        else:
            modeled = serialized + exchange
            barrier_idle = sum(
                serialized - busy for busy in lane_busy if busy < serialized
            )
        return modeled, barrier_idle

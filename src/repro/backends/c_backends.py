"""The optimized single-threaded "C" backends (paper §3.3–§3.5).

These are the paper's control implementations: fully optimized
single-threaded engines for the Node and Edge processing paradigms, with
the AoS data layout, compressed adjacency indices and optional work
queues.  In this reproduction the vectorized NumPy kernels play the role
of compiled C; the wall clock measures them directly and the
:mod:`repro.backends.cpu_cost` model provides the deterministic modeled
time used for figure reproduction.
"""

from __future__ import annotations

from repro.backends.base import Backend, RunResult
from repro.backends.cpu_cost import CpuSpec, I7_7700HQ, cpu_sweep_time
from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyBP

__all__ = ["CNodeBackend", "CEdgeBackend"]


class _CBackend(Backend):
    platform = "cpu"

    def __init__(self, cpu: CpuSpec = I7_7700HQ):
        self.cpu = cpu

    def supports(self, graph: BeliefGraph) -> bool:
        return graph.uniform

    def run(
        self,
        graph: BeliefGraph,
        *,
        criterion: ConvergenceCriterion | None = None,
        schedule: str | None = None,
        work_queue: bool | None = None,
        update_rule: str = "sum_product",
        executor: str | None = None,
    ) -> RunResult:
        assert self.paradigm is not None
        config = self._loopy_config(
            self.paradigm, criterion, schedule, update_rule, work_queue, executor
        )
        loopy, wall = self._timed(LoopyBP(config).run, graph)
        gather_bytes = 4.0 * graph.n_states
        lines = graph.beliefs.cache_lines_per_access()
        modeled = sum(
            cpu_sweep_time(
                self.cpu,
                sweep,
                gather_bytes=gather_bytes,
                cache_lines_per_access=lines,
            )
            for sweep in loopy.run_stats.per_iteration
        )
        return self._result_from_loopy(
            self.name,
            loopy,
            wall,
            modeled,
            cpu=self.cpu.name,
            layout=graph.layout,
            schedule=config.schedule,
            executor=config.executor,
        )


class CNodeBackend(_CBackend):
    """Single-threaded per-node processing ("C Node")."""

    name = "c-node"
    paradigm = "node"


class CEdgeBackend(_CBackend):
    """Single-threaded per-edge processing ("C Edge") — the paper's
    control in the Credo-vs-always-C-Edge experiment (Fig. 11)."""

    name = "c-edge"
    paradigm = "edge"

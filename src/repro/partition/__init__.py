"""Graph partitioning: node → shard maps with measured cut/balance stats.

The partition layer (DESIGN.md §9) turns the distributed/sharded story
from *assumed* quantities (the old ``edge_cut_fraction`` knob) into
*measured* ones: every partitioner returns a
:class:`~repro.partition.partitioners.Partition` whose cut fraction and
shard balance are computed on the actual graph, and every consumer —
``ShardedLoopyBP``, the distributed cost model, the multi-GPU simulator,
Credo's selector and the serving layer — reads those numbers instead of
guessing.
"""

from repro.partition.overpartition import (
    OverPartition,
    measure_partition,
    overpartition,
)
from repro.partition.partitioners import (
    PARTITIONERS,
    Partition,
    bfs_partition,
    extend_partition,
    greedy_partition,
    hash_partition,
    make_partition,
    normalize_partitioner,
    range_partition,
)

__all__ = [
    "PARTITIONERS",
    "OverPartition",
    "Partition",
    "bfs_partition",
    "extend_partition",
    "greedy_partition",
    "hash_partition",
    "make_partition",
    "measure_partition",
    "normalize_partitioner",
    "overpartition",
    "range_partition",
]

"""Graph partitioners producing *measured* shard assignments.

The distributed comparison of §5.1 (Gonzalez et al.'s cluster BP) and
the sharded executors (DESIGN.md §9) need a node → shard map whose cut
size and balance are **measured on the actual graph**, not assumed.  A
:class:`Partition` therefore carries the assignment plus the derived
statistics every cost model downstream consumes:

``cut_fraction``
    Fraction of directed edges whose endpoints land on different shards
    — each such edge forces one boundary message per exchange round.

``balance``
    Max shard edge load over the ideal (total / n_shards) — the measured
    straggler factor of a bulk-synchronous round (the slowest shard sets
    the pace).

Four partitioners cover the quality/cost ladder:

``hash``
    Multiplicative-hash pseudo-random assignment — O(n), no structure
    used; the baseline whose expected cut is ``1 − 1/k`` (the analytic
    default the old ``edge_cut_fraction`` knob assumed).

``range``
    Contiguous id blocks — O(n); exploits locality only when node ids
    are already laid out meaningfully (grids, BFS-ordered inputs).

``bfs``
    Region growing: BFS from a seed fills shard 0 to its node quota,
    then continues into shard 1, … — a cheap edge-cut heuristic that
    keeps connected regions together (low cut on meshes and communities).

``greedy``
    Degree-aware linear greedy balance (LDG-style streaming placement):
    nodes in decreasing-degree order go to the shard holding most of
    their already-placed neighbours, discounted by shard fullness —
    trades a little cut for tight *edge* balance on skewed graphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - repro.core imports this package
    from repro.core.graph import BeliefGraph

__all__ = [
    "PARTITIONERS",
    "Partition",
    "bfs_partition",
    "extend_partition",
    "greedy_partition",
    "hash_partition",
    "make_partition",
    "normalize_partitioner",
    "range_partition",
]

#: canonical partitioner names, in cost order
PARTITIONERS = ("hash", "range", "bfs", "greedy")

_ALIASES = {
    "random": "hash",
    "block": "range",
    "contiguous": "range",
    "region": "bfs",
    "ldg": "greedy",
    "balanced": "greedy",
}


def normalize_partitioner(name: str) -> str:
    """Canonical partitioner name, accepting common aliases."""
    canonical = _ALIASES.get(name, name)
    if canonical not in PARTITIONERS:
        raise ValueError(f"unknown partitioner {name!r}; known: {list(PARTITIONERS)}")
    return canonical


@dataclass(frozen=True, eq=False)
class Partition:
    """A node → shard assignment plus its measured statistics."""

    assignment: np.ndarray
    n_shards: int
    method: str
    #: directed edges whose src and dst shards differ
    cut_edges: int
    n_edges: int
    #: nodes owned per shard
    shard_nodes: np.ndarray = field(repr=False)
    #: directed edges owned (by destination) per shard
    shard_edges: np.ndarray = field(repr=False)

    @property
    def cut_fraction(self) -> float:
        """Measured fraction of directed edges crossing shards."""
        return self.cut_edges / self.n_edges if self.n_edges else 0.0

    @property
    def balance(self) -> float:
        """Max shard edge load over the ideal load (≥ 1.0): the measured
        straggler factor of one bulk-synchronous sweep round."""
        if self.n_edges == 0:
            return 1.0
        ideal = self.n_edges / self.n_shards
        return float(self.shard_edges.max()) / ideal

    @property
    def node_balance(self) -> float:
        """Max shard node count over the ideal (≥ 1.0)."""
        total = int(self.shard_nodes.sum())
        if total == 0:
            return 1.0
        return float(self.shard_nodes.max()) / (total / self.n_shards)

    def nodes_of(self, shard: int) -> np.ndarray:
        """Global ids of the nodes assigned to ``shard`` (ascending)."""
        return np.flatnonzero(self.assignment == shard).astype(np.int64)

    def stats(self) -> dict:
        """The measured numbers the cost models and Credo features read."""
        return {
            "method": self.method,
            "n_shards": float(self.n_shards),
            "cut_edges": float(self.cut_edges),
            "cut_fraction": self.cut_fraction,
            "balance": self.balance,
            "node_balance": self.node_balance,
        }

    def __repr__(self) -> str:
        return (
            f"Partition(method={self.method!r}, n_shards={self.n_shards}, "
            f"cut={self.cut_fraction:.3f}, balance={self.balance:.2f})"
        )


# ---------------------------------------------------------------------------
# assignment strategies (each returns an (n,) int64 shard id array)
# ---------------------------------------------------------------------------

def _hash_assign(graph: BeliefGraph, n_shards: int, seed: int) -> np.ndarray:
    # Knuth multiplicative hash over node ids: deterministic, structure-blind
    ids = np.arange(graph.n_nodes, dtype=np.uint64)
    mixed = (ids + np.uint64(seed)) * np.uint64(0x9E3779B97F4A7C15)
    mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(n_shards)).astype(np.int64)


def _range_assign(graph: BeliefGraph, n_shards: int, seed: int) -> np.ndarray:
    n = graph.n_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    return np.minimum(ids * n_shards // n, n_shards - 1)


def _bfs_assign(graph: BeliefGraph, n_shards: int, seed: int) -> np.ndarray:
    n = graph.n_nodes
    quota = -(-n // n_shards)  # ceil
    order: list[int] = []
    visited = np.zeros(n, dtype=bool)
    # Deterministic region growth: restart from the lowest unvisited id so
    # disconnected components queue up back-to-back instead of fragmenting.
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        frontier: deque[int] = deque([start])
        while frontier:
            v = frontier.popleft()
            order.append(v)
            for u in graph.children(v):
                if not visited[u]:
                    visited[u] = True
                    frontier.append(int(u))
            for u in graph.parents(v):
                if not visited[u]:
                    visited[u] = True
                    frontier.append(int(u))
    assignment = np.empty(n, dtype=np.int64)
    ranks = np.arange(n, dtype=np.int64) // quota
    assignment[np.asarray(order, dtype=np.int64)] = np.minimum(ranks, n_shards - 1)
    return assignment


def _greedy_assign(graph: BeliefGraph, n_shards: int, seed: int) -> np.ndarray:
    n = graph.n_nodes
    degree = graph.in_degree() + graph.out_degree()
    # decreasing-degree order: place hubs first, while every shard is open
    order = np.argsort(-degree, kind="stable")
    capacity = max(float(degree.sum()) / n_shards, 1.0) * 1.05 + 1.0
    load = np.zeros(n_shards)
    assignment = np.full(n, -1, dtype=np.int64)
    for v in order:
        neigh = assignment[np.concatenate((graph.parents(v), graph.children(v)))]
        placed = neigh[neigh >= 0]
        affinity = np.bincount(placed, minlength=n_shards).astype(float)
        # LDG objective: neighbours already present, discounted by fullness
        score = (1.0 + affinity) * np.maximum(1.0 - load / capacity, 0.0)
        best = int(np.argmax(score - 1e-9 * load))  # tie-break: least loaded
        assignment[v] = best
        load[best] += float(degree[v]) + 1.0
    return assignment


_STRATEGIES = {
    "hash": _hash_assign,
    "range": _range_assign,
    "bfs": _bfs_assign,
    "greedy": _greedy_assign,
}


# ---------------------------------------------------------------------------
def _measure(
    graph: BeliefGraph, assignment: np.ndarray, n_shards: int, method: str
) -> Partition:
    cut = (
        int(np.count_nonzero(assignment[graph.src] != assignment[graph.dst]))
        if graph.n_edges
        else 0
    )
    shard_nodes = np.bincount(assignment, minlength=n_shards).astype(np.int64)
    shard_edges = (
        np.bincount(assignment[graph.dst], minlength=n_shards).astype(np.int64)
        if graph.n_edges
        else np.zeros(n_shards, dtype=np.int64)
    )
    return Partition(
        assignment=assignment,
        n_shards=n_shards,
        method=method,
        cut_edges=cut,
        n_edges=graph.n_edges,
        shard_nodes=shard_nodes,
        shard_edges=shard_edges,
    )


def make_partition(
    graph: BeliefGraph,
    n_shards: int,
    method: str = "bfs",
    *,
    seed: int = 0,
) -> Partition:
    """Partition ``graph`` into ``n_shards`` and measure the result.

    Shards may come out empty on tiny graphs (7 shards over 5 nodes);
    the sharded executors simply skip them.  Deterministic for a given
    ``(graph, n_shards, method, seed)``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    canonical = normalize_partitioner(method)
    if n_shards == 1 or graph.n_nodes == 0:
        assignment = np.zeros(graph.n_nodes, dtype=np.int64)
    else:
        assignment = _STRATEGIES[canonical](graph, n_shards, seed)
    return _measure(graph, assignment, n_shards, canonical)


def extend_partition(partition: Partition, graph: BeliefGraph) -> Partition:
    """Re-measure ``partition`` on a mutated ``graph``, placing new nodes.

    The incremental-repartition path (DESIGN.md §15): existing
    assignments are preserved verbatim — a small delta must not reshuffle
    the shards the serving layer has generation keys for — while nodes
    beyond the old assignment's length are placed greedily by neighbour
    affinity (the LDG objective of :func:`greedy_partition`, least-loaded
    tie-break).  Cut and balance statistics are recomputed on the new
    structure, so downstream consumers keep reading measured numbers.
    """
    old = np.asarray(partition.assignment, dtype=np.int64)
    n_old, n_new = len(old), graph.n_nodes
    if n_new < n_old:
        raise ValueError("graphs never shrink; detach nodes instead of dropping them")
    n_shards = partition.n_shards
    assignment = np.full(n_new, -1, dtype=np.int64)
    assignment[:n_old] = old
    if n_new > n_old:
        load = np.bincount(old, minlength=n_shards).astype(float)
        for v in range(n_old, n_new):
            neigh = assignment[
                np.concatenate((graph.parents(v), graph.children(v)))
            ]
            placed = neigh[neigh >= 0]
            affinity = np.bincount(placed, minlength=n_shards).astype(float)
            best = int(np.argmax(affinity - 1e-9 * load))  # tie-break: least loaded
            assignment[v] = best
            load[best] += 1.0
    return _measure(graph, assignment, n_shards, partition.method)


def hash_partition(graph: BeliefGraph, n_shards: int, *, seed: int = 0) -> Partition:
    """Multiplicative-hash pseudo-random assignment (the analytic baseline)."""
    return make_partition(graph, n_shards, "hash", seed=seed)


def range_partition(graph: BeliefGraph, n_shards: int, *, seed: int = 0) -> Partition:
    """Contiguous node-id blocks."""
    return make_partition(graph, n_shards, "range", seed=seed)


def bfs_partition(graph: BeliefGraph, n_shards: int, *, seed: int = 0) -> Partition:
    """BFS region growing with per-shard node quotas (edge-cut heuristic)."""
    return make_partition(graph, n_shards, "bfs", seed=seed)


def greedy_partition(graph: BeliefGraph, n_shards: int, *, seed: int = 0) -> Partition:
    """Degree-aware greedy balance (LDG-style streaming placement)."""
    return make_partition(graph, n_shards, "greedy", seed=seed)

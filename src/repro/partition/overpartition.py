"""Over-partitioning: shards × factor stealable regions (DESIGN.md §12).

The async shard policy steals *regions*, not whole shards: each shard's
owned nodes are banded into ``factor`` contiguous local-id ranges, giving
``n_shards × factor`` units an idle worker can pick up from a straggler
without touching ownership or the halo routes.  The banding rule here is
the same one :class:`~repro.core.shard_policies.AsyncShardPolicy` applies
at run time — ``region = min(local_rank * factor // n_owned, factor-1)``
over the shard's ascending owned ids — so the measured region stats
(edge load per region, worst/ideal imbalance) predict exactly the units
the work-stealing scheduler moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.partition.partitioners import Partition, _measure

if TYPE_CHECKING:  # pragma: no cover - repro.core imports this package
    from repro.core.graph import BeliefGraph

__all__ = ["OverPartition", "measure_partition", "overpartition"]


def measure_partition(
    graph: BeliefGraph, assignment: np.ndarray, *, method: str = "custom"
) -> Partition:
    """Measure an externally supplied node → shard assignment.

    The skew benchmarks and tests build deliberate (unbalanced)
    assignments by hand; this wraps them in a :class:`Partition` with the
    same measured cut/balance statistics the partitioners produce.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_nodes,):
        raise ValueError(
            f"assignment must have shape ({graph.n_nodes},), "
            f"got {assignment.shape}"
        )
    if assignment.size and assignment.min() < 0:
        raise ValueError("assignment contains negative shard ids")
    n_shards = int(assignment.max()) + 1 if assignment.size else 1
    return _measure(graph, assignment, n_shards, method)


@dataclass(frozen=True, eq=False)
class OverPartition:
    """A base partition refined into ``n_shards × factor`` regions."""

    base: Partition
    factor: int
    #: node → global region id (``shard * factor + local_region``)
    region_assignment: np.ndarray = field(repr=False)
    #: nodes per global region
    region_nodes: np.ndarray = field(repr=False)
    #: directed edges owned (by destination) per global region
    region_edges: np.ndarray = field(repr=False)

    @property
    def n_regions(self) -> int:
        return self.base.n_shards * self.factor

    @property
    def region_balance(self) -> float:
        """Max region edge load over the ideal — the granularity limit on
        what work stealing can level out (1.0 = perfectly stealable)."""
        total = int(self.region_edges.sum())
        if total == 0:
            return 1.0
        occupied = max(int(np.count_nonzero(self.region_edges)), 1)
        return float(self.region_edges.max()) * occupied / total

    def regions_of(self, shard: int) -> range:
        """Global region ids carved out of ``shard``."""
        return range(shard * self.factor, (shard + 1) * self.factor)

    def stats(self) -> dict:
        """Measured numbers for the cost models and Credo features."""
        out = self.base.stats()
        out.update(
            factor=float(self.factor),
            n_regions=float(self.n_regions),
            region_balance=self.region_balance,
        )
        return out

    def __repr__(self) -> str:
        return (
            f"OverPartition(method={self.base.method!r}, "
            f"n_shards={self.base.n_shards}, factor={self.factor}, "
            f"region_balance={self.region_balance:.2f})"
        )


def overpartition(
    graph: BeliefGraph, partition: Partition, factor: int
) -> OverPartition:
    """Band each shard of ``partition`` into ``factor`` contiguous regions.

    Deterministic, and intentionally identical to the async policy's
    run-time banding: regions split each shard's ascending owned-node
    list into ``factor`` near-equal ranges.
    """
    if factor < 1:
        raise ValueError("factor must be at least 1")
    region = np.zeros(graph.n_nodes, dtype=np.int64)
    for shard in range(partition.n_shards):
        owned = partition.nodes_of(shard)
        if owned.size == 0:
            continue
        ranks = np.arange(owned.size, dtype=np.int64)
        local = np.minimum(ranks * factor // owned.size, factor - 1)
        region[owned] = shard * factor + local
    n_regions = partition.n_shards * factor
    region_nodes = np.bincount(region, minlength=n_regions).astype(np.int64)
    region_edges = (
        np.bincount(region[graph.dst], minlength=n_regions).astype(np.int64)
        if graph.n_edges
        else np.zeros(n_regions, dtype=np.int64)
    )
    return OverPartition(
        base=partition,
        factor=factor,
        region_assignment=region,
        region_nodes=region_nodes,
        region_edges=region_edges,
    )

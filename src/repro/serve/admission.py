"""Admission control: bounded queue, deadlines, backpressure.

A production BP service cannot let an unbounded backlog build behind a
slow graph — the paper's target ("serving heavy traffic") implies load
shedding.  The admission queue is strictly bounded: when full, submits
fail *immediately* with :class:`AdmissionRejected` carrying a
``retry_after`` hint derived from the observed service rate, so clients
back off instead of piling on.  Each ticket carries a deadline; tickets
whose deadline passed while queued are answered with a timeout instead
of being run (late answers are wasted work).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["AdmissionRejected", "DeadlineExpired", "Ticket", "AdmissionQueue"]


class AdmissionRejected(RuntimeError):
    """The queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, retry_after: float):
        super().__init__(
            f"admission queue full ({depth} waiting); retry after "
            f"{retry_after:.3f}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class DeadlineExpired(RuntimeError):
    """The request's deadline passed before it could be served."""


@dataclass
class Ticket:
    """One admitted request waiting for (or undergoing) execution."""

    request: Any
    model: str
    enqueued_at: float
    deadline: float | None = None
    future: "_Future" = field(default_factory=lambda: _Future())

    def expired(self, now: float | None = None) -> bool:
        return self.deadline is not None and (now or time.monotonic()) > self.deadline


class _Future:
    """Minimal thread-safe future (concurrent.futures-free, no executor)."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None

    def set_result(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("result not ready")
        if self._error is not None:
            raise self._error
        return self._value


class AdmissionQueue:
    """Bounded FIFO with model-affinity batch popping.

    ``submit`` never blocks: it admits or rejects.  The worker side pops
    a *batch* — the head ticket plus up to ``max_batch - 1`` more tickets
    for the same model, lingering up to ``window_s`` for stragglers —
    which is what makes micro-batching effective under bursty load.
    """

    def __init__(self, capacity: int, *, clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._clock = clock
        self._tickets: deque[Ticket] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # service-rate estimate for the retry-after hint
        self._ewma_service_s = 0.01

    # -- producer side -------------------------------------------------
    def submit(self, request: Any, model: str, deadline_s: float | None = None) -> Ticket:
        """Admit ``request`` or raise :class:`AdmissionRejected`."""
        now = self._clock()
        with self._not_empty:
            if self._closed:
                raise RuntimeError("admission queue is closed")
            depth = len(self._tickets)
            if depth >= self.capacity:
                retry_after = max(self._ewma_service_s * depth, 1e-3)
                raise AdmissionRejected(depth, retry_after)
            ticket = Ticket(
                request=request,
                model=model,
                enqueued_at=now,
                deadline=None if deadline_s is None else now + deadline_s,
            )
            self._tickets.append(ticket)
            self._not_empty.notify()
            return ticket

    # -- consumer side -------------------------------------------------
    def pop_batch(
        self,
        max_batch: int,
        window_s: float = 0.0,
        timeout: float | None = None,
    ) -> list[Ticket]:
        """Pop the next model-affine batch (possibly empty on timeout).

        Blocks until at least one ticket is available (or ``timeout``),
        then gathers same-model tickets, waiting up to ``window_s`` for
        more while the batch is not full.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._not_empty:
            while not self._tickets:
                if self._closed:
                    return []
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return []
                self._not_empty.wait(remaining)
            head = self._tickets.popleft()
            batch = [head]
            window_end = self._clock() + window_s
            while len(batch) < max_batch:
                self._gather_same_model(batch, head.model, max_batch)
                if len(batch) >= max_batch:
                    break
                remaining = window_end - self._clock()
                if remaining <= 0 or self._closed:
                    break
                self._not_empty.wait(remaining)
            self._gather_same_model(batch, head.model, max_batch)
            return batch

    def _gather_same_model(self, batch: list[Ticket], model: str, max_batch: int) -> None:
        """Move queued tickets of ``model`` into ``batch`` (caller holds lock)."""
        if len(batch) >= max_batch:
            return
        kept: deque[Ticket] = deque()
        while self._tickets and len(batch) < max_batch:
            ticket = self._tickets.popleft()
            if ticket.model == model:
                batch.append(ticket)
            else:
                kept.append(ticket)
        while self._tickets:
            kept.append(self._tickets.popleft())
        self._tickets = kept

    # -- bookkeeping ----------------------------------------------------
    def observe_service_time(self, seconds: float) -> None:
        """Feed one request's service time into the retry-after EWMA."""
        with self._lock:
            self._ewma_service_s = 0.8 * self._ewma_service_s + 0.2 * max(seconds, 0.0)

    def depth(self) -> int:
        with self._lock:
            return len(self._tickets)

    def close(self) -> None:
        """Wake consumers; subsequent submits fail, pops drain then return []."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

"""The query engine: evidence isolation, caching, micro-batching.

``execute`` takes one registered model and a list of concurrent queries
and returns index-aligned outcomes.  The pipeline per batch:

1. resolve + validate evidence against the model's pristine graph (bad
   queries fail individually, never the batch);
2. split cache hits out (keyed by graph generation + frozen evidence +
   convergence config + plan);
3. run the misses — shard-parallel on the model's pre-built
   :class:`~repro.core.sharded.ShardedGraph` when the plan is sharded
   (evidence on cheap ``instance()`` views, sweeps on the engine's
   thread pool), micro-batched through
   :func:`repro.serve.batch.run_batched` on uniform graphs when batching
   is enabled, otherwise one isolated :meth:`Credo.run` per query on a
   ``BeliefGraph.copy`` — evidence never touches the master graph in any
   of the three;
4. fill the cache and the metrics (batch sizes, per-backend iterations).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.loopy import LoopyConfig
from repro.core.observation import observe
from repro.credo.runner import Credo
from repro.serve.cache import ResultCache, cache_key, copy_posteriors
from repro.serve.config import ServerConfig
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import RegisteredModel
from repro.telemetry import get_tracer

__all__ = ["QueryOutcome", "QueryEngine"]


@dataclass
class QueryOutcome:
    """One query's execution result (or per-query failure)."""

    ok: bool
    posteriors: np.ndarray | None = None
    iterations: int = 0
    converged: bool = False
    cached: bool = False
    batch_size: int = 1
    error: str | None = None
    detail: str | None = None


class QueryEngine:
    def __init__(
        self,
        credo: Credo,
        cache: ResultCache,
        metrics: ServerMetrics,
        config: ServerConfig,
    ):
        self.credo = credo
        self.cache = cache
        self.metrics = metrics
        self.config = config
        # shard-sweep workers, created lazily on the first sharded query
        # and reused across models (sized to the widest plan seen)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0
        self._pool_lock = threading.Lock()
        #: optional RaceDetector-style hook object (repro.analysis.races)
        #: threaded into every sharded run; None in production
        self.instrument = None

    def _shard_pool(self, width: int) -> ThreadPoolExecutor:
        target = self.config.shard_threads or width
        with self._pool_lock:
            if self._pool is None or self._pool_width < target:
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                self._pool = ThreadPoolExecutor(
                    max_workers=target, thread_name_prefix="credo-shard"
                )
                self._pool_width = target
            return self._pool

    def close(self) -> None:
        """Release the shard pool (server shutdown)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_width = 0

    # ------------------------------------------------------------------
    def execute(self, model: RegisteredModel, queries: list[dict]) -> list[QueryOutcome]:
        """Run concurrent ``queries`` (each ``{"evidence": ..., "use_cache": ...}``
        mappings or :class:`~repro.serve.protocol.QueryRequest`-likes)
        against ``model``; outcomes align with the input order."""
        outcomes: list[QueryOutcome | None] = [None] * len(queries)
        prepared: list[tuple[int, tuple[tuple[int, int], ...], bool]] = []
        for i, query in enumerate(queries):
            evidence = getattr(query, "evidence", None)
            if evidence is None and isinstance(query, dict):
                evidence = query.get("evidence", {})
            use_cache = getattr(query, "use_cache", None)
            if use_cache is None:
                use_cache = query.get("use_cache", True) if isinstance(query, dict) else True
            try:
                frozen = self._resolve_evidence(model, evidence or {})
            except (KeyError, ValueError, IndexError) as exc:
                outcomes[i] = QueryOutcome(
                    ok=False, error="bad_evidence", detail=str(exc)
                )
                continue
            prepared.append((i, frozen, bool(use_cache)))

        plan = model.plan
        misses: list[tuple[int, tuple[tuple[int, int], ...], bool]] = []
        for i, frozen, use_cache in prepared:
            if use_cache:
                hit = self.cache.get(self._key(model, frozen))
                if hit is not None:
                    posteriors, iterations, converged = hit
                    outcomes[i] = QueryOutcome(
                        ok=True,
                        posteriors=copy_posteriors(posteriors),
                        iterations=iterations,
                        converged=converged,
                        cached=True,
                    )
                    self.metrics.record_query(plan.backend, 0)
                    continue
            misses.append((i, frozen, use_cache))

        hits = len(prepared) - len(misses)
        if misses:
            with get_tracer().span("serve.engine", cat="serve") as sp:
                self._run_misses(model, misses, outcomes)
                if sp:
                    sp.set(model=model.name, queries=len(queries),
                           cache_hits=hits, cache_misses=len(misses),
                           sharded=model.sharded is not None)
        elif hits and get_tracer().enabled:
            get_tracer().instant(
                "serve.cache_hit", cat="serve",
                args={"model": model.name, "queries": hits},
            )
        return [out if out is not None else QueryOutcome(ok=False, error="internal")
                for out in outcomes]

    # ------------------------------------------------------------------
    def _resolve_evidence(self, model: RegisteredModel, evidence) -> tuple:
        graph = model.graph
        if not isinstance(evidence, dict):
            raise ValueError("evidence must map node -> state")
        resolved: dict[int, int] = {}
        for node, state in evidence.items():
            node_id = graph.node_id(node)
            if not 0 <= node_id < graph.n_nodes:
                raise IndexError(f"node {node!r} out of range")
            state = int(state)
            dim = int(graph.dims[node_id])
            if not 0 <= state < dim:
                raise ValueError(
                    f"state {state} out of range for node {node!r} ({dim} states)"
                )
            resolved[node_id] = state
        return tuple(sorted(resolved.items()))

    def _key(self, model: RegisteredModel, frozen: tuple) -> tuple:
        return cache_key(
            model.name,
            model.generation_signature(),
            frozen,
            self.config.threshold,
            self.config.max_iterations,
            model.plan.backend,
            model.plan.schedule,
            model.plan.policy,
            model.plan.staleness,
        )

    def _loopy_config(self, model: RegisteredModel) -> LoopyConfig:
        """The exact config the selected backend would build for a solo
        run — shared by the batched path so posteriors stay comparable."""
        return LoopyConfig(
            paradigm=model.plan.paradigm,
            update_rule="sum_product",
            criterion=self.credo.criterion,
            schedule=model.plan.schedule,
        )

    # ------------------------------------------------------------------
    def _run_misses(self, model, misses, outcomes) -> None:
        plan = model.plan
        if model.sharded is not None:
            self._run_sharded(model, misses, outcomes)
            return
        batchable = model.graph.uniform and self.config.max_batch > 1
        if batchable:
            evidences = [list(frozen) for _, frozen, _ in misses]
            with model.lock:
                union = model.union_cache.pop(len(evidences), None)
                runs, union = self._run_batched(model, evidences, union)
                # small insertion-ordered LRU of replica graphs by width
                model.union_cache[len(evidences)] = union
                while len(model.union_cache) > 4:
                    model.union_cache.pop(next(iter(model.union_cache)))
            self.metrics.record_batch(len(evidences))
            for (i, frozen, use_cache), run in zip(misses, runs):
                outcomes[i] = QueryOutcome(
                    ok=True,
                    posteriors=run.beliefs,
                    iterations=run.iterations,
                    converged=run.converged,
                    batch_size=len(evidences),
                )
                self.metrics.record_query(plan.backend, run.iterations)
                if use_cache:
                    self.cache.put(
                        self._key(model, frozen),
                        (copy_posteriors(run.beliefs), run.iterations, run.converged),
                    )
            return

        for i, frozen, use_cache in misses:
            self.metrics.record_batch(1)
            try:
                view = model.graph.copy()
                for node, state in frozen:
                    observe(view, node, state)
                result = self.credo.run(view, plan=plan)
            except Exception as exc:  # per-query isolation
                outcomes[i] = QueryOutcome(ok=False, error="run_failed", detail=str(exc))
                self.metrics.record_error()
                continue
            posteriors = np.asarray(result.beliefs, dtype=np.float32)
            outcomes[i] = QueryOutcome(
                ok=True,
                posteriors=posteriors,
                iterations=result.iterations,
                converged=result.converged,
                batch_size=1,
            )
            self.metrics.record_query(plan.backend, result.iterations)
            if use_cache:
                self.cache.put(
                    self._key(model, frozen),
                    (copy_posteriors(posteriors), result.iterations, result.converged),
                )

    def _run_sharded(self, model, misses, outcomes) -> None:
        """Shard-parallel path: evidence lands on a cheap ``instance()``
        view of the pre-partitioned master; shard sweeps run on the
        engine's thread pool.  Per-query isolation semantics match the
        solo path exactly."""
        from repro.core.sharded import ShardedLoopyBP

        plan = model.plan
        driver = ShardedLoopyBP(
            self._loopy_config(model),
            pool=self._shard_pool(plan.shards),
            instrument=self.instrument,
            policy=plan.policy,
            staleness=plan.staleness,
        )
        for i, frozen, use_cache in misses:
            self.metrics.record_batch(1)
            try:
                view = model.sharded.instance()
                for node, state in frozen:
                    view.observe(node, state)
                result = driver.run(view)
            except Exception as exc:  # per-query isolation
                outcomes[i] = QueryOutcome(ok=False, error="run_failed", detail=str(exc))
                self.metrics.record_error()
                continue
            posteriors = np.asarray(result.beliefs, dtype=np.float32)
            outcomes[i] = QueryOutcome(
                ok=True,
                posteriors=posteriors,
                iterations=result.iterations,
                converged=result.converged,
                batch_size=1,
            )
            self.metrics.record_query(plan.backend, result.iterations)
            if use_cache:
                self.cache.put(
                    self._key(model, frozen),
                    (copy_posteriors(posteriors), result.iterations, result.converged),
                )

    def _run_batched(self, model, evidences, union):
        from repro.serve.batch import run_batched

        return run_batched(
            model.graph, self._loopy_config(model), evidences, union=union
        )

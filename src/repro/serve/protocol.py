"""JSON-lines wire protocol of ``credo serve``.

One JSON object per line, request → response.  Operations:

``{"op": "query", "model": "m", "evidence": {"name": 0}, ...}``
    Run (or batch, or answer from cache) one posterior query.  Optional
    fields: ``id`` (echoed), ``nodes`` (names/ids whose posteriors to
    return; default all), ``deadline_s``, ``use_cache`` (default true).
``{"op": "stats"}``
    The metrics snapshot (queue depth, latency percentiles, cache hit
    rate, batch-size distribution, per-backend iteration counts).
``{"op": "models"}``
    Registered models and their frozen execution plans.
``{"op": "load", "model": "m", "path": "g.bif"}``
    Register a graph file under a name.
``{"op": "reload", "model": "m"}``
    Re-parse a file-backed model (bumps its generation).
``{"op": "update", "model": "m", "add_nodes": [...], "add_edges": [...]}``
    Apply a structural :class:`~repro.stream.delta.GraphDelta` to a
    registered model in place.  Delta keys (at least one required):
    ``add_nodes``, ``add_edges``, ``remove_edges``, ``detach_nodes`` —
    the payload forms accepted by
    :meth:`~repro.stream.delta.GraphDelta.from_payload`.  Evidence keys
    (``observe``/``release``) are rejected: registered masters stay
    evidence-free, evidence travels with queries.  Bumps the per-shard
    update generations of the shards the delta touches.
``{"op": "shutdown"}``
    Stop the server loop.

Rejected requests answer ``{"ok": false, "error": "rejected",
"retry_after": <s>}`` — the backpressure contract: the client owns the
retry, the server never buffers beyond its admission bound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "UpdateRequest",
    "parse_line",
    "dump",
]


class ProtocolError(ValueError):
    """Malformed request line."""


@dataclass
class QueryRequest:
    """One posterior query, as received off the wire (or built in-process)."""

    model: str
    evidence: dict[str, int] = field(default_factory=dict)
    nodes: list | None = None
    id: str | None = None
    deadline_s: float | None = None
    use_cache: bool = True

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryRequest":
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise ProtocolError("query needs a 'model' string")
        evidence = payload.get("evidence") or {}
        if not isinstance(evidence, dict):
            raise ProtocolError("'evidence' must be an object of node -> state")
        try:
            evidence = {str(k): int(v) for k, v in evidence.items()}
        except (TypeError, ValueError):
            raise ProtocolError("evidence states must be integers") from None
        nodes = payload.get("nodes")
        if nodes is not None and not isinstance(nodes, list):
            raise ProtocolError("'nodes' must be a list of names or ids")
        deadline = payload.get("deadline_s")
        if deadline is not None:
            deadline = float(deadline)
        request_id = payload.get("id")
        if request_id is not None:
            request_id = str(request_id)
        return cls(
            model=model,
            evidence=evidence,
            nodes=nodes,
            id=request_id,
            deadline_s=deadline,
            use_cache=bool(payload.get("use_cache", True)),
        )


#: delta payload keys an ``update`` request may carry
_DELTA_KEYS = ("add_nodes", "add_edges", "remove_edges", "detach_nodes")


@dataclass
class UpdateRequest:
    """One structural graph delta, as received off the wire.

    The delta itself stays a plain payload dict here — the serve layer
    hands it to :meth:`repro.serve.registry.ModelRegistry.update`, which
    validates it via :meth:`~repro.stream.delta.GraphDelta.from_payload`
    against the actual graph.  This class only enforces the wire shape.
    """

    model: str
    delta: dict
    id: str | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "UpdateRequest":
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise ProtocolError("update needs a 'model' string")
        if "observe" in payload or "release" in payload:
            raise ProtocolError(
                "updates must not carry evidence; send it with queries"
            )
        delta: dict = {}
        for key in _DELTA_KEYS:
            if key not in payload:
                continue
            value = payload[key]
            if not isinstance(value, list):
                raise ProtocolError(f"'{key}' must be a list")
            delta[key] = value
        if not delta:
            raise ProtocolError(
                "update needs at least one delta key: " + ", ".join(_DELTA_KEYS)
            )
        request_id = payload.get("id")
        if request_id is not None:
            request_id = str(request_id)
        return cls(model=model, delta=delta, id=request_id)


@dataclass
class QueryResponse:
    """One query's answer; ``to_payload`` is the wire form."""

    ok: bool
    id: str | None = None
    model: str | None = None
    posteriors: dict[str, list[float]] | None = None
    backend: str | None = None
    schedule: str | None = None
    iterations: int | None = None
    converged: bool | None = None
    cached: bool = False
    batch_size: int | None = None
    timings: dict[str, float] | None = None
    error: str | None = None
    detail: str | None = None
    retry_after: float | None = None

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"ok": self.ok}
        for key in (
            "id",
            "model",
            "posteriors",
            "backend",
            "schedule",
            "iterations",
            "converged",
            "batch_size",
            "timings",
            "error",
            "detail",
            "retry_after",
        ):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.ok:
            payload["cached"] = self.cached
        return payload


def parse_line(line: str) -> dict:
    """One wire line → op payload dict (with ``"op"`` defaulting to query)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    payload.setdefault("op", "query")
    if not isinstance(payload["op"], str):
        raise ProtocolError("'op' must be a string")
    return payload


def dump(payload: dict) -> str:
    """Compact single-line JSON (the response framing)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)

"""Server configuration.

One frozen dataclass carries every serving knob — admission capacity,
micro-batching window, cache size, convergence settings — so it can be
threaded from the CLI through :class:`repro.credo.runner.Credo`
(``Credo.from_server_config``) down to the engine without a bag of
keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.convergence import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_THRESHOLD,
    ConvergenceCriterion,
)

__all__ = ["ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of a :class:`repro.serve.server.InferenceServer`.

    Parameters
    ----------
    device:
        Simulated GPU the Credo runner models (``gtx1070``/``v100``/…).
    backend, schedule:
        Pin the implementation / scheduling policy for every model;
        ``None`` lets the (amortized) selector decide per graph.
    threshold, max_iterations:
        The convergence criterion shared by every query; part of the
        result-cache key.
    queue_capacity:
        Bound of the admission queue.  The ``capacity+1``-st concurrent
        request is rejected with a retry-after hint, never dropped.
    max_batch:
        Upper bound on how many queries one micro-batch coalesces.
        ``1`` disables batching (the unbatched ablation mode).
    batch_window_s:
        How long the worker lingers for stragglers once it holds at
        least one request but fewer than ``max_batch``.
    cache_capacity:
        LRU result-cache entries; ``0`` disables caching.
    default_deadline_s:
        Deadline applied to requests that do not carry their own;
        ``None`` means no deadline.
    shards, partitioner:
        Shard-parallel execution (DESIGN.md §9): every registered model
        is partitioned ``shards`` ways at registration time and queries
        sweep the shards on a thread pool.  ``shards=1`` (default)
        disables sharding; ``shards=None`` lets the selector decide per
        graph (it only shards very large ones).
    shard_threads:
        Worker threads in the engine's shard pool; ``None`` sizes it to
        the largest registered shard count.
    shard_policy, staleness:
        Shard execution policy (DESIGN.md §12): ``"sync"`` sweeps
        lockstep rounds (bit-exact vs the single-engine path),
        ``"async"`` runs stale-synchronous ticks whose halo snapshots
        may be up to ``staleness`` rounds old.  Both feed the frozen
        :class:`~repro.credo.runner.ExecutionPlan` each model registers
        with.
    """

    device: str = "gtx1070"
    backend: str | None = None
    schedule: str | None = None
    threshold: float = DEFAULT_THRESHOLD
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    queue_capacity: int = 64
    max_batch: int = 16
    batch_window_s: float = 0.002
    cache_capacity: int = 256
    default_deadline_s: float | None = None
    shards: int | None = 1
    partitioner: str | None = None
    shard_threads: int | None = None
    shard_policy: str = "sync"
    staleness: int = 0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if self.default_deadline_s is not None and self.default_deadline_s < 0:
            raise ValueError("default_deadline_s must be non-negative")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1 (or None for auto)")
        if self.shard_threads is not None and self.shard_threads < 1:
            raise ValueError("shard_threads must be at least 1")
        if self.partitioner is not None:
            from repro.partition import normalize_partitioner

            normalize_partitioner(self.partitioner)  # raises on unknown
        from repro.core.shard_policies import normalize_shard_policy

        policy = normalize_shard_policy(self.shard_policy)  # raises on unknown
        if self.staleness < 0:
            raise ValueError("staleness must be non-negative")
        if policy == "sync" and self.staleness:
            raise ValueError(
                "the sync policy is staleness-free; use shard_policy='async'"
            )

    def criterion(self) -> ConvergenceCriterion:
        """The convergence criterion every served query runs under."""
        return ConvergenceCriterion(
            threshold=self.threshold, max_iterations=self.max_iterations
        )

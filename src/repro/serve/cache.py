"""LRU result cache for served queries.

Posteriors are pure functions of ``(graph, evidence, convergence config,
backend, schedule)``, so identical queries against an unchanged model can
be answered without running BP at all.  The *model generation* — bumped
by :meth:`repro.serve.registry.ModelRegistry.reload` — is part of the
key, which makes invalidation-on-reload automatic: entries for a stale
generation can never be hit again and age out of the LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = ["ResultCache", "cache_key", "freeze_evidence", "copy_posteriors"]


def cache_key(
    model: str,
    generation: int | tuple,
    evidence: tuple[tuple[int, int], ...],
    threshold: float,
    max_iterations: int,
    backend: str,
    schedule: str,
    policy: str = "sync",
    staleness: int = 0,
) -> tuple:
    """Canonical cache key; ``evidence`` must be sorted (node, state) pairs.

    ``generation`` is either the plain registration generation or a
    mutable model's full generation *signature* — the registration
    generation plus every per-shard update generation
    (:meth:`~repro.serve.registry.RegisteredModel.generation_signature`).
    Any delta bump anywhere changes the signature, so stale posteriors
    are unreachable after an ``update``: BP posteriors are globally
    coupled, and the key must reflect the whole graph's state.
    ``policy``/``staleness`` distinguish sync from stale-synchronous
    sharded executions — async posteriors are approximate, so they never
    alias a sync entry.
    """
    return (model, generation, evidence, threshold, max_iterations, backend,
            schedule, policy, staleness)


class ResultCache:
    """Bounded LRU of query posteriors (thread-safe).

    ``capacity == 0`` disables the cache (every lookup misses, nothing is
    stored), which is the cache-off ablation mode of the benchmark.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple):
        with self._lock:
            if self.capacity == 0:
                self.misses += 1
                return None
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: tuple, value) -> None:
        with self._lock:
            if self.capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_model(self, model: str) -> int:
        """Drop every entry of ``model`` (any generation); returns count.

        Generation-keying already prevents stale hits after a reload —
        this additionally frees the memory eagerly.
        """
        with self._lock:
            stale = [k for k in self._entries if k[0] == model]
            for k in stale:
                del self._entries[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }


def freeze_evidence(evidence) -> tuple[tuple[int, int], ...]:
    """Sorted, hashable form of an ``{node_id: state}`` mapping."""
    return tuple(sorted((int(n), int(s)) for n, s in dict(evidence).items()))


def copy_posteriors(beliefs: np.ndarray) -> np.ndarray:
    """Defensive copy used on both cache store and cache hit."""
    return np.array(beliefs, copy=True)

"""Observability surface of the inference service.

Everything the server measures lands here: per-stage latency histograms
(queue wait / select / run / total), queue depth, cache hit rate, the
batch-size distribution, and per-backend iteration counts.  The snapshot
is a plain dict of floats/ints so it can be JSON-dumped by
``credo serve --stats`` (or an ``{"op": "stats"}`` request) without any
serialization helpers.

Latency percentiles come from fixed log-spaced buckets (1 µs … ~2 min,
two buckets per octave), the classic monitoring trade-off: bounded
memory, ~±20 % bucket resolution, mergeable across threads.
"""

from __future__ import annotations

import math
import threading
from collections import Counter

__all__ = ["LatencyHistogram", "ServerMetrics"]


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimation."""

    #: bucket upper bounds double every ``2`` buckets (sqrt(2) ratio)
    _BUCKETS_PER_OCTAVE = 2
    _MIN_S = 1e-6
    _N_BUCKETS = 2 * 27  # up to _MIN_S * 2**27 ≈ 134 s

    def __init__(self) -> None:
        self.counts = [0] * self._N_BUCKETS
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds <= self._MIN_S:
            return 0
        idx = int(math.log2(seconds / self._MIN_S) * self._BUCKETS_PER_OCTAVE) + 1
        return min(idx, self._N_BUCKETS - 1)

    def _bucket_upper(self, idx: int) -> float:
        return self._MIN_S * 2.0 ** (idx / self._BUCKETS_PER_OCTAVE)

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self.counts[self._bucket(seconds)] += 1
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile in seconds (0 when empty)."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for idx, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return min(self._bucket_upper(idx), self.max)
        return self.max

    def snapshot(self) -> dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_s": mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max,
        }


class ServerMetrics:
    """Thread-safe counters and histograms for one server instance."""

    STAGES = ("queue_wait", "select", "run", "total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stages = {name: LatencyHistogram() for name in self.STAGES}
        self.requests_total = 0
        self.responses_total = 0
        self.rejected_total = 0
        self.deadline_expired_total = 0
        self.errors_total = 0
        self.batches_total = 0
        self.batched_queries_total = 0
        self.batch_sizes: Counter[int] = Counter()
        #: backend name → {"queries": int, "iterations": int}
        self.backends: dict[str, dict[str, int]] = {}
        #: gauge callback installed by the server (admission queue depth)
        self.queue_depth_fn = lambda: 0

    # -- recording -----------------------------------------------------
    def record_request(self) -> None:
        with self._lock:
            self.requests_total += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected_total += 1

    def record_deadline_expired(self) -> None:
        with self._lock:
            self.deadline_expired_total += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors_total += 1

    def record_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.stages[stage].record(seconds)

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches_total += 1
            self.batched_queries_total += size
            self.batch_sizes[size] += 1

    def record_query(self, backend: str, iterations: int) -> None:
        with self._lock:
            self.responses_total += 1
            entry = self.backends.setdefault(
                backend, {"queries": 0, "iterations": 0}
            )
            entry["queries"] += 1
            entry["iterations"] += int(iterations)

    # -- reading -------------------------------------------------------
    def snapshot(self, cache_stats: dict | None = None) -> dict:
        """Plain-dict view of every metric (the ``--stats`` dump)."""
        with self._lock:
            mean_batch = (
                self.batched_queries_total / self.batches_total
                if self.batches_total
                else 0.0
            )
            return {
                "requests_total": self.requests_total,
                "responses_total": self.responses_total,
                "rejected_total": self.rejected_total,
                "deadline_expired_total": self.deadline_expired_total,
                "errors_total": self.errors_total,
                "queue_depth": int(self.queue_depth_fn()),
                "latency": {
                    name: hist.snapshot() for name, hist in self.stages.items()
                },
                "batch": {
                    "batches_total": self.batches_total,
                    "mean_size": mean_batch,
                    "size_distribution": {
                        str(k): v for k, v in sorted(self.batch_sizes.items())
                    },
                },
                "cache": dict(cache_stats or {}),
                "backends": {
                    name: dict(entry) for name, entry in self.backends.items()
                },
            }

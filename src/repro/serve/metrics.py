"""Observability surface of the inference service.

Everything the server measures lands here: per-stage latency histograms
(queue wait / select / run / total), queue depth, cache hit rate, the
batch-size distribution, and per-backend iteration counts.  The snapshot
is a plain dict of floats/ints so it can be JSON-dumped by
``credo serve --stats`` (or an ``{"op": "stats"}`` request) without any
serialization helpers.

Since the telemetry subsystem landed (DESIGN.md §11) the primitives live
in :mod:`repro.telemetry`: the log-bucketed histogram moved there as
:class:`~repro.telemetry.Histogram` (re-exported here under its
historical name ``LatencyHistogram``) and :class:`ServerMetrics` is a
facade over a shared :class:`~repro.telemetry.MetricsRegistry`, so the
server's counters appear in the same snapshot namespace as any other
instrumented layer.
"""

from __future__ import annotations

import threading
from collections import Counter

from repro.telemetry import LatencyHistogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServerMetrics"]


class ServerMetrics:
    """Thread-safe counters and histograms for one server instance.

    Built on a :class:`MetricsRegistry` (one per instance unless an
    existing registry is passed in); the legacy attribute surface
    (``requests_total``, ``stages``, …) is preserved as views onto the
    registry's instruments.
    """

    STAGES = ("queue_wait", "select", "run", "total")

    _COUNTERS = (
        "requests_total",
        "responses_total",
        "rejected_total",
        "deadline_expired_total",
        "errors_total",
        "batches_total",
        "batched_queries_total",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in self._COUNTERS:
            self.registry.counter(f"serve.{name}")
        self.stages = {
            name: self.registry.histogram(f"serve.latency.{name}")
            for name in self.STAGES
        }
        self.batch_sizes: Counter[int] = Counter()
        #: backend name → {"queries": int, "iterations": int}
        self.backends: dict[str, dict[str, int]] = {}
        #: gauge callback installed by the server (admission queue depth)
        self.queue_depth_fn = lambda: 0
        self.registry.gauge("serve.queue_depth", lambda: self.queue_depth_fn())

    def __getattr__(self, name: str):
        # legacy read access: metrics.requests_total et al.
        if name in self._COUNTERS:
            return self.registry.counter(f"serve.{name}").value
        raise AttributeError(name)

    # -- recording -----------------------------------------------------
    def record_request(self) -> None:
        self.registry.counter("serve.requests_total").inc()

    def record_rejected(self) -> None:
        self.registry.counter("serve.rejected_total").inc()

    def record_deadline_expired(self) -> None:
        self.registry.counter("serve.deadline_expired_total").inc()

    def record_error(self) -> None:
        self.registry.counter("serve.errors_total").inc()

    def record_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.stages[stage].record(seconds)

    def record_batch(self, size: int) -> None:
        self.registry.counter("serve.batches_total").inc()
        self.registry.counter("serve.batched_queries_total").inc(size)
        with self._lock:
            self.batch_sizes[size] += 1

    def record_query(self, backend: str, iterations: int) -> None:
        self.registry.counter("serve.responses_total").inc()
        with self._lock:
            entry = self.backends.setdefault(
                backend, {"queries": 0, "iterations": 0}
            )
            entry["queries"] += 1
            entry["iterations"] += int(iterations)

    # -- reading -------------------------------------------------------
    def snapshot(self, cache_stats: dict | None = None) -> dict:
        """Plain-dict view of every metric (the ``--stats`` dump)."""
        batches_total = self.batches_total
        mean_batch = (
            self.batched_queries_total / batches_total if batches_total else 0.0
        )
        with self._lock:
            return {
                "requests_total": self.requests_total,
                "responses_total": self.responses_total,
                "rejected_total": self.rejected_total,
                "deadline_expired_total": self.deadline_expired_total,
                "errors_total": self.errors_total,
                "queue_depth": int(self.queue_depth_fn()),
                "latency": {
                    name: hist.snapshot() for name, hist in self.stages.items()
                },
                "batch": {
                    "batches_total": batches_total,
                    "mean_size": mean_batch,
                    "size_distribution": {
                        str(k): v for k, v in sorted(self.batch_sizes.items())
                    },
                },
                "cache": dict(cache_stats or {}),
                "backends": {
                    name: dict(entry) for name, entry in self.backends.items()
                },
            }

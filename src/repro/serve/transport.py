"""JSON-lines transports for :class:`~repro.serve.server.InferenceServer`.

Two server loops (stdin/stdout for pipelines and tests, a TCP socket for
concurrent clients) plus the small client used by ``credo query``.  Both
loops speak the protocol in :mod:`repro.serve.protocol`: one JSON object
per line in, one per line out, same order.
"""

from __future__ import annotations

import socket
import socketserver
import sys
import threading
import time
from typing import IO

from repro.serve.admission import AdmissionRejected
from repro.serve.protocol import (
    ProtocolError,
    QueryRequest,
    UpdateRequest,
    dump,
    parse_line,
)
from repro.serve.server import InferenceServer

__all__ = ["handle_op", "serve_stdin", "serve_socket", "request_over_socket"]


def handle_op(server: InferenceServer, payload: dict) -> tuple[dict, bool]:
    """Dispatch one parsed request; returns ``(response_payload, keep_going)``."""
    op = payload["op"]
    if op == "query":
        try:
            request = QueryRequest.from_payload(payload)
        except ProtocolError as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}, True
        try:
            ticket = server.submit(request)
        except AdmissionRejected as exc:
            return (
                {
                    "ok": False,
                    "id": request.id,
                    "error": "rejected",
                    "retry_after": exc.retry_after,
                    "detail": str(exc),
                },
                True,
            )
        response = ticket.future.result(None)
        return response.to_payload(), True
    if op == "stats":
        return {"ok": True, "stats": server.stats()}, True
    if op == "models":
        return {"ok": True, "models": server.registry.describe()}, True
    if op == "load":
        name, path = payload.get("model"), payload.get("path")
        if not name or not path:
            return {"ok": False, "error": "bad_request",
                    "detail": "'load' needs 'model' and 'path'"}, True
        try:
            model = server.load_model(name, path, payload.get("edge_path"))
        except Exception as exc:
            return {"ok": False, "error": "load_failed", "detail": str(exc)}, True
        return {"ok": True, "model": model.describe()}, True
    if op == "reload":
        name = payload.get("model")
        if not name:
            return {"ok": False, "error": "bad_request",
                    "detail": "'reload' needs 'model'"}, True
        try:
            model = server.reload_model(name)
        except Exception as exc:
            return {"ok": False, "error": "reload_failed", "detail": str(exc)}, True
        return {"ok": True, "model": model.describe()}, True
    if op == "update":
        try:
            request = UpdateRequest.from_payload(payload)
        except ProtocolError as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}, True
        try:
            model, result = server.update_model(request.model, request.delta)
        except Exception as exc:
            return {"ok": False, "error": "update_failed", "detail": str(exc)}, True
        response = {
            "ok": True,
            "model": model.describe(),
            "update": {
                "structural": bool(result.structural),
                "dirty_nodes": int(len(result.dirty_nodes)),
                "dirty_fraction": float(result.dirty_fraction),
                "added_nodes": int(result.added_nodes),
                "added_edges": int(result.added_edges),
                "removed_edges": int(result.removed_edges),
                "generation_signature": list(model.generation_signature()),
            },
        }
        if request.id is not None:
            response["id"] = request.id
        return response, True
    if op == "shutdown":
        return {"ok": True, "stopping": True}, False
    return {"ok": False, "error": "unknown_op", "detail": f"op {op!r}"}, True


def _serve_stream(server: InferenceServer, lines, out: IO[str]) -> None:
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = parse_line(line)
        except ProtocolError as exc:
            out.write(dump({"ok": False, "error": "bad_request", "detail": str(exc)}))
            out.write("\n")
            out.flush()
            continue
        response, keep_going = handle_op(server, payload)
        out.write(dump(response))
        out.write("\n")
        out.flush()
        if not keep_going:
            break


def serve_stdin(server: InferenceServer) -> None:
    """Serve requests from stdin until EOF or a shutdown op."""
    _serve_stream(server, sys.stdin, sys.stdout)


def serve_socket(
    server: InferenceServer,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    announce: IO[str] | None = None,
) -> None:
    """Serve concurrent TCP clients; blocks until a shutdown op arrives.

    With ``port=0`` the OS picks a free port; the bound address is
    announced as ``listening on HOST:PORT`` (clients and the CI smoke
    step parse that line).
    """
    done = threading.Event()

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            writer = self.wfile
            for raw in self.rfile:
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                try:
                    payload = parse_line(line)
                except ProtocolError as exc:
                    response, keep_going = (
                        {"ok": False, "error": "bad_request", "detail": str(exc)},
                        True,
                    )
                else:
                    response, keep_going = handle_op(server, payload)
                writer.write((dump(response) + "\n").encode())
                writer.flush()
                if not keep_going:
                    done.set()
                    return

    class TCP(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with TCP((host, port), Handler) as tcp:
        bound_host, bound_port = tcp.server_address[:2]
        out = announce or sys.stdout
        out.write(f"listening on {bound_host}:{bound_port}\n")
        out.flush()
        poller = threading.Thread(target=tcp.serve_forever, args=(0.1,), daemon=True)
        poller.start()
        try:
            while not done.is_set():
                done.wait(0.2)
        except KeyboardInterrupt:
            pass
        tcp.shutdown()


def request_over_socket(
    host: str,
    port: int,
    payload: dict,
    *,
    timeout: float = 30.0,
    retries: int = 20,
    retry_delay: float = 0.25,
) -> dict:
    """Send one request line and read one response line.

    Connection refusals are retried (the server may still be booting);
    admission rejections are surfaced to the caller, who owns that retry.
    """
    last: Exception | None = None
    for _ in range(max(retries, 1)):
        try:
            with socket.create_connection((host, port), timeout=timeout) as conn:
                conn.sendall((dump(payload) + "\n").encode())
                reader = conn.makefile("r", encoding="utf-8")
                line = reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            return parse_line(line)
        except (ConnectionRefusedError, ConnectionResetError, OSError) as exc:
            last = exc
            time.sleep(retry_delay)
    raise ConnectionError(f"could not reach {host}:{port}: {last}")

"""repro.serve — batched, evidence-aware BP inference service.

The serving layer keeps graphs resident, freezes Credo's backend +
schedule choice per graph, coalesces concurrent queries on the same
graph into one batched BP sweep over a block-diagonal union graph,
applies admission control with backpressure, caches results, and
exposes latency/queue/cache metrics.  See DESIGN.md §8.
"""

from repro.serve.admission import AdmissionQueue, AdmissionRejected, DeadlineExpired
from repro.serve.batch import BatchQueryRun, replicate_graph, run_batched
from repro.serve.cache import ResultCache, cache_key, freeze_evidence
from repro.serve.config import ServerConfig
from repro.serve.engine import QueryEngine, QueryOutcome
from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.protocol import ProtocolError, QueryRequest, QueryResponse
from repro.serve.registry import ModelRegistry, RegisteredModel, UnknownModelError
from repro.serve.server import InferenceServer

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "BatchQueryRun",
    "DeadlineExpired",
    "InferenceServer",
    "LatencyHistogram",
    "ModelRegistry",
    "ProtocolError",
    "QueryEngine",
    "QueryOutcome",
    "QueryRequest",
    "QueryResponse",
    "RegisteredModel",
    "ResultCache",
    "ServerConfig",
    "ServerMetrics",
    "UnknownModelError",
    "cache_key",
    "freeze_evidence",
    "replicate_graph",
    "run_batched",
]

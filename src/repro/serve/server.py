"""The long-lived inference server.

``InferenceServer`` ties the subsystem together: requests pass admission
control into the bounded queue, a worker thread pops model-affine
micro-batches, the engine executes them (cache → batched BP → per-query
isolation), and every stage feeds the metrics.  The server is
transport-agnostic — ``submit``/``query`` are the in-process API; the
CLI's stdin and socket loops (``credo serve``) are thin wrappers that
speak :mod:`repro.serve.protocol` over it.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.graph import BeliefGraph
from repro.credo.runner import Credo
from repro.serve.admission import AdmissionQueue, AdmissionRejected, Ticket
from repro.serve.cache import ResultCache
from repro.serve.config import ServerConfig
from repro.serve.engine import QueryEngine, QueryOutcome
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import QueryRequest, QueryResponse
from repro.serve.registry import ModelRegistry, UnknownModelError
from repro.telemetry import get_tracer

__all__ = ["InferenceServer"]


class InferenceServer:
    """Batched, evidence-aware BP inference service (in-process core).

    >>> server = InferenceServer()
    >>> server.register_model("g", graph)          # doctest: +SKIP
    >>> server.query("g", {"node_3": 1}).posteriors  # doctest: +SKIP
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        credo: Credo | None = None,
        autostart: bool = True,
    ):
        self.config = config or ServerConfig()
        self.credo = credo or Credo.from_server_config(self.config)
        self.metrics = ServerMetrics()
        self.cache = ResultCache(self.config.cache_capacity)
        self.registry = ModelRegistry(
            self.credo,
            backend=self.config.backend,
            shards=self.config.shards,
            partitioner=self.config.partitioner,
            shard_policy=self.config.shard_policy,
            staleness=self.config.staleness,
        )
        self.engine = QueryEngine(self.credo, self.cache, self.metrics, self.config)
        self.admission = AdmissionQueue(self.config.queue_capacity)
        self.metrics.queue_depth_fn = self.admission.depth
        self._worker: threading.Thread | None = None
        self._stopping = threading.Event()
        self.started_at = time.time()
        if autostart:
            self.start()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._worker is not None and self._worker.is_alive():
            return
        self._stopping.clear()
        self._worker = threading.Thread(
            target=self._worker_loop, name="credo-serve-worker", daemon=True
        )
        self._worker.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stopping.set()
        self.admission.close()
        if self._worker is not None:
            self._worker.join(timeout)
            self._worker = None
        self.engine.close()

    def __enter__(self) -> "InferenceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- model management ----------------------------------------------
    def load_model(self, name: str, path, edge_path=None):
        return self.registry.load(name, path, edge_path)

    def register_model(self, name: str, graph: BeliefGraph):
        return self.registry.register(name, graph)

    def reload_model(self, name: str):
        model = self.registry.reload(name)
        self.cache.invalidate_model(name)
        return model

    def update_model(self, name: str, delta):
        """Apply a :class:`~repro.stream.delta.GraphDelta` (or its payload
        dict) to a registered model; returns ``(model, DeltaResult)``.

        The generation-signature bump already makes stale cache entries
        unreachable — the eager invalidation only frees their memory.
        """
        model, result = self.registry.update(name, delta)
        self.cache.invalidate_model(name)
        return model, result

    # -- request path ---------------------------------------------------
    def submit(self, request: QueryRequest) -> Ticket:
        """Admit one query; returns a ticket whose ``future`` resolves to
        a :class:`~repro.serve.protocol.QueryResponse`.

        Raises :class:`~repro.serve.admission.AdmissionRejected` when the
        queue is at capacity (backpressure — the caller owns the retry).
        """
        self.metrics.record_request()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("serve.admit", cat="serve",
                           args={"model": request.model,
                                 "depth": int(self.admission.depth())})
        if request.model not in self.registry:
            ticket = Ticket(request=request, model=request.model, enqueued_at=0.0)
            ticket.future.set_result(
                QueryResponse(
                    ok=False,
                    id=request.id,
                    model=request.model,
                    error="unknown_model",
                    detail=f"no model named {request.model!r} is registered",
                )
            )
            self.metrics.record_error()
            return ticket
        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        try:
            return self.admission.submit(request, request.model, deadline)
        except AdmissionRejected:
            self.metrics.record_rejected()
            raise

    def query(
        self,
        model: str,
        evidence: dict | None = None,
        *,
        nodes: list | None = None,
        timeout: float | None = 30.0,
        use_cache: bool = True,
        request_id: str | None = None,
    ) -> QueryResponse:
        """Synchronous convenience wrapper over :meth:`submit`."""
        request = QueryRequest(
            model=model,
            evidence=dict(evidence or {}),
            nodes=nodes,
            id=request_id,
            use_cache=use_cache,
        )
        try:
            ticket = self.submit(request)
        except AdmissionRejected as exc:
            return QueryResponse(
                ok=False,
                id=request.id,
                model=model,
                error="rejected",
                detail=str(exc),
                retry_after=exc.retry_after,
            )
        return ticket.future.result(timeout)

    def stats(self) -> dict:
        """The observability snapshot (plain dict, JSON-serializable)."""
        snapshot = self.metrics.snapshot(cache_stats=self.cache.stats())
        snapshot["models"] = self.registry.describe()
        snapshot["uptime_s"] = time.time() - self.started_at
        return snapshot

    # -- worker ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            batch = self.admission.pop_batch(
                self.config.max_batch,
                window_s=self.config.batch_window_s,
                timeout=0.25,
            )
            if not batch:
                continue
            self._serve_batch(batch)
        # drain whatever is left so no future hangs after stop()
        while True:
            batch = self.admission.pop_batch(self.config.max_batch, timeout=0.0)
            if not batch:
                break
            self._serve_batch(batch)

    def _serve_batch(self, batch: list[Ticket]) -> None:
        tracer = get_tracer()
        now = time.monotonic()
        runnable: list[Ticket] = []
        for ticket in batch:
            wait = now - ticket.enqueued_at
            self.metrics.record_stage("queue_wait", wait)
            if tracer.enabled:
                # enqueued_at is time.monotonic(), a different clock than
                # the tracer's — record the measured duration retroactively
                # as a span ending now
                tracer.complete("serve.queue_wait", wait, cat="serve",
                                args={"model": ticket.model})
            if ticket.expired(now):
                self.metrics.record_deadline_expired()
                ticket.future.set_result(
                    QueryResponse(
                        ok=False,
                        id=ticket.request.id,
                        model=ticket.model,
                        error="deadline_expired",
                        detail="deadline passed while queued",
                    )
                )
            else:
                runnable.append(ticket)
        if not runnable:
            return

        select_start = time.perf_counter()
        try:
            with tracer.span("serve.select", cat="serve") as sp:
                model = self.registry.get(runnable[0].model)
                if sp:
                    sp.set(model=model.name, batch=len(runnable))
        except UnknownModelError:
            for ticket in runnable:
                ticket.future.set_result(
                    QueryResponse(
                        ok=False,
                        id=ticket.request.id,
                        model=ticket.model,
                        error="unknown_model",
                    )
                )
                self.metrics.record_error()
            return
        # amortized: the plan lookup *is* the whole selection stage
        self.metrics.record_stage("select", time.perf_counter() - select_start)

        run_start = time.perf_counter()
        try:
            with tracer.span("serve.run", cat="serve") as sp:
                outcomes = self.engine.execute(model, [t.request for t in runnable])
                if sp:
                    sp.set(model=model.name, batch=len(runnable),
                           backend=model.plan.backend)
        except Exception as exc:  # defensive: engine bugs must not hang futures
            for ticket in runnable:
                ticket.future.set_result(
                    QueryResponse(
                        ok=False,
                        id=ticket.request.id,
                        model=ticket.model,
                        error="internal",
                        detail=str(exc),
                    )
                )
                self.metrics.record_error()
            return
        run_elapsed = time.perf_counter() - run_start
        self.metrics.record_stage("run", run_elapsed)
        self.admission.observe_service_time(run_elapsed / max(len(runnable), 1))

        finish = time.monotonic()
        for ticket, outcome in zip(runnable, outcomes):
            total = finish - ticket.enqueued_at
            self.metrics.record_stage("total", total)
            ticket.future.set_result(
                self._response(ticket, model, outcome, total, run_elapsed)
            )

    def _response(
        self,
        ticket: Ticket,
        model,
        outcome: QueryOutcome,
        total_s: float,
        run_s: float,
    ) -> QueryResponse:
        request: QueryRequest = ticket.request
        if not outcome.ok:
            self_error = outcome.error or "error"
            return QueryResponse(
                ok=False,
                id=request.id,
                model=model.name,
                error=self_error,
                detail=outcome.detail,
            )
        graph = model.graph
        if request.nodes is None:
            node_ids = range(graph.n_nodes)
        else:
            node_ids = [graph.node_id(n) for n in request.nodes]
        posteriors = {
            graph.node_names[i]: [
                float(v) for v in outcome.posteriors[i, : graph.dims[i]]
            ]
            for i in node_ids
        }
        return QueryResponse(
            ok=True,
            id=request.id,
            model=model.name,
            posteriors=posteriors,
            backend=model.plan.backend,
            schedule=model.plan.schedule,
            iterations=outcome.iterations,
            converged=outcome.converged,
            cached=outcome.cached,
            batch_size=outcome.batch_size,
            timings={
                "queue_wait_s": round(total_s - run_s, 6) if total_s >= run_s else 0.0,
                "run_s": round(run_s, 6),
                "total_s": round(total_s, 6),
            },
        )

    # -- raw posterior access (tests / benchmarks) -----------------------
    def query_posteriors(
        self, model: str, evidence: dict | None = None, timeout: float | None = 30.0
    ) -> np.ndarray:
        """Full ``(n, b)`` posterior matrix for one query (dense graphs)."""
        response = self.query(model, evidence, timeout=timeout)
        if not response.ok:
            raise RuntimeError(f"query failed: {response.error}: {response.detail}")
        graph = self.registry.get(model).graph
        out = np.zeros((graph.n_nodes, graph.n_states), dtype=np.float32)
        for name, probs in response.posteriors.items():
            i = graph.node_id(name)
            out[i, : len(probs)] = probs
        return out

"""Micro-batched BP execution: many queries, one sweep.

Concurrent queries against the same registered graph differ only in
their evidence clamps.  The batch runner materializes ``K`` disjoint
replicas of the graph inside **one** :class:`~repro.core.graph.BeliefGraph`
(block-diagonal adjacency, shared potential store), clamps each replica
with its query's evidence, and drives belief propagation over the union:
each iteration issues *one* vectorized kernel call covering every live
query's active elements instead of ``K`` separate Python-dispatched
sweeps.  That is the Gonzalez-style amortization the serving layer is
built around — graph residency and kernel dispatch are paid once per
batch, not once per query.

Correctness contract (the serve ↔ one-shot parity guarantee): replicas
are *disjoint*, so each query's update trajectory inside the union is
element-for-element the trajectory of a solo run.  To keep it bitwise
faithful the runner mirrors :class:`~repro.core.loopy.LoopyBP` exactly,
per replica:

* one **schedule instance per query** (same thresholds, seeds and
  parameters a solo run would build), fed only its replica's deltas and
  downstream sets, in replica-local element ids;
* the edge paradigm's intra-sweep freshness chunking is preserved by
  slicing each replica's active set with the *solo* chunk boundaries and
  concatenating the k-th chunks across replicas into one kernel call;
* per-replica convergence: a query's beliefs are snapshotted the moment
  *its* criterion passes, even while other queries keep iterating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.graph import BeliefGraph
from repro.core.loopy import LoopyConfig, _element_threshold_floor
from repro.core.observation import observe
from repro.core.potentials import PerEdgePotentialStore, SharedPotentialStore
from repro.core.scheduler import make_schedule
from repro.core.state import LoopyState
from repro.core.sweepstats import RunStats, SweepStats
from repro.kernels.executor import SweepExecutor, make_executor
from repro.telemetry import get_tracer

__all__ = ["BatchQueryRun", "replicate_graph", "reset_union", "run_batched"]


@dataclass
class BatchQueryRun:
    """Per-query outcome of one micro-batched execution."""

    beliefs: np.ndarray
    iterations: int
    converged: bool
    delta_history: list[float] = field(default_factory=list)
    #: operation counts of the *whole batched execution* (shared across
    #: the batch — union sweeps are joint kernel calls, so per-query
    #: attribution is not defined).  Includes the schedules' queue_ops,
    #: which the batched path used to drop on the floor.
    stats: SweepStats = field(default_factory=SweepStats)


def replicate_graph(graph: BeliefGraph, k: int) -> BeliefGraph:
    """``k`` disjoint copies of ``graph`` in one block-diagonal union.

    Replica ``q`` owns nodes ``[q*n, (q+1)*n)`` and edges
    ``[q*m, (q+1)*m)``.  The shared potential matrix stays shared across
    all replicas (one ``(b, b)`` matrix for ``k*m`` edges), which is what
    keeps the union's footprint near ``k×`` beliefs rather than ``k×``
    everything.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not graph.uniform:
        raise ValueError("micro-batching requires constant-width beliefs")
    n, m = graph.n_nodes, graph.n_edges
    priors = np.tile(np.asarray(graph.priors.dense(), dtype=np.float32), (k, 1))
    offsets_n = np.repeat(np.arange(k, dtype=np.int64) * n, m)
    src = np.tile(graph.src, k) + offsets_n
    dst = np.tile(graph.dst, k) + offsets_n
    rev = np.tile(graph.reverse_edge, k)
    paired = rev >= 0
    rev[paired] += np.repeat(np.arange(k, dtype=np.int64) * m, m)[paired]
    if graph.potentials.shared:
        pots = SharedPotentialStore(graph.potentials.matrix(0), k * m)
    else:
        pots = PerEdgePotentialStore(np.tile(graph.potentials.stacked(), (k, 1, 1)))
    return BeliefGraph(
        priors, src, dst, pots, reverse_edge=rev, layout=graph.layout
    )


def reset_union(union: BeliefGraph) -> None:
    """Return a cached union to its pristine (evidence-free) state."""
    union.observed[:] = False
    union.observed_state[:] = -1
    union.reset_beliefs()


def _chunk_slices(n_active: int, chunks: int) -> list[tuple[int, int]]:
    """The exact chunk boundaries :func:`edge_sweep` would use solo."""
    if n_active == 0:
        return []
    chunks = max(1, min(chunks, n_active))
    bounds = np.linspace(0, n_active, chunks + 1, dtype=np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(chunks)]


def _gather_out(graph: BeliefGraph, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Out-edge ids of ``nodes`` (concatenated) plus per-node sizes, in
    the *base* graph's local id space."""
    starts = graph.out_offsets[nodes]
    sizes = graph.out_offsets[nodes + 1] - starts
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), sizes
    seg_starts = np.repeat(starts, sizes)
    local = np.zeros(len(nodes), dtype=np.int64)
    np.cumsum(sizes[:-1], out=local[1:])
    rank = np.arange(total) - np.repeat(local, sizes)
    return graph.out_edge_ids[seg_starts + rank], sizes


def run_batched(
    graph: BeliefGraph,
    config: LoopyConfig,
    evidences: list,
    *,
    union: BeliefGraph | None = None,
) -> tuple[list[BatchQueryRun], BeliefGraph]:
    """Run ``len(evidences)`` BP queries in one batched execution.

    ``evidences[q]`` is a list of ``(node_id, state)`` clamps for query
    ``q``.  ``union`` optionally recycles a previously built replica
    graph of matching width (it is reset in place); the one used is
    returned for caching.  Results are index-aligned with ``evidences``.
    """
    k = len(evidences)
    if k == 0:
        raise ValueError("empty batch")
    n, m, b = graph.n_nodes, graph.n_edges, graph.n_states
    if union is None or union.n_nodes != k * n:
        union = replicate_graph(graph, k)
    else:
        reset_union(union)
    for q, evidence in enumerate(evidences):
        for node, state_ in evidence:
            observe(union, q * n + int(node), int(state_))

    state = LoopyState(union)
    # One executor for the whole batch, lowered against the union state
    # (the union-edge chunking below issues chunks=1 calls, so the edge
    # program is lowered accordingly).  A full-sync batch concatenates to
    # the union's complete element range, which is exactly the compiled
    # executor's fused fast path.
    executor = make_executor(
        config.executor,
        state,
        paradigm=config.paradigm,
        chunks=1 if config.paradigm == "edge" else config.edge_chunks,
    )
    crit: ConvergenceCriterion = config.criterion
    node_paradigm = config.paradigm == "node"
    if node_paradigm:
        n_elements = n
        element_threshold = max(
            crit.effective_threshold(), _element_threshold_floor(b)
        )
        node_threshold = crit.effective_threshold()
    else:
        n_elements = m
        mean_in_degree = max(m / max(n, 1), 1.0)
        node_threshold = crit.effective_threshold()
        element_threshold = max(
            node_threshold / mean_in_degree, _element_threshold_floor(b)
        )

    schedules = [
        make_schedule(
            config.schedule,
            n_elements,
            element_threshold,
            batch_fraction=config.batch_fraction,
            relaxation=config.relaxation,
            seed=config.schedule_seed,
        )
        for _ in range(k)
    ]
    want_downstream = config.requeue_downstream and schedules[0].wants_downstream

    tracer = get_tracer()
    run_stats = RunStats()
    results: list[BatchQueryRun | None] = [None] * k
    histories: list[list[float]] = [[] for _ in range(k)]
    live = list(range(k))
    iteration = 0
    while live and iteration < crit.max_iterations:
        iteration += 1
        actives = {q: schedules[q].active for q in live}
        sweep_span = tracer.span("serve.union_sweep", cat="serve")
        sweep_span.__enter__()
        if node_paradigm:
            deltas_by_q, iter_stats = _node_union_sweep(
                state, executor, config, live, actives, n
            )
            globals_by_q = {q: float(deltas_by_q[q].sum()) for q in live}
            for q in live:
                downstream = priority = None
                dq = deltas_by_q[q]
                if want_downstream and len(actives[q]):
                    dirty_mask = dq >= element_threshold
                    dirty = actives[q][dirty_mask]
                    if len(dirty):
                        out_eids, sizes = _gather_out(graph, dirty)
                        downstream = graph.dst[out_eids]
                        priority = np.repeat(dq[dirty_mask], sizes)
                schedules[q].update(actives[q], dq, downstream, priority)
        else:
            deltas_by_q, node_deltas_by_q, cand_by_q, iter_stats = _edge_union_sweep(
                state, executor, config, live, actives, graph, n, m
            )
            globals_by_q = {q: float(node_deltas_by_q[q].sum()) for q in live}
            for q in live:
                downstream = priority = None
                nd = node_deltas_by_q[q]
                if want_downstream and len(cand_by_q[q]):
                    changed_mask = nd >= node_threshold
                    changed = cand_by_q[q][changed_mask]
                    if len(changed):
                        downstream, sizes = _gather_out(graph, changed)
                        priority = np.repeat(nd[changed_mask], sizes)
                schedules[q].update(actives[q], deltas_by_q[q], downstream, priority)

        # the queue bookkeeping each replica's schedule performed this
        # round — previously dropped by the batched path entirely
        for q in live:
            schedules[q].charge(iter_stats)
        run_stats.append(iter_stats)
        if sweep_span:
            sweep_span.set(iteration=iteration, live=len(live),
                           executor=config.executor, layout=union.layout,
                           **iter_stats.as_dict())
        sweep_span.__exit__(None, None, None)

        still_live = []
        for q in live:
            histories[q].append(globals_by_q[q])
            schedule = schedules[q]
            converged = (
                schedule.exhaustive and crit.is_converged(globals_by_q[q])
            ) or schedule.drained
            if converged or iteration >= crit.max_iterations:
                results[q] = BatchQueryRun(
                    beliefs=state.beliefs[q * n : (q + 1) * n].copy(),
                    iterations=iteration,
                    converged=converged,
                    delta_history=histories[q],
                )
            else:
                still_live.append(q)
        live = still_live

    for q in range(k):  # max_iterations == 0 style edge cases
        if results[q] is None:
            results[q] = BatchQueryRun(
                beliefs=state.beliefs[q * n : (q + 1) * n].copy(),
                iterations=iteration,
                converged=False,
                delta_history=histories[q],
            )
    # The union's belief store is NOT written back: per-query posteriors
    # were snapshotted at each query's own convergence point, and a
    # recycled union is reset from its priors before reuse anyway.
    total = run_stats.total
    for run in results:
        run.stats = total
    return results, union


def _node_union_sweep(
    state: LoopyState,
    executor: SweepExecutor,
    config: LoopyConfig,
    live: list[int],
    actives: dict[int, np.ndarray],
    n: int,
) -> tuple[dict[int, np.ndarray], SweepStats]:
    """One node-paradigm sweep over every live replica's active nodes."""
    parts = [actives[q] + q * n for q in live if len(actives[q])]
    stats = SweepStats()
    if parts:
        union_active = parts[0] if len(parts) == 1 else np.concatenate(parts)
        deltas, stats = executor.node_sweep(
            state,
            union_active,
            update_rule=config.update_rule,
            semiring=config.semiring,
            damping=config.damping,
        )
    else:
        deltas = np.empty(0, dtype=np.float32)
    out: dict[int, np.ndarray] = {}
    offset = 0
    for q in live:
        count = len(actives[q])
        out[q] = deltas[offset : offset + count]
        offset += count
    return out, stats


def _edge_union_sweep(
    state: LoopyState,
    executor: SweepExecutor,
    config: LoopyConfig,
    live: list[int],
    actives: dict[int, np.ndarray],
    graph: BeliefGraph,
    n: int,
    m: int,
):
    """One edge-paradigm sweep preserving per-replica chunk freshness.

    Chunk ``j`` of every replica runs in one kernel call; within a
    replica the chunk boundaries are exactly the solo boundaries, so the
    intra-sweep freshness (later chunks seeing earlier chunks' belief
    updates) matches a solo run chunk for chunk.
    """
    # Snapshot the beliefs each replica's sweep can change (solo: the
    # _EdgePlan candidate set), for the global convergence reduction.
    cand_by_q: dict[int, np.ndarray] = {}
    before_by_q: dict[int, np.ndarray] = {}
    for q in live:
        active = actives[q]
        if len(active):
            mask = np.zeros(n, dtype=bool)
            mask[graph.dst[active]] = True
            candidates = np.flatnonzero(mask)
        else:
            candidates = np.empty(0, dtype=np.int64)
        cand_by_q[q] = candidates
        before_by_q[q] = state.beliefs[candidates + q * n].copy()

    slices_by_q = {q: _chunk_slices(len(actives[q]), config.edge_chunks) for q in live}
    deltas_by_q = {
        q: np.empty(len(actives[q]), dtype=np.float32) for q in live
    }
    stats = SweepStats()
    max_chunks = max((len(s) for s in slices_by_q.values()), default=0)
    for j in range(max_chunks):
        pieces = []
        spans = []
        for q in live:
            slices = slices_by_q[q]
            if j >= len(slices):
                continue
            lo, hi = slices[j]
            if lo == hi:
                continue
            pieces.append(actives[q][lo:hi] + q * m)
            spans.append((q, lo, hi))
        if not pieces:
            continue
        union_chunk = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        chunk_deltas, _touched, chunk_stats = executor.edge_sweep(
            state,
            union_chunk,
            update_rule=config.update_rule,
            semiring=config.semiring,
            damping=config.damping,
            chunks=1,
        )
        stats += chunk_stats
        offset = 0
        for q, lo, hi in spans:
            deltas_by_q[q][lo:hi] = chunk_deltas[offset : offset + (hi - lo)]
            offset += hi - lo

    node_deltas_by_q = {
        q: np.abs(
            state.beliefs[cand_by_q[q] + q * n] - before_by_q[q]
        ).sum(axis=1)
        for q in live
    }
    return deltas_by_q, node_deltas_by_q, cand_by_q, stats

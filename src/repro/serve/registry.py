"""Model registry: graphs resident once, selection amortized.

The one-shot path (``credo run``) re-loads the graph, re-extracts
metadata features and re-selects a backend for every query.  A serving
deployment amortizes all three: :class:`ModelRegistry` loads each graph
exactly once (BIF / XML-BIF / MTX via :mod:`repro.io`), computes its
metadata features, and freezes Credo's backend + schedule choice into an
:class:`~repro.credo.runner.ExecutionPlan` reused by every request
against that graph.

Every registered model carries a monotonically increasing *generation*;
:meth:`reload` bumps it, which atomically invalidates result-cache
entries (the generation is part of the cache key).  Mutable models
additionally carry per-shard update generations: :meth:`update` applies
a :class:`~repro.stream.delta.GraphDelta` in place, bumping only the
slots of the shards the delta touches — the full signature
(:meth:`RegisteredModel.generation_signature`) is what cache keys embed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.graph import BeliefGraph
from repro.credo.features import extract_features
from repro.credo.runner import Credo, ExecutionPlan
from repro.io.detect import load_graph

__all__ = ["RegisteredModel", "ModelRegistry", "UnknownModelError"]


class UnknownModelError(KeyError):
    """No model with that name is registered."""


@dataclass
class RegisteredModel:
    """One resident graph plus its amortized serving state."""

    name: str
    graph: BeliefGraph  #: pristine master copy — never carries evidence
    plan: ExecutionPlan
    features: np.ndarray
    generation: int
    source: str | None = None
    edge_source: str | None = None
    load_time_s: float = 0.0
    select_time_s: float = 0.0
    registered_at: float = field(default_factory=time.time)
    #: the partitioned master (``repro.core.sharded.ShardedGraph``) when
    #: the plan is sharded — built once at registration, queries take
    #: cheap :meth:`~repro.core.sharded.ShardedGraph.instance` views
    sharded: Any = None
    #: per-shard update generations (one slot for unsharded models);
    #: ``update`` bumps only the slots a delta's dirty region touches
    shard_generations: tuple = ()
    #: cumulative ``update`` deltas applied since registration
    updates_applied: int = 0
    #: per-batch-width replica graphs, reused across micro-batches
    #: (managed by the engine; dropped on reload)
    union_cache: dict[int, Any] = field(default_factory=dict)
    #: serializes execution against this model's cached unions
    lock: threading.Lock = field(default_factory=threading.Lock)

    def generation_signature(self) -> tuple:
        """The cache-key generation component: registration generation
        plus every per-shard update generation.

        BP posteriors are globally coupled — a structural change anywhere
        can, in principle, move any posterior — so cached results must
        key on the *full* signature: any shard bump invalidates every
        entry for the model.  The per-shard scoping pays off elsewhere:
        execution-state reuse (partition extension, preserved compiled
        lowerings) and observability of which shards churn.
        """
        return (self.generation, *self.shard_generations)

    def describe(self) -> dict:
        """Plain-dict summary (the ``{"op": "models"}`` response)."""
        info = {
            "name": self.name,
            "generation": self.generation,
            "shard_generations": list(self.shard_generations),
            "updates_applied": int(self.updates_applied),
            "n_nodes": int(self.graph.n_nodes),
            "n_edges": int(self.graph.n_edges),
            "n_states": int(self.graph.n_states),
            "backend": self.plan.backend,
            "schedule": self.plan.schedule,
            "source": self.source,
            "load_time_s": self.load_time_s,
            "select_time_s": self.select_time_s,
        }
        if self.sharded is not None:
            part = self.sharded.partition
            info.update(
                shards=int(self.sharded.n_shards),
                partitioner=part.method,
                cut_fraction=float(part.cut_fraction),
                shard_balance=float(part.balance),
                shard_policy=self.plan.policy,
                staleness=int(self.plan.staleness),
            )
        return info


class ModelRegistry:
    """Thread-safe name → :class:`RegisteredModel` map."""

    def __init__(
        self,
        credo: Credo,
        *,
        backend: str | None = None,
        shards: int | None = 1,
        partitioner: str | None = None,
        shard_policy: str | None = None,
        staleness: int | None = None,
    ):
        self._credo = credo
        self._backend = backend  # optional pin forwarded to Credo.plan
        self._shards = shards  # 1 = never shard, None = selector decides
        self._partitioner = partitioner
        self._shard_policy = shard_policy
        self._staleness = staleness
        self._models: dict[str, RegisteredModel] = {}
        self._lock = threading.Lock()
        self._generation = 0

    # -- registration ---------------------------------------------------
    def load(
        self,
        name: str,
        path: str | Path,
        edge_path: str | Path | None = None,
    ) -> RegisteredModel:
        """Parse a graph file and register it under ``name``."""
        start = time.perf_counter()
        graph = load_graph(path, edge_path)
        load_time = time.perf_counter() - start
        model = self.register(name, graph)
        model.source = str(path)
        model.edge_source = None if edge_path is None else str(edge_path)
        model.load_time_s = load_time
        return model

    def register(self, name: str, graph: BeliefGraph) -> RegisteredModel:
        """Register an in-memory graph; selection runs once, here."""
        if graph.observed.any():
            raise ValueError(
                "registered graphs must be evidence-free; per-request "
                "evidence is applied on isolated views"
            )
        start = time.perf_counter()
        features = extract_features(graph)
        plan = self._credo.plan(
            graph,
            backend=self._backend,
            # sharding needs uniform beliefs; heterogeneous networks fall
            # back to the single-engine path rather than failing to load
            shards=self._shards if graph.uniform else 1,
            partitioner=self._partitioner,
            policy=self._shard_policy,
            staleness=self._staleness,
        )
        sharded = None
        if plan.sharded:
            # partition once, here — every query takes an instance() view
            from repro.core.sharded import ShardedGraph

            sharded = ShardedGraph.build(
                graph, n_shards=plan.shards, method=plan.partitioner or "bfs"
            )
        select_time = time.perf_counter() - start
        with self._lock:
            self._generation += 1
            model = RegisteredModel(
                name=name,
                graph=graph,
                plan=plan,
                features=features,
                generation=self._generation,
                select_time_s=select_time,
                sharded=sharded,
                shard_generations=(0,)
                * (sharded.partition.n_shards if sharded is not None else 1),
            )
            self._models[name] = model
        return model

    def update(self, name: str, delta) -> tuple[RegisteredModel, Any]:
        """Apply a :class:`~repro.stream.delta.GraphDelta` to a model.

        Only the per-shard generations of the shards the delta's dirty
        region touches are bumped (the generation signature still
        changes as a whole — see
        :meth:`RegisteredModel.generation_signature`).  On sharded
        models, structural deltas extend the existing partition
        (:func:`repro.partition.extend_partition`) instead of
        repartitioning, so untouched shards keep their node sets.
        Returns ``(model, DeltaResult)``.
        """
        from repro.stream.delta import GraphDelta, apply_delta

        if isinstance(delta, dict):
            delta = GraphDelta.from_payload(delta)
        if delta.observe or delta.release:
            raise ValueError(
                "registered models stay evidence-free; send evidence with "
                "queries, not updates"
            )
        model = self.get(name)
        with model.lock:
            result = apply_delta(model.graph, delta)
            if model.sharded is not None:
                from repro.core.sharded import ShardedGraph

                from repro.partition import extend_partition

                part = extend_partition(model.sharded.partition, result.graph)
                touched = (
                    {int(s) for s in np.unique(part.assignment[result.dirty_nodes])}
                    if len(result.dirty_nodes)
                    else set()
                )
                model.sharded = ShardedGraph.build(result.graph, part)
                width = part.n_shards
            else:
                touched = {0} if not delta.empty else set()
                width = 1
            gens = list(model.shard_generations)
            gens.extend(0 for _ in range(width - len(gens)))
            for shard in touched:
                gens[shard] += 1
            model.shard_generations = tuple(gens)
            model.graph = result.graph
            model.features = extract_features(result.graph)
            model.union_cache.clear()
            model.updates_applied += 1
        return model, result

    def reload(self, name: str) -> RegisteredModel:
        """Re-parse a file-backed model; bumps the generation.

        The new generation makes every cached result for the old graph
        unreachable (the cache key embeds it), so a reload is a safe,
        atomic swap even with queries in flight against the old entry.
        """
        old = self.get(name)
        if old.source is None:
            raise ValueError(f"model {name!r} was registered in-memory; cannot reload")
        return self.load(name, old.source, old.edge_source)

    def unregister(self, name: str) -> None:
        with self._lock:
            if self._models.pop(name, None) is None:
                raise UnknownModelError(name)

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> RegisteredModel:
        with self._lock:
            try:
                return self._models[name]
            except KeyError:
                raise UnknownModelError(name) from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def describe(self) -> list[dict]:
        with self._lock:
            models = list(self._models.values())
        return [m.describe() for m in models]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

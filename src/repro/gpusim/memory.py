"""Device memory accounting (paper §2.3, Figure 2).

Tracks named allocations against VRAM capacity (global memory) and the
small constant-memory cache, and provides the coalescing model used by the
kernel cost functions: sequential (unit-stride) accesses stream at full
bandwidth, while data-dependent gathers pay per 32-byte transaction sector
— the mechanism behind the per-node paradigm's "lookups occur[ing] in
random order, hampering effective caching" (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.arch import DeviceSpec

__all__ = ["GpuOutOfMemoryError", "MemoryTracker", "sequential_time", "random_time"]


class GpuOutOfMemoryError(MemoryError):
    """Raised when an allocation exceeds device capacity (the paper's
    TW/OR-at-32-beliefs situation, §4.2)."""

    def __init__(self, requested: int, in_use: int, capacity: int, space: str):
        super().__init__(
            f"{space} memory exhausted: requested {requested} bytes with "
            f"{in_use} in use of {capacity}"
        )
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        self.space = space


@dataclass
class MemoryTracker:
    """Named allocations in one memory space."""

    capacity: int
    space: str = "global"
    allocations: dict[str, int] = field(default_factory=dict)
    #: number of allocation calls — each pays the driver overhead (§4.1:
    #: "GPU memory management overhead alone accounts for 99.8% of the
    #: CUDA execution time" on the smallest benchmark)
    alloc_calls: int = 0
    peak: int = 0

    @property
    def in_use(self) -> int:
        """Bytes currently allocated."""
        return sum(self.allocations.values())

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; raises on OOM/duplicates."""
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists in {self.space}")
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.in_use + nbytes > self.capacity:
            raise GpuOutOfMemoryError(nbytes, self.in_use, self.capacity, self.space)
        self.allocations[name] = nbytes
        self.alloc_calls += 1
        self.peak = max(self.peak, self.in_use)

    def free(self, name: str) -> int:
        """Release the named allocation; returns its size."""
        try:
            return self.allocations.pop(name)
        except KeyError:
            raise KeyError(f"no allocation named {name!r} in {self.space}") from None

    def free_all(self) -> None:
        """Release every allocation."""
        self.allocations.clear()


def sequential_time(device: DeviceSpec, nbytes: int) -> float:
    """Seconds to stream ``nbytes`` of coalesced global-memory traffic."""
    return nbytes / device.mem_bandwidth


def random_time(device: DeviceSpec, n_accesses: int, access_bytes: float) -> float:
    """Seconds for ``n_accesses`` data-dependent gathers of ``access_bytes``
    each.

    Every gather touches at least one full transaction sector, so small
    scattered reads waste bandwidth by ``sector/access`` — large belief
    vectors (32 beliefs = 128 B = 4 sectors) coalesce naturally, tiny ones
    (2 beliefs = 8 B) pay 4×.  This is why the Node paradigm's relative
    penalty *shrinks* as beliefs grow (§4.1.1, Figure 8).
    """
    if n_accesses <= 0:
        return 0.0
    sectors = max(1.0, access_bytes / device.sector_bytes)
    effective = n_accesses * sectors * device.sector_bytes
    return effective / device.mem_bandwidth

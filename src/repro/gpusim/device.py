"""The simulated GPU device: allocations, transfers, kernel launches and a
monotone simulated clock.

:class:`GpuDevice` is the object the CUDA backends program against.  It
mirrors the lifecycle of a real CUDA application — allocate buffers
(paying driver overhead), copy the graph up, launch kernels, read the
convergence scalar back — while accumulating modeled seconds on
``elapsed``.  Numerical work happens elsewhere (NumPy); the device only
keeps time and enforces capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sweepstats import SweepStats
from repro.gpusim.arch import DeviceSpec, get_device
from repro.gpusim.kernel import KernelCost, launch_cost
from repro.gpusim.memory import GpuOutOfMemoryError, MemoryTracker
from repro.gpusim.transfer import transfer_time
from repro.telemetry import get_tracer

__all__ = ["GpuDevice", "GpuOutOfMemoryError", "TimeBreakdown"]


@dataclass
class TimeBreakdown:
    """Where the modeled seconds went (the §4.1.1 decomposition)."""

    allocation: float = 0.0
    transfer: float = 0.0
    launch: float = 0.0
    compute: float = 0.0
    memory: float = 0.0
    atomics: float = 0.0
    reduction: float = 0.0
    queue: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all components (compute/memory via roofline max)."""
        return (
            self.allocation
            + self.transfer
            + self.launch
            + max(self.compute, 0.0)
            + self.memory
            + self.atomics
            + self.reduction
            + self.queue
        )

    @property
    def management_fraction(self) -> float:
        """Fraction of total spent on memory management + transfers — the
        quantity the paper reports as 99.8 % for the smallest benchmark
        and ~71 % on average for graphs ≥ 100 k nodes (§4.1.1)."""
        total = self.total
        return (self.allocation + self.transfer) / total if total > 0 else 0.0


@dataclass
class GpuDevice:
    """One simulated GPU with a running clock."""

    spec: DeviceSpec | str = "gtx1070"
    elapsed: float = 0.0
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)

    def __post_init__(self) -> None:
        self.spec = get_device(self.spec)
        self.global_mem = MemoryTracker(self.spec.vram_bytes, "global")
        self.constant_mem = MemoryTracker(self.spec.constant_mem_bytes, "constant")
        self.kernel_count = 0
        # One modeled-time trace lane per device ("cuda:N (<spec>)");
        # a NullLane when tracing is off, so emits below are inert.
        self._lane = get_tracer().lane("cuda", label=self.spec.name)
        # Context creation happens once per process; it dominates small
        # workloads (§4.1.1's 99.8 % management fraction).
        start = self.elapsed
        self.elapsed += self.spec.context_init_seconds
        self.breakdown.allocation += self.spec.context_init_seconds
        self._lane.emit("context_init", start, self.spec.context_init_seconds,
                        thread="driver", cat="gpusim")

    # -- memory ----------------------------------------------------------
    def alloc(self, name: str, nbytes: int, *, space: str = "global") -> None:
        """Allocate a named buffer, paying the driver overhead."""
        tracker = self.constant_mem if space == "constant" else self.global_mem
        tracker.alloc(name, nbytes)
        start = self.elapsed
        self.elapsed += self.spec.alloc_overhead_seconds
        self.breakdown.allocation += self.spec.alloc_overhead_seconds
        if self._lane:
            self._lane.emit(f"alloc {name}", start,
                            self.spec.alloc_overhead_seconds,
                            thread="driver", cat="gpusim",
                            args={"bytes": int(nbytes), "space": space})

    def free(self, name: str, *, space: str = "global") -> None:
        """Release a named device buffer."""
        tracker = self.constant_mem if space == "constant" else self.global_mem
        tracker.free(name)

    def fits(self, nbytes: int) -> bool:
        """Would ``nbytes`` more global memory fit right now?"""
        return self.global_mem.in_use + nbytes <= self.global_mem.capacity

    # -- transfers ---------------------------------------------------------
    def h2d(self, nbytes: int, *, calls: int = 1) -> float:
        """Account a host-to-device transfer; returns its modeled seconds."""
        dt = transfer_time(self.spec, nbytes, calls=calls)
        start = self.elapsed
        self.elapsed += dt
        self.breakdown.transfer += dt
        if self._lane:
            self._lane.emit("h2d", start, dt, thread="pcie", cat="gpusim",
                            args={"bytes": int(nbytes), "calls": calls})
        return dt

    def d2h(self, nbytes: int, *, calls: int = 1) -> float:
        """Account a device-to-host transfer; returns its modeled seconds."""
        dt = transfer_time(self.spec, nbytes, calls=calls)
        start = self.elapsed
        self.elapsed += dt
        self.breakdown.transfer += dt
        if self._lane:
            self._lane.emit("d2h", start, dt, thread="pcie", cat="gpusim",
                            args={"bytes": int(nbytes), "calls": calls})
        return dt

    # -- kernels -----------------------------------------------------------
    def launch(
        self,
        stats: SweepStats,
        *,
        threads_per_block: int = 1024,
        random_access_bytes: float | None = None,
    ) -> KernelCost:
        """Account one sweep's kernels; returns the cost breakdown."""
        if threads_per_block > self.spec.max_threads_per_block:
            raise ValueError(
                f"block size {threads_per_block} exceeds device limit "
                f"{self.spec.max_threads_per_block}"
            )
        cost = launch_cost(
            self.spec,
            stats,
            threads_per_block=threads_per_block,
            random_access_bytes=random_access_bytes,
        )
        start = self.elapsed
        self.elapsed += cost.total
        self.breakdown.launch += cost.launch
        # roofline: only the binding side accrues
        if cost.compute >= cost.memory:
            self.breakdown.compute += cost.compute
        else:
            self.breakdown.memory += cost.memory
        self.breakdown.atomics += cost.atomics
        self.breakdown.reduction += cost.reduction
        self.breakdown.queue += cost.queue
        self.kernel_count += max(stats.kernel_launches, 1)
        if self._lane:
            # full KernelCost decomposition — including the queue-
            # maintenance cycles that TimeBreakdown alone lets callers
            # overlook (they now travel with every traced launch)
            self._lane.emit(
                "kernel", start, cost.total, thread="kernels", cat="gpusim",
                args={
                    "launch_s": cost.launch,
                    "compute_s": cost.compute,
                    "memory_s": cost.memory,
                    "atomics_s": cost.atomics,
                    "reduction_s": cost.reduction,
                    "queue_s": cost.queue,
                    "launches": max(stats.kernel_launches, 1),
                    "nodes": stats.nodes_processed,
                    "edges": stats.edges_processed,
                    "queue_ops": stats.queue_ops,
                },
            )
        return cost

    def reset(self) -> None:
        """Clear clock and memory (a fresh process, context re-created)."""
        self.elapsed = self.spec.context_init_seconds
        self.breakdown = TimeBreakdown(allocation=self.spec.context_init_seconds)
        self.global_mem.free_all()
        self.constant_mem.free_all()
        self.kernel_count = 0
        # new simulated epoch: keep trace timestamps monotone on the lane
        self._lane.reanchor()
        self._lane.emit("context_init", 0.0, self.spec.context_init_seconds,
                        thread="driver", cat="gpusim")

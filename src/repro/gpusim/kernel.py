"""Kernel execution cost model (paper §2.3, §3.6).

A kernel sweep is characterized by the operation counts the BP kernels
emit (:class:`~repro.core.sweepstats.SweepStats`).  Its modeled runtime is
the classic roofline decomposition:

    t = launch + max(t_compute, t_memory) + t_atomics + t_reduction

* compute: flops against the device's single-precision peak, derated for
  warp divergence on irregular work;
* memory: sequential traffic at full bandwidth plus sector-granular
  gathers (:func:`repro.gpusim.memory.random_time`) plus a latency floor
  when the grid is too small to hide memory latency — the reason "the
  various overheads involved with GPGPU execution … prohibit the CUDA
  implementations' performance" below 100 k nodes (§4.1.1);
* atomics: the §3.3 contention model;
* reduction: the convergence sum, performed in shared memory per block
  (§3.6) and therefore cheap but not free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sweepstats import SweepStats
from repro.gpusim.arch import DeviceSpec
from repro.gpusim.atomics import atomic_cost
from repro.gpusim.memory import random_time, sequential_time

__all__ = ["KernelCost", "launch_cost"]

#: fraction of peak flops irregular graph kernels sustain (divergence,
#: non-FMA ops); order-of-magnitude from graph-processing literature
_COMPUTE_EFFICIENCY = 0.25
#: shared-memory reduction cost per element folded, cycles
_REDUCTION_CYCLES_PER_ELEM = 1.5
#: per-thread state budget (bytes) sustaining full occupancy; beyond it,
#: register pressure/local spills cut resident warps proportionally
_FULL_OCCUPANCY_STATE_BYTES = 192.0
#: cycles per scheduler queue operation (clear/index write/pointer bump);
#: distinct from atomic_ops, which the contention model prices
_QUEUE_CYCLES_PER_OP = 4.0


@dataclass(frozen=True)
class KernelCost:
    """Breakdown of one sweep's modeled time (seconds)."""

    launch: float
    compute: float
    memory: float
    atomics: float
    reduction: float
    queue: float = 0.0

    @property
    def total(self) -> float:
        """Roofline total: launch + max(compute, memory) + atomics +
        reduction + queue maintenance."""
        return (
            self.launch
            + max(self.compute, self.memory)
            + self.atomics
            + self.reduction
            + self.queue
        )


def launch_cost(
    device: DeviceSpec,
    stats: SweepStats,
    *,
    threads_per_block: int = 1024,
    random_access_bytes: float | None = None,
) -> KernelCost:
    """Model the time of one sweep's kernels on ``device``.

    ``random_access_bytes`` is the typical size of one gather (a belief
    vector); when omitted it is inferred from the stats' random traffic.
    """
    n_items = max(stats.nodes_processed, stats.edges_processed)
    # A fused executor collapses a sweep's gather / product / scatter /
    # combine programs into fewer launches; the stat is 0 unless the
    # compiled executor ran, so interpreted runs are priced as before.
    launches = max(
        stats.fused_launches if stats.fused_launches else stats.kernel_launches, 1
    )
    launch = launches * device.kernel_launch_seconds

    if random_access_bytes is None or random_access_bytes <= 0:
        random_access_bytes = 32.0

    # Occupancy: wide belief vectors inflate per-thread state (registers +
    # local arrays), shrinking resident warps and exposing latency — the
    # mechanism that erodes the Node paradigm's advantage past a few
    # beliefs (§4.1.1, Fig. 8).
    thread_state_bytes = 3.0 * random_access_bytes  # cavity + message + accum
    occupancy = min(1.0, _FULL_OCCUPANCY_STATE_BYTES / max(thread_state_bytes, 1.0))
    occupancy = max(occupancy, 0.25)

    compute = stats.flops / (device.peak_flops * _COMPUTE_EFFICIENCY * occupancy)

    n_gathers = stats.random_accesses
    if n_gathers == 0 and stats.random_bytes:
        n_gathers = int(stats.random_bytes / random_access_bytes)
    memory = (
        sequential_time(device, stats.sequential_bytes)
        + random_time(device, n_gathers, random_access_bytes)
    ) / occupancy
    # Latency floor: with too few warps in flight, loads cannot be hidden.
    warps = max(1, (n_items + device.warp_size - 1) // device.warp_size)
    max_resident_warps = device.sm_count * 64 * occupancy
    if warps < max_resident_warps and n_items:
        exposed = device.global_latency_cycles * (1.0 - warps / max_resident_warps)
        memory += device.cycles_to_seconds(exposed * launches)

    # Atomic targets: the touched destination nodes (each edge's combine
    # lands on its destination's accumulator line).
    n_targets = max(1, stats.nodes_processed)
    atomics = atomic_cost(device, stats.atomic_ops, n_targets)

    reduction = device.cycles_to_seconds(
        stats.reduction_elems * _REDUCTION_CYCLES_PER_ELEM / device.sm_count
    )

    # Scheduler queue maintenance (§3.5 and the residual/relaxed
    # extensions): non-atomic index writes and pointer bumps, spread
    # across the SMs.  Heap-order contention shows up in atomic_ops.
    queue = device.cycles_to_seconds(
        stats.queue_ops * _QUEUE_CYCLES_PER_OP / device.sm_count
    )
    return KernelCost(
        launch=launch,
        compute=compute,
        memory=memory,
        atomics=atomics,
        reduction=reduction,
        queue=queue,
    )

"""Atomic-operation contention model (paper §3.3, §4.1.1, §4.4).

"With the edge approach, a child node may have many parents and thus must
combine each edge's contribution to its new state atomically to avoid race
conditions."  Colliding atomics on one address serialize; the expected
collision depth scales with the average number of contributions per
destination entry (the mean in-degree of the touched nodes).

On Volta, independent thread scheduling and improved L2 atomics make both
the base cost and the serialization penalty markedly smaller — §4.4's
"the overhead for the atomic operations is lower on this architecture",
which is what lets CUDA Edge overtake CUDA Node in 8.3 % more benchmarks.
"""

from __future__ import annotations

from repro.gpusim.arch import DeviceSpec

__all__ = ["atomic_cost"]


#: serialization depth beyond which the scheduler's warp interleaving
#: hides further same-address collisions
_CONTENTION_CAP = 8.0


def atomic_cost(
    device: DeviceSpec,
    n_atomics: int,
    n_targets: int,
) -> float:
    """Seconds of added latency for ``n_atomics`` atomic transactions
    spread over ``n_targets`` distinct destinations.

    The device-wide throughput divides over the SMs; contention
    ``c = n_atomics / n_targets`` adds up to ``cap`` serialization steps
    per transaction on average (deeper collision chains overlap with
    other warps' progress and stop hurting).
    """
    if n_atomics <= 0:
        return 0.0
    contention = n_atomics / max(n_targets, 1)
    cycles_per_op = device.atomic_base_cycles + device.atomic_serialize_cycles * min(
        max(contention - 1.0, 0.0), _CONTENTION_CAP
    )
    # Atomic units pipeline across SMs: n_atomics ops issue device-wide.
    total_cycles = n_atomics * cycles_per_op / device.sm_count
    return device.cycles_to_seconds(total_cycles)

"""A SIMT GPU cost-model simulator (paper §2.3).

The paper's CUDA implementations ran on real NVIDIA hardware (a Pascal
GTX 1070, later a Volta V100).  This substrate stands in for that
hardware: it models the architectural quantities the paper's analysis
turns on —

* the SMX / thread-block / warp execution hierarchy and kernel-launch
  overhead (§2.3, Figure 2);
* the memory hierarchy: global memory bandwidth with coalescing
  (32-byte sectors), the constant-memory cache that holds the shared
  joint-probability matrix (§3.6), shared memory for the reductive sum;
* atomic-operation serialization under contention (§3.3's central
  trade-off);
* PCIe host↔device transfers with batching (§3.6);
* VRAM capacity limits (the TW/OR graphs "exceed the GPU's VRAM", §4.2);
* per-architecture differences: Volta's independent thread scheduling,
  cheaper atomics and higher memory bandwidth (§4.4).

Numerical results are always computed exactly (by the NumPy kernels); the
simulator only accounts *time*, deterministically.
"""

from repro.gpusim.arch import DeviceSpec, GTX1070, V100, A100, DEVICES, get_device
from repro.gpusim.device import GpuDevice, GpuOutOfMemoryError
from repro.gpusim.kernel import KernelCost, launch_cost
from repro.gpusim.atomics import atomic_cost
from repro.gpusim.multi import (
    INTERCONNECTS,
    NVLINK,
    PCIE_P2P,
    InterconnectSpec,
    MultiGpuDevice,
    get_interconnect,
)
from repro.gpusim.transfer import transfer_time

__all__ = [
    "DeviceSpec",
    "GTX1070",
    "V100",
    "A100",
    "DEVICES",
    "get_device",
    "GpuDevice",
    "GpuOutOfMemoryError",
    "KernelCost",
    "launch_cost",
    "atomic_cost",
    "transfer_time",
    "InterconnectSpec",
    "MultiGpuDevice",
    "INTERCONNECTS",
    "NVLINK",
    "PCIE_P2P",
    "get_interconnect",
]

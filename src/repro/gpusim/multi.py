"""Multi-GPU cost simulation: per-shard devices + interconnect exchange.

Extends the single-device simulator (DESIGN.md §5) to the sharded
execution model of §9: each shard's kernels run on its own
:class:`~repro.gpusim.device.GpuDevice`, devices advance in lockstep
(bulk-synchronous rounds — the slowest device sets the round time), and
boundary payloads move over a modeled device-to-device interconnect
instead of PCIe-to-host.  The stale-synchronous mode (``begin_async`` /
``async_launch`` / ``async_exchange`` / ``finish_async``) drops the
per-round barrier entirely: devices run on private clocks, halo traffic
occupies the link concurrently with compute, and the wall clock is the
busiest device or the link — whichever dominates.

Two interconnect presets bracket the design space the multi-GPU BP
literature cares about:

``NVLINK``
    NVLink 2.0-class peer links: ~25 GB/s per direction per link,
    microsecond-scale latency.  Exchange is rarely the bottleneck.

``PCIE_P2P``
    PCIe 3.0 x16 peer-to-peer: ~11 GB/s shared, higher latency.  On
    high-cut partitions the exchange term becomes visible — which is
    exactly why the partition layer measures cut fractions instead of
    assuming them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.sweepstats import SweepStats
from repro.gpusim.arch import DeviceSpec, get_device
from repro.gpusim.device import GpuDevice
from repro.telemetry import get_tracer

__all__ = [
    "INTERCONNECTS",
    "InterconnectSpec",
    "MultiGpuDevice",
    "NVLINK",
    "PCIE_P2P",
    "get_interconnect",
]


@dataclass(frozen=True)
class InterconnectSpec:
    """One device-to-device link's cost parameters."""

    name: str
    #: per-exchange-round fixed latency, seconds
    latency: float
    #: peer bandwidth per device, bytes/second
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("bad interconnect parameters")


NVLINK = InterconnectSpec("nvlink", latency=1.8e-6, bandwidth=25e9)
PCIE_P2P = InterconnectSpec("pcie-p2p", latency=5.0e-6, bandwidth=11e9)

INTERCONNECTS: dict[str, InterconnectSpec] = {
    "nvlink": NVLINK,
    "pcie": PCIE_P2P,
    "pcie-p2p": PCIE_P2P,
}


def get_interconnect(spec: InterconnectSpec | str) -> InterconnectSpec:
    """Resolve a name or pass a spec through."""
    if isinstance(spec, InterconnectSpec):
        return spec
    try:
        return INTERCONNECTS[spec]
    except KeyError:
        raise KeyError(
            f"unknown interconnect {spec!r}; known: {sorted(INTERCONNECTS)}"
        ) from None


class MultiGpuDevice:
    """``n_devices`` simulated GPUs advancing in bulk-synchronous lockstep.

    ``elapsed`` is the modeled *wall clock*: per phase, the slowest
    device's time (devices work concurrently), plus the interconnect
    exchanges, which are charged globally.  Each member device also keeps
    its own private clock and breakdown for straggler analysis.
    """

    def __init__(
        self,
        spec: DeviceSpec | str = "gtx1070",
        *,
        n_devices: int = 2,
        interconnect: InterconnectSpec | str = NVLINK,
    ):
        if n_devices < 1:
            raise ValueError("n_devices must be at least 1")
        self.spec = get_device(spec)
        self.interconnect = get_interconnect(interconnect)
        self.devices = [GpuDevice(self.spec) for _ in range(n_devices)]
        # contexts initialize concurrently across devices: wall time is
        # one context_init, not n of them
        self.elapsed = self.spec.context_init_seconds
        self.exchange_time = 0.0
        self.exchange_bytes = 0
        self.exchange_rounds = 0
        # modeled lane for the device-to-device link (the devices each
        # own a "cuda:N" lane already)
        self._lane = get_tracer().lane(
            "interconnect", label=self.interconnect.name
        )

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------
    def lockstep(self, fns: Sequence[Callable[[GpuDevice], object] | None]) -> float:
        """Run one per-device operation on each device's private clock and
        advance the wall clock by the slowest; returns that round time."""
        if len(fns) != len(self.devices):
            raise ValueError("one operation per device required")
        dt = 0.0
        for device, fn in zip(self.devices, fns):
            if fn is None:
                continue
            before = device.elapsed
            fn(device)
            dt = max(dt, device.elapsed - before)
        self.elapsed += dt
        return dt

    def launch_round(
        self,
        stats: Sequence[SweepStats | None],
        *,
        threads_per_block: int = 1024,
        random_access_bytes: float | None = None,
    ) -> float:
        """One bulk-synchronous sweep round: every device launches its
        shard's kernels; the straggler sets the round time."""
        return self.lockstep(
            [
                (
                    None
                    if s is None
                    else (
                        lambda d, s=s: d.launch(
                            s,
                            threads_per_block=threads_per_block,
                            random_access_bytes=random_access_bytes,
                        )
                    )
                )
                for s in stats
            ]
        )

    def exchange(self, total_bytes: float, max_device_bytes: float | None = None) -> float:
        """One boundary-exchange round over the interconnect.

        Peer transfers post concurrently; the heaviest device's in+out
        traffic bounds the round (``max_device_bytes``, defaulting to an
        even split of ``total_bytes``).
        """
        if max_device_bytes is None:
            max_device_bytes = total_bytes / max(self.n_devices, 1)
        dt = self.interconnect.latency + max_device_bytes / self.interconnect.bandwidth
        start = self.elapsed
        self.elapsed += dt
        self.exchange_time += dt
        self.exchange_bytes += int(total_bytes)
        self.exchange_rounds += 1
        if self._lane:
            self._lane.emit("exchange", start, dt, thread="link", cat="gpusim",
                            args={"bytes": int(total_bytes),
                                  "round": self.exchange_rounds})
        return dt

    # -- stale-synchronous (async) replay ------------------------------
    def begin_async(self) -> None:
        """Enter barrier-free mode: devices advance on private clocks and
        the link accumulates occupancy; :meth:`finish_async` reconciles."""
        self._async_start = self.elapsed
        self._async_base = [d.elapsed for d in self.devices]
        self._async_link = 0.0

    def async_launch(
        self,
        stats: Sequence[SweepStats | None],
        *,
        threads_per_block: int = 1024,
        random_access_bytes: float | None = None,
    ) -> None:
        """One async tick's kernels: each busy device launches on its own
        clock — no lockstep, no wall-clock barrier."""
        for device, s in zip(self.devices, stats):
            if s is None:
                continue
            device.launch(
                s,
                threads_per_block=threads_per_block,
                random_access_bytes=random_access_bytes,
            )

    def async_exchange(
        self, total_bytes: float, max_device_bytes: float | None = None
    ) -> float:
        """One stale-halo publish: transfers overlap compute, so the cost
        lands on the link's occupancy, not the wall clock directly."""
        if max_device_bytes is None:
            max_device_bytes = total_bytes / max(self.n_devices, 1)
        dt = self.interconnect.latency + max_device_bytes / self.interconnect.bandwidth
        self._async_link += dt
        self.exchange_time += dt
        self.exchange_bytes += int(total_bytes)
        self.exchange_rounds += 1
        if self._lane:
            self._lane.emit(
                "stale-exchange",
                self._async_start + self._async_link - dt,
                dt,
                thread="link",
                cat="gpusim",
                args={"bytes": int(total_bytes), "round": self.exchange_rounds},
            )
        return dt

    def finish_async(self) -> float:
        """Leave barrier-free mode: wall clock advances by the busiest
        device — or the link, when halo traffic is the bottleneck."""
        compute = max(
            (d.elapsed - base for d, base in zip(self.devices, self._async_base)),
            default=0.0,
        )
        dt = max(compute, self._async_link)
        self.elapsed = self._async_start + dt
        return dt

    @property
    def compute_elapsed(self) -> float:
        """Wall-clock seconds excluding interconnect exchange."""
        return self.elapsed - self.exchange_time

    @property
    def exchange_fraction(self) -> float:
        """Share of the modeled wall clock spent in boundary exchange."""
        return self.exchange_time / self.elapsed if self.elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"MultiGpuDevice(n={self.n_devices}, spec={self.spec.name!r}, "
            f"interconnect={self.interconnect.name!r}, elapsed={self.elapsed:.6f})"
        )

"""GPU device specifications (paper §2.3, §4, §4.4).

Two devices matter to the paper: the evaluation machine's **GTX 1070**
(Pascal: 15 SMX, 1920 CUDA cores, 8 GB VRAM) and the portability
experiment's **V100** (Volta: 5120 CUDA cores, 16 GB).  §4.4 names the
architectural differences that flip the Edge/Node balance: Volta's
independent thread scheduling lowers atomic/synchronization overhead and
its memory bandwidth is "considerably 1.5x higher".  An Ampere spec is
included as an extension for forward-portability studies.

The cost-model constants (latencies, atomic costs, launch overhead) are
order-of-magnitude figures from vendor documentation and microbenchmark
literature; the reproduction depends on their *ratios*, not their absolute
values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "GTX1070", "V100", "A100", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU model."""

    name: str
    architecture: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    vram_bytes: int
    #: sustained global-memory bandwidth, bytes/second
    mem_bandwidth: float
    #: global-memory transaction granularity (coalescing sector), bytes
    sector_bytes: int
    #: global-memory load latency, cycles
    global_latency_cycles: int
    #: shared memory per thread block, bytes
    shared_mem_per_block: int
    #: constant-memory cache, bytes (holds the shared joint matrix, §3.6)
    constant_mem_bytes: int
    max_threads_per_block: int
    #: cycles one uncontended global atomic costs the issuing warp
    atomic_base_cycles: float
    #: extra cycles per *additional* colliding atomic on the same address
    atomic_serialize_cycles: float
    #: host-side cost of one kernel launch, seconds
    kernel_launch_seconds: float
    #: device allocation/bookkeeping per cudaMalloc-style call, seconds
    alloc_overhead_seconds: float
    #: one-time CUDA context creation + module load, seconds — the bulk of
    #: the "GPU memory management overhead" that eats 99.8 % of the
    #: smallest benchmark's runtime (§4.1.1)
    context_init_seconds: float
    #: PCIe bandwidth, bytes/second, and per-transfer latency, seconds
    pcie_bandwidth: float
    pcie_latency_seconds: float
    #: Volta+ independent thread scheduling (§4.4)
    independent_thread_scheduling: bool
    warp_size: int = 32

    @property
    def total_cores(self) -> int:
        """CUDA cores across all SMs."""
        return self.sm_count * self.cores_per_sm

    @property
    def peak_flops(self) -> float:
        """Single-precision FMA peak, flops/second."""
        return self.total_cores * self.clock_ghz * 1e9 * 2.0

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert device cycles to seconds at the base clock."""
        return cycles / (self.clock_ghz * 1e9)


#: The paper's evaluation GPU: "an nVidia GTX 1070 with 15 SMX processors,
#: a total of 1920 CUDA cores and 8GB of VRAM" (§4).
GTX1070 = DeviceSpec(
    name="GTX 1070",
    architecture="pascal",
    sm_count=15,
    cores_per_sm=128,
    clock_ghz=1.68,
    vram_bytes=8 * 1024**3,
    mem_bandwidth=256e9,
    sector_bytes=32,
    global_latency_cycles=400,
    shared_mem_per_block=96 * 1024,
    constant_mem_bytes=64 * 1024,
    max_threads_per_block=1024,
    atomic_base_cycles=40.0,
    atomic_serialize_cycles=28.0,
    kernel_launch_seconds=6e-6,
    alloc_overhead_seconds=120e-6,
    context_init_seconds=0.18,
    pcie_bandwidth=12e9,
    pcie_latency_seconds=12e-6,
    independent_thread_scheduling=False,
)

#: The portability experiment's GPU: "an nVIDIA Volta V100 SXM2 16GB GPU
#: with 5120 CUDA cores" (§4.4).  Per §4.4 we model 1.5× the Pascal
#: effective bandwidth and markedly cheaper atomics under Volta's
#: independent thread scheduling.
V100 = DeviceSpec(
    name="V100 SXM2",
    architecture="volta",
    sm_count=80,
    cores_per_sm=64,
    clock_ghz=1.53,
    vram_bytes=16 * 1024**3,
    mem_bandwidth=384e9,  # 1.5x Pascal, the ratio §4.4 cites
    sector_bytes=32,
    global_latency_cycles=350,
    shared_mem_per_block=96 * 1024,
    constant_mem_bytes=64 * 1024,
    max_threads_per_block=1024,
    atomic_base_cycles=24.0,
    atomic_serialize_cycles=10.0,
    kernel_launch_seconds=5e-6,
    alloc_overhead_seconds=100e-6,
    context_init_seconds=0.16,
    pcie_bandwidth=12e9,
    pcie_latency_seconds=10e-6,
    independent_thread_scheduling=True,
)

#: Extension: an Ampere A100 for forward-portability ablations (not in the
#: paper).
A100 = DeviceSpec(
    name="A100 SXM4",
    architecture="ampere",
    sm_count=108,
    cores_per_sm=64,
    clock_ghz=1.41,
    vram_bytes=40 * 1024**3,
    mem_bandwidth=600e9,
    sector_bytes=32,
    global_latency_cycles=320,
    shared_mem_per_block=164 * 1024,
    constant_mem_bytes=64 * 1024,
    max_threads_per_block=1024,
    atomic_base_cycles=18.0,
    atomic_serialize_cycles=6.0,
    kernel_launch_seconds=4e-6,
    alloc_overhead_seconds=90e-6,
    context_init_seconds=0.15,
    pcie_bandwidth=24e9,
    pcie_latency_seconds=8e-6,
    independent_thread_scheduling=True,
)

DEVICES: dict[str, DeviceSpec] = {
    "gtx1070": GTX1070,
    "pascal": GTX1070,
    "v100": V100,
    "volta": V100,
    "a100": A100,
    "ampere": A100,
}


def get_device(name: str | DeviceSpec) -> DeviceSpec:
    """Look a device up by name or architecture alias."""
    if isinstance(name, DeviceSpec):
        return name
    try:
        return DEVICES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(set(DEVICES))}"
        ) from None

"""Host↔device transfer model (paper §3.6, §4.1.1).

"There are significant data transfer costs with the CUDA approaches that
limit them to smaller graphs" — each transfer pays PCIe latency plus
bandwidth time.  The CUDA backends follow the paper's mitigation: load the
graph once, keep everything resident, and fetch only the convergence
scalar back "after a predetermined number of batched iterations".
"""

from __future__ import annotations

from repro.gpusim.arch import DeviceSpec

__all__ = ["transfer_time", "DEFAULT_CONVERGENCE_BATCH"]

#: iterations between device→host convergence-check transfers (§2.4, §3.6)
DEFAULT_CONVERGENCE_BATCH = 4


def transfer_time(device: DeviceSpec, nbytes: int, *, calls: int = 1) -> float:
    """Seconds to move ``nbytes`` across PCIe in ``calls`` transfers."""
    if nbytes < 0:
        raise ValueError("transfer size must be non-negative")
    if calls < 1:
        raise ValueError("calls must be at least 1")
    return calls * device.pcie_latency_seconds + nbytes / device.pcie_bandwidth

"""networkx interoperability.

Downstream users live in networkx; these helpers move belief graphs in
and out of it.  Node beliefs ride on the ``"prior"`` node attribute and
edge potentials on the ``"potential"`` edge attribute; missing attributes
fall back to uniform priors and the supplied default potential.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.graph import BeliefGraph

__all__ = ["from_networkx", "to_networkx"]


def from_networkx(
    G: "nx.Graph",
    *,
    n_states: int = 2,
    default_potential: np.ndarray | None = None,
    prior_attr: str = "prior",
    potential_attr: str = "potential",
    layout: str = "aos",
) -> BeliefGraph:
    """Build a belief graph from an (un)directed networkx graph.

    Node order follows ``G.nodes``; the returned graph's ``node_names``
    are the stringified networkx node keys, so posteriors can be joined
    back.  Directed input is treated as undirected MRF structure (the
    §2.1 Markov-assumption move).
    """
    if default_potential is None:
        from repro.core.potentials import attractive_potential

        default_potential = attractive_potential(n_states, 0.75)
    default_potential = np.asarray(default_potential, dtype=np.float32)
    if default_potential.shape != (n_states, n_states):
        raise ValueError(
            f"default potential must be ({n_states}, {n_states}), "
            f"got {default_potential.shape}"
        )

    nodes = list(G.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    priors = np.full((len(nodes), n_states), 1.0 / n_states, dtype=np.float32)
    for node, data in G.nodes(data=True):
        if prior_attr in data:
            prior = np.asarray(data[prior_attr], dtype=np.float32).reshape(-1)
            if len(prior) != n_states:
                raise ValueError(
                    f"node {node!r} prior has {len(prior)} states, expected {n_states}"
                )
            priors[index[node]] = prior

    edges = []
    mats = []
    any_custom = False
    for u, v, data in G.edges(data=True):
        if u == v:
            continue
        edges.append((index[u], index[v]))
        if potential_attr in data:
            mat = np.asarray(data[potential_attr], dtype=np.float32)
            if mat.shape != (n_states, n_states):
                raise ValueError(
                    f"edge ({u!r}, {v!r}) potential has shape {mat.shape}"
                )
            mats.append(mat)
            any_custom = True
        else:
            mats.append(default_potential)

    edge_array = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    names = [str(n) for n in nodes]
    if any_custom:
        return BeliefGraph.from_undirected(
            priors, edge_array, per_edge_potentials=np.stack(mats) if mats else None,
            node_names=names, layout=layout,
        )
    return BeliefGraph.from_undirected(
        priors, edge_array, potential=default_potential,
        node_names=names, layout=layout,
    )


def to_networkx(graph: BeliefGraph, *, include_potentials: bool = True) -> "nx.Graph":
    """Export a belief graph as an undirected networkx graph.

    Current beliefs land on ``"belief"``, priors on ``"prior"``; the
    per-edge potential matrices ride on ``"potential"`` unless disabled.
    """
    G = nx.Graph()
    for i, name in enumerate(graph.node_names):
        G.add_node(
            name,
            prior=np.asarray(graph.priors.get(i)).copy(),
            belief=np.asarray(graph.beliefs.get(i)).copy(),
        )
    for e in range(graph.n_edges):
        rev = int(graph.reverse_edge[e])
        if rev != -1 and e > rev:
            continue
        u = graph.node_names[int(graph.src[e])]
        v = graph.node_names[int(graph.dst[e])]
        attrs = {}
        if include_potentials:
            attrs["potential"] = np.asarray(graph.potentials.matrix(e)).copy()
        G.add_edge(u, v, **attrs)
    return G

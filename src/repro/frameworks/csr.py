"""The CSR graph the §5.2 frameworks assume.

"All of these optimizations are useless to complex graph algorithms like
BP which do not adhere directly to the CSR format and its assumption of
one floating point number or integer per node."  This module is that
assumption, reified: a compressed sparse row structure whose node state
is a single scalar array.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BeliefGraph

__all__ = ["CsrGraph"]


class CsrGraph:
    """Directed CSR adjacency with one optional scalar weight per edge."""

    def __init__(
        self,
        n_nodes: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
    ):
        self.n_nodes = int(n_nodes)
        src = np.asarray(src, dtype=np.int64).reshape(-1)
        dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        if len(src) != len(dst):
            raise ValueError("src and dst must have equal length")
        if len(src) and (src.min() < 0 or dst.min() < 0 or max(src.max(), dst.max()) >= n_nodes):
            raise ValueError("edge endpoint out of range")
        order = np.argsort(src, kind="stable")
        self.col = dst[order]
        counts = np.bincount(src, minlength=n_nodes)
        self.offsets = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        if weights is None:
            self.weights = np.ones(len(src), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64).reshape(-1)
            if len(weights) != len(src):
                raise ValueError("weights length mismatch")
            self.weights = weights[order]

    @property
    def n_edges(self) -> int:
        return len(self.col)

    def neighbours(self, v: int) -> np.ndarray:
        return self.col[self.offsets[v] : self.offsets[v + 1]]

    def out_degree(self) -> np.ndarray:
        return np.diff(self.offsets)

    @classmethod
    def from_belief_graph(cls, graph: BeliefGraph, weights: np.ndarray | None = None) -> "CsrGraph":
        """Project a belief graph's topology into CSR (losing the belief
        vectors and potential matrices — the §5.2 point)."""
        return cls(graph.n_nodes, graph.src, graph.dst, weights)

    @classmethod
    def from_edges(cls, n_nodes: int, edges: np.ndarray, weights=None) -> "CsrGraph":
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        return cls(n_nodes, edges[:, 0], edges[:, 1], weights)

"""Why the §5.2 frameworks cannot run belief propagation.

"However, all of these optimizations are useless to complex graph
algorithms like BP which do not adhere directly to the CSR format and
its assumption of one floating point number or integer per node.
Consequently, these frameworks cannot perform complex graph processing
on the level of BP."

:func:`why_not_bp` makes the argument executable: given a belief graph,
it enumerates the structural mismatches between BP's requirements and
the frontier/semiring data models, and demonstrates each by attempting
the offending operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import BeliefGraph
from repro.frameworks.csr import CsrGraph
from repro.frameworks.frontier import FrontierFramework, FrontierProgram
from repro.frameworks.semiring import PLUS_TIMES, SemiringSpmv

__all__ = ["FrameworkLimitation", "why_not_bp"]


@dataclass(frozen=True)
class FrameworkLimitation:
    """One concrete BP requirement a framework's data model rejects."""

    requirement: str
    framework_assumption: str
    demonstrated_by: str


def why_not_bp(graph: BeliefGraph) -> list[FrameworkLimitation]:
    """Structural mismatches between BP and the CSR frameworks, each one
    demonstrated by an actual failed operation on ``graph``."""
    limits: list[FrameworkLimitation] = []
    csr = CsrGraph.from_belief_graph(graph)
    b = graph.n_states

    # 1. vector node state ------------------------------------------------
    beliefs = graph.beliefs.dense()  # (n, b)
    demonstrated = "no failure observed"
    try:
        FrontierFramework(csr).run(
            FrontierProgram(advance=lambda s, w, d: s, combine="sum"),
            beliefs,  # (n, b) state — not one scalar per node
            np.arange(graph.n_nodes),
        )
    except ValueError as exc:
        demonstrated = f"FrontierFramework.run rejected (n, {b}) state: {exc}"
    limits.append(
        FrameworkLimitation(
            requirement=f"BP nodes carry {b}-component belief vectors",
            framework_assumption="one float/int per node (CSR data model)",
            demonstrated_by=demonstrated,
        )
    )

    demonstrated = "no failure observed"
    try:
        SemiringSpmv(csr).multiply(beliefs, PLUS_TIMES)
    except ValueError as exc:
        demonstrated = f"SemiringSpmv.multiply rejected (n, {b}) operand: {exc}"
    limits.append(
        FrameworkLimitation(
            requirement="BP's combine multiplies whole message vectors",
            framework_assumption="the semiring ⊕/⊗ act on scalars",
            demonstrated_by=demonstrated,
        )
    )

    # 2. matrix-valued edge data ------------------------------------------
    limits.append(
        FrameworkLimitation(
            requirement=(
                f"each BP edge applies a {b}x{b} joint-probability matrix "
                f"({graph.potentials.nbytes():,} bytes of potential data)"
            ),
            framework_assumption="one scalar weight per CSR edge "
            f"(CsrGraph stores {csr.weights.nbytes:,} bytes)",
            demonstrated_by=(
                "CsrGraph.from_belief_graph silently loses the potentials: "
                f"{graph.potentials.nbytes():,} -> {csr.weights.nbytes:,} bytes"
            ),
        )
    )

    # 3. cavity semantics ---------------------------------------------------
    limits.append(
        FrameworkLimitation(
            requirement=(
                "sum-product messages exclude the recipient's own previous "
                "contribution (cavity), so an edge update needs per-direction "
                "message state, not just endpoint values"
            ),
            framework_assumption=(
                "advance computes candidates from (src value, edge weight) "
                "alone; no per-edge mutable state survives iterations"
            ),
            demonstrated_by=(
                "FrontierProgram.advance signature has no slot for the "
                "reverse message m[v->u]"
            ),
        )
    )

    # 4. multiplicative normalized combine ---------------------------------
    limits.append(
        FrameworkLimitation(
            requirement=(
                "BP combines incoming messages by componentwise product "
                "followed by normalization (Alg. 1 lines 10-11)"
            ),
            framework_assumption=(
                "combine is an atomic scalar min/max/sum — normalization "
                "needs a second coupled pass over variable-width vectors"
            ),
            demonstrated_by="FrontierProgram rejects combine='normalized-product'",
        )
    )
    return limits

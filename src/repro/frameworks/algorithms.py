"""The §5.2 frameworks' bread-and-butter algorithms.

SSSP, BFS, PageRank and connected components, each written against the
frontier framework or the semiring engine — demonstrating that the
frameworks *do* handle "common algorithms" cleanly (validated against
networkx in the tests) before :mod:`repro.frameworks.limits` shows why
BP is different.
"""

from __future__ import annotations

import numpy as np

from repro.frameworks.csr import CsrGraph
from repro.frameworks.frontier import FrontierFramework, FrontierProgram
from repro.frameworks.semiring import MIN_PLUS, PLUS_TIMES, SemiringSpmv

__all__ = ["sssp", "bfs_depths", "pagerank", "connected_components"]


def sssp(graph: CsrGraph, source: int) -> np.ndarray:
    """Single-source shortest paths via frontier relaxation
    (Bellman-Ford-style advance with a min combine)."""
    if not 0 <= source < graph.n_nodes:
        raise IndexError("source out of range")
    program = FrontierProgram(
        advance=lambda src_vals, weights, _dst: src_vals + weights,
        combine="min",
    )
    values = np.full(graph.n_nodes, np.inf)
    values[source] = 0.0
    result = FrontierFramework(graph).run(program, values, np.array([source]))
    return result.values


def bfs_depths(graph: CsrGraph, source: int) -> np.ndarray:
    """BFS level per node (−1 when unreachable) via unit-weight SSSP."""
    unit = CsrGraph(
        graph.n_nodes,
        np.repeat(np.arange(graph.n_nodes), np.diff(graph.offsets)),
        graph.col,
        np.ones(graph.n_edges),
    )
    dist = sssp(unit, source)
    depths = np.where(np.isfinite(dist), dist, -1.0)
    return depths.astype(np.int64)


def pagerank(
    graph: CsrGraph, *, damping: float = 0.85, tol: float = 1e-10, max_iterations: int = 200
) -> np.ndarray:
    """PageRank as plus-times semiring SpMV iteration (the nvGRAPH demo)."""
    n = graph.n_nodes
    out_deg = graph.out_degree().astype(np.float64)
    # column-stochastic edge weights: 1/outdeg(src)
    src = np.repeat(np.arange(n), np.diff(graph.offsets))
    norm = CsrGraph(n, src, graph.col, 1.0 / np.maximum(out_deg[src], 1.0))
    engine = SemiringSpmv(norm)
    dangling = out_deg == 0

    def post(y: np.ndarray) -> np.ndarray:
        dangling_mass = 0.0
        if dangling.any():
            dangling_mass = damping * post.current[dangling].sum() / n
        out = (1.0 - damping) / n + damping * y + dangling_mass
        post.current = out
        return out

    post.current = np.full(n, 1.0 / n)
    x, _ = engine.iterate(
        post.current, PLUS_TIMES, post=post, tol=tol, max_iterations=max_iterations
    )
    return x / x.sum()


def connected_components(graph: CsrGraph) -> np.ndarray:
    """Weakly connected components by min-label propagation (frontier)."""
    # symmetrize
    src = np.repeat(np.arange(graph.n_nodes), np.diff(graph.offsets))
    both_src = np.concatenate([src, graph.col])
    both_dst = np.concatenate([graph.col, src])
    sym = CsrGraph(graph.n_nodes, both_src, both_dst)
    program = FrontierProgram(
        advance=lambda src_vals, _w, _d: src_vals,
        combine="min",
    )
    labels = np.arange(graph.n_nodes, dtype=np.float64)
    result = FrontierFramework(sym).run(program, labels, np.arange(graph.n_nodes))
    # normalize labels to 0..k-1
    _, normalized = np.unique(result.values, return_inverse=True)
    return normalized

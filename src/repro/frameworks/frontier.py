"""Gunrock-style frontier framework (paper §5.2).

"Gunrock abstracts all graph operations as a series of advance, filter
and computation steps operating either on nodes or edges utilizing
optimizations such as kernel fusion, push-pull traversal, idempotent
traversal and priority queues."

A :class:`FrontierProgram` supplies the three operators; the framework
iterates advance → compute → filter over frontiers until the frontier
empties or an iteration cap is hit.  Node state is a single scalar array
(`values`), per the CSR data model — the restriction that locks BP out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.sweepstats import SweepStats
from repro.frameworks.csr import CsrGraph

__all__ = ["FrontierProgram", "FrontierFramework", "FrontierResult"]


@dataclass
class FrontierProgram:
    """The three Gunrock operators.

    ``advance(src_values, edge_weights, dst_values) -> candidate_values``
        per-edge: propose a new scalar for each edge's destination from
        its source's scalar (vectorized over the expanded frontier);
    ``combine``
        how colliding candidates at one destination merge
        ("min", "sum", "max" — the atomic op of the real kernels);
    ``compute(values, touched) -> values``
        optional per-node post-processing of the touched nodes;
    ``filter(old_values, new_values, touched) -> mask``
        which touched nodes enter the next frontier.
    """

    advance: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    combine: str = "min"
    compute: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None
    filter: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] | None = None

    def __post_init__(self) -> None:
        if self.combine not in ("min", "max", "sum"):
            raise ValueError(f"unknown combine {self.combine!r}")


@dataclass
class FrontierResult:
    values: np.ndarray
    iterations: int
    stats: SweepStats = field(default_factory=SweepStats)


class FrontierFramework:
    """Push-style advance/filter/compute executor over a CSR graph."""

    def __init__(self, graph: CsrGraph):
        self.graph = graph

    def run(
        self,
        program: FrontierProgram,
        initial_values: np.ndarray,
        initial_frontier: np.ndarray,
        *,
        max_iterations: int = 10_000,
    ) -> FrontierResult:
        g = self.graph
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (g.n_nodes,):
            raise ValueError(
                "frontier frameworks hold one scalar per node; got "
                f"state of shape {values.shape} for {g.n_nodes} nodes "
                "(the §5.2 restriction)"
            )
        frontier = np.unique(np.asarray(initial_frontier, dtype=np.int64))
        stats = SweepStats()
        iteration = 0
        while len(frontier) and iteration < max_iterations:
            iteration += 1
            # ADVANCE: expand the frontier's out-edges
            starts = g.offsets[frontier]
            ends = g.offsets[frontier + 1]
            sizes = ends - starts
            total = int(sizes.sum())
            if total == 0:
                break
            seg = np.repeat(np.arange(len(frontier)), sizes)
            local = np.arange(total) - np.repeat(
                np.concatenate([[0], np.cumsum(sizes)[:-1]]), sizes
            )
            eidx = starts[seg] + local
            dsts = g.col[eidx]
            candidates = program.advance(
                values[frontier[seg]], g.weights[eidx], values[dsts]
            )

            # COMBINE: resolve collisions per destination (the atomic op)
            new_values = values.copy()
            if program.combine == "min":
                np.minimum.at(new_values, dsts, candidates)
            elif program.combine == "max":
                np.maximum.at(new_values, dsts, candidates)
            else:
                np.add.at(new_values, dsts, candidates)
            touched = np.unique(dsts)

            # COMPUTE: optional per-node transform
            if program.compute is not None:
                new_values = program.compute(new_values, touched)

            # FILTER: build the next frontier
            if program.filter is not None:
                mask = program.filter(values, new_values, touched)
            else:
                mask = new_values[touched] != values[touched]
            frontier = touched[mask]
            values = new_values

            stats.edges_processed += total
            stats.nodes_processed += len(touched)
            stats.atomic_ops += total
            stats.kernel_launches += 3  # advance + compute + filter
        return FrontierResult(values=values, iterations=iteration, stats=stats)

"""GPU graph-framework substrate (paper §5.2).

The paper's related work surveys Gunrock, nvGRAPH and Groute: frameworks
that "enable application developers to process massive graphs using
common algorithms such as single-source shortest path (SSSP) and
PageRank", built around the CSR format "and its assumption of one
floating point number or integer per node" — which is exactly why "these
frameworks cannot perform complex graph processing on the level of BP".

This subpackage reproduces that argument executably:

* :mod:`repro.frameworks.frontier` — a Gunrock-style
  advance / filter / compute operator framework over frontiers;
* :mod:`repro.frameworks.semiring` — an nvGRAPH-style generalized
  sparse matrix-vector engine over pluggable semirings;
* :mod:`repro.frameworks.algorithms` — SSSP, BFS, PageRank and
  connected components written against both, validated against networkx;
* :func:`repro.frameworks.limits.why_not_bp` — the structural checks
  showing where loopy BP breaks each framework's data model (E15).
"""

from repro.frameworks.frontier import FrontierFramework, FrontierProgram
from repro.frameworks.semiring import Semiring, SemiringSpmv, PLUS_TIMES, MIN_PLUS, OR_AND
from repro.frameworks.algorithms import (
    bfs_depths,
    connected_components,
    pagerank,
    sssp,
)
from repro.frameworks.limits import FrameworkLimitation, why_not_bp

__all__ = [
    "FrontierFramework",
    "FrontierProgram",
    "Semiring",
    "SemiringSpmv",
    "PLUS_TIMES",
    "MIN_PLUS",
    "OR_AND",
    "bfs_depths",
    "connected_components",
    "pagerank",
    "sssp",
    "FrameworkLimitation",
    "why_not_bp",
]

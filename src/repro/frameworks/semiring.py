"""nvGRAPH-style semiring SpMV engine (paper §5.2).

"nvGRAPH borrows the concept of semi-rings from linear algebra to
genericize common graph operations" — one iteration of many graph
algorithms is a generalized sparse matrix-vector product
``y[i] = ⊕_j A[i,j] ⊗ x[j]`` over a (⊕, ⊗) semiring.  The vector holds
**one scalar per node**, which is the §5.2 restriction this module makes
concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.frameworks.csr import CsrGraph

__all__ = ["Semiring", "SemiringSpmv", "PLUS_TIMES", "MIN_PLUS", "OR_AND"]


@dataclass(frozen=True)
class Semiring:
    """A (⊕, ⊗) pair with the ⊕-identity."""

    name: str
    plus: Callable[[np.ndarray, np.ndarray], np.ndarray]
    times: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float

    def reduce_at(self, out: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> None:
        if self.plus is np.minimum:
            np.minimum.at(out, idx, vals)
        elif self.plus is np.maximum:
            np.maximum.at(out, idx, vals)
        elif self.plus is np.add:
            np.add.at(out, idx, vals)
        else:  # generic (slow) fallback
            for i, v in zip(idx, vals):
                out[i] = self.plus(out[i], v)


#: ordinary linear algebra — PageRank's iteration lives here
PLUS_TIMES = Semiring("plus-times", np.add, np.multiply, 0.0)
#: tropical semiring — SSSP relaxation
MIN_PLUS = Semiring("min-plus", np.minimum, np.add, np.inf)
#: boolean semiring — reachability / BFS
OR_AND = Semiring("or-and", np.maximum, np.minimum, 0.0)


class SemiringSpmv:
    """Generalized y = A ⊗ x over the transpose graph (pull direction)."""

    def __init__(self, graph: CsrGraph):
        self.graph = graph

    def multiply(self, x: np.ndarray, semiring: Semiring) -> np.ndarray:
        """One generalized SpMV: for each edge (u → v),
        ``y[v] ⊕= w(u,v) ⊗ x[u]``."""
        g = self.graph
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (g.n_nodes,):
            raise ValueError(
                f"semiring engines operate on one scalar per node; got {x.shape} "
                "(the §5.2 restriction)"
            )
        y = np.full(g.n_nodes, semiring.zero, dtype=np.float64)
        # expand all edges (src is implied by CSR rows)
        src = np.repeat(np.arange(g.n_nodes), np.diff(g.offsets))
        vals = semiring.times(g.weights, x[src])
        semiring.reduce_at(y, g.col, vals)
        return y

    def iterate(
        self,
        x0: np.ndarray,
        semiring: Semiring,
        *,
        post: Callable[[np.ndarray], np.ndarray] | None = None,
        tol: float = 1e-10,
        max_iterations: int = 1000,
    ) -> tuple[np.ndarray, int]:
        """Fixed-point iteration of the generalized SpMV."""
        x = np.asarray(x0, dtype=np.float64).copy()
        for it in range(1, max_iterations + 1):
            y = self.multiply(x, semiring)
            if post is not None:
                y = post(y)
            if np.allclose(y, x, atol=tol, rtol=0.0):
                return y, it
            x = y
        return x, max_iterations

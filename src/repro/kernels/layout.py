"""Belief-store layout as a first-class, convertible execution choice.

The paper fixes the AoS layout after a one-off cachegrind experiment
(§3.4).  Here layout joins the plan: the registry below names the three
physical arrangements implemented by :mod:`repro.core.beliefs`, and
:func:`with_layout` re-homes an existing graph's belief and prior values
into another layout while *sharing every structural array* (edge lists,
CSR adjacency, potentials, caches) with the original — conversion costs
two dense passes over node state, never a graph rebuild.

The autotuner (:mod:`repro.kernels.autotune`) picks from this registry
at plan time; ``credo run --layout`` and the E5 ablation benchmarks go
through the same two functions instead of hand-constructing stores.
"""

from __future__ import annotations

from repro.core.beliefs import BeliefStore, make_store
from repro.core.graph import BeliefGraph

__all__ = ["LAYOUTS", "normalize_layout", "with_layout", "convert_store"]

#: canonical layout names (all accepted by ``repro.core.beliefs.make_store``)
LAYOUTS = ("aos", "soa", "blocked")

_ALIASES = {
    "array-of-structs": "aos",
    "struct-of-arrays": "soa",
    "aosoa": "blocked",
    "tiled": "blocked",
}


def normalize_layout(name: str) -> str:
    """Canonical layout name, accepting common aliases."""
    canonical = _ALIASES.get(name, name)
    if canonical not in LAYOUTS:
        raise ValueError(f"unknown layout {name!r}; known: {list(LAYOUTS)}")
    return canonical


def convert_store(store: BeliefStore, layout: str) -> BeliefStore:
    """Return a store with the same values in the requested layout."""
    layout = normalize_layout(layout)
    if store.layout == layout:
        return store.copy()
    out = make_store(store.dims, layout)
    out.load_dense(store.dense())
    return out


def with_layout(graph: BeliefGraph, layout: str) -> BeliefGraph:
    """Return ``graph`` with its belief storage in ``layout``.

    When the graph already uses the requested layout it is returned
    unchanged (no copy).  Otherwise the clone shares all structural
    arrays with the original — only the two belief stores are rebuilt,
    so converting a graph is O(n · width), independent of edge count.
    """
    layout = normalize_layout(layout)
    if graph.layout == layout:
        return graph
    clone = BeliefGraph.__new__(BeliefGraph)
    clone.n_nodes = graph.n_nodes
    clone.dims = graph.dims
    clone.layout = layout
    clone.priors = convert_store(graph.priors, layout)
    clone.beliefs = convert_store(graph.beliefs, layout)
    clone.node_names = list(graph.node_names)
    clone.src = graph.src
    clone.dst = graph.dst
    clone.n_edges = graph.n_edges
    clone.potentials = graph.potentials
    clone.reverse_edge = graph.reverse_edge
    clone.in_offsets, clone.in_edge_ids = graph.in_offsets, graph.in_edge_ids
    clone.out_offsets, clone.out_edge_ids = graph.out_offsets, graph.out_edge_ids
    clone.observed = graph.observed.copy()
    clone.observed_state = graph.observed_state.copy()
    clone.reserved_nbytes = graph.reserved_nbytes
    clone._name_to_id = graph._name_to_id
    clone._feature_cache = graph._feature_cache
    return clone

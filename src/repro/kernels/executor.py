"""The :class:`SweepExecutor` protocol and registry (DESIGN.md §13).

An executor is *how* one sweep runs; the schedule decides *what* it
covers and the paradigm decides the element space.  The driver
(:class:`repro.core.loopy.LoopyBP`), the sharded per-shard loops and the
serving union path all construct their executor once per
:class:`~repro.core.state.LoopyState` through :func:`make_executor` and
then call :meth:`SweepExecutor.node_sweep` /
:meth:`SweepExecutor.edge_sweep` with exactly the signature of the
historical kernel functions.

Two executors are registered:

``"interpreted"``
    Delegates every call to :func:`repro.core.node_kernel.node_sweep`
    and :func:`repro.core.edge_kernel.edge_sweep` unchanged — the
    reference semantics every other executor is validated against.

``"compiled"``
    :class:`repro.kernels.compiled.CompiledExecutor`: lowers the state
    once into fused gather–scatter programs and runs full sweeps on a
    natural-edge-order fast path.  Bit-exact with the interpreted
    executor by construction (see the module docstring there for the
    ordering argument).
"""

from __future__ import annotations

import numpy as np

from repro.core.edge_kernel import edge_sweep
from repro.core.node_kernel import node_sweep
from repro.core.state import LoopyState
from repro.core.sweepstats import SweepStats

__all__ = [
    "EXECUTORS",
    "SweepExecutor",
    "InterpretedExecutor",
    "cached_executor",
    "make_executor",
    "normalize_executor",
]

#: the canonical executor names, reference first
EXECUTORS = ("interpreted", "compiled")

_ALIASES = {
    "interp": "interpreted",
    "python": "interpreted",
    "reference": "interpreted",
    "fused": "compiled",
    "lowered": "compiled",
}


def normalize_executor(name: str | None) -> str:
    """Canonical executor name, accepting common aliases (``None`` means
    the interpreted reference)."""
    if name is None:
        return EXECUTORS[0]
    canonical = str(name).lower().strip()
    canonical = _ALIASES.get(canonical, canonical)
    if canonical not in EXECUTORS:
        raise ValueError(f"unknown executor {name!r}; known: {list(EXECUTORS)}")
    return canonical


class SweepExecutor:
    """One BP sweep, as the paradigm plans see it.

    Implementations are bound to a single :class:`LoopyState` at
    construction (that is where lowering happens) and must be
    numerically **bit-exact** with the interpreted reference: same
    posteriors, same per-element deltas, same stored messages.
    ``build_seconds`` reports the one-off lowering cost so profiling can
    separate kernel-build time from sweep time.
    """

    name: str = "abstract"
    #: seconds spent lowering this executor (0 for the interpreted one)
    build_seconds: float = 0.0

    def node_sweep(
        self,
        state: LoopyState,
        active_nodes: np.ndarray,
        *,
        update_rule: str = "sum_product",
        semiring: str = "sum",
        damping: float = 0.0,
    ) -> tuple[np.ndarray, SweepStats]:
        """One per-node sweep; same contract as
        :func:`repro.core.node_kernel.node_sweep`."""
        raise NotImplementedError

    def edge_sweep(
        self,
        state: LoopyState,
        active_edges: np.ndarray,
        *,
        update_rule: str = "sum_product",
        semiring: str = "sum",
        damping: float = 0.0,
        chunks: int = 8,
    ) -> tuple[np.ndarray, np.ndarray, SweepStats]:
        """One per-edge sweep; same contract as
        :func:`repro.core.edge_kernel.edge_sweep`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class InterpretedExecutor(SweepExecutor):
    """The reference executor: per-call kernel-function dispatch."""

    name = "interpreted"

    def node_sweep(self, state, active_nodes, *, update_rule="sum_product",
                   semiring="sum", damping=0.0):
        return node_sweep(
            state, active_nodes,
            update_rule=update_rule, semiring=semiring, damping=damping,
        )

    def edge_sweep(self, state, active_edges, *, update_rule="sum_product",
                   semiring="sum", damping=0.0, chunks=8):
        return edge_sweep(
            state, active_edges,
            update_rule=update_rule, semiring=semiring, damping=damping,
            chunks=chunks,
        )


def make_executor(
    name: str,
    state: LoopyState,
    *,
    paradigm: str = "node",
    chunks: int = 8,
) -> SweepExecutor:
    """Build the executor ``name`` lowered against ``state``.

    ``paradigm`` and ``chunks`` tell the compiled executor which fused
    program to lower (the edge program's chunk boundaries are part of
    the lowering); the interpreted executor ignores both.
    """
    canonical = normalize_executor(name)
    if canonical == "interpreted":
        return InterpretedExecutor()
    from repro.kernels.compiled import CompiledExecutor  # deferred: heavier

    return CompiledExecutor(state, paradigm=paradigm, chunks=chunks)


def cached_executor(
    cache: dict | None,
    name: str,
    state: LoopyState,
    *,
    paradigm: str = "node",
    chunks: int = 8,
) -> SweepExecutor:
    """:func:`make_executor`, memoized in ``cache`` (a plain dict).

    Compiled executors lower against a specific state's buffer
    identities, so a cached lowering is only sound while those buffers
    persist.  The incremental engine (:mod:`repro.stream.incremental`)
    owns the cache: evidence-only deltas mutate the state's rows in
    place and keep it; structural deltas rebuild the state and clear it.
    ``cache=None`` degrades to an uncached build.
    """
    if cache is None:
        return make_executor(name, state, paradigm=paradigm, chunks=chunks)
    key = (normalize_executor(name), paradigm, chunks)
    executor = cache.get(key)
    if executor is None:
        executor = cache[key] = make_executor(
            name, state, paradigm=paradigm, chunks=chunks
        )
    return executor
